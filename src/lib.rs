//! Umbrella crate for the PHAST reproduction workspace.
//!
//! This crate exists to host the workspace-wide integration tests (`tests/`)
//! and the runnable examples (`examples/`). It re-exports the member crates
//! under short names so examples read naturally.

pub use phast as predictor;
pub use phast_baselines as baselines;
pub use phast_branch as branch;
pub use phast_energy as energy;
pub use phast_experiments as experiments;
pub use phast_isa as isa;
pub use phast_mdp as mdp;
pub use phast_mem as mem;
pub use phast_ooo as ooo;
pub use phast_workloads as workloads;
