//! Path sensitivity demo: the paper's Fig. 5 scenario, run end to end.
//!
//! A single divergent branch *previous to the store* selects between two
//! store sequences with different store distances. A PC-only prediction
//! must be wrong on half the iterations; PHAST's N+1 rule (include the
//! branch previous to the store, even though N = 0 branches separate the
//! store from the load) nails both paths.
//!
//! ```text
//! cargo run --release --example path_sensitivity
//! ```

use phast::{Phast, PhastConfig};
use phast_baselines::{NoSqConfig, NoSqPredictor};
use phast_isa::{CondKind, MemSize, Program, ProgramBuilder, Reg};
use phast_mdp::MemDepPredictor;
use phast_ooo::{simulate, CoreConfig, TrainPoint};

/// The Fig. 5 program: left path stores at distance 0 from the load,
/// right path at distance 2; the only divergent branch is before the
/// stores.
fn fig5_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let left = b.block();
    let right = b.block();
    let join = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x1000).li(Reg(2), 1).li(Reg(10), 0).jump(head);
    b.at(head)
        .andi(Reg(3), Reg(10), 1) // alternate the path each iteration
        .div(Reg(4), Reg(1), Reg(2)) // late-resolving store address
        .div(Reg(4), Reg(4), Reg(2))
        .addi(Reg(5), Reg(10), 7)
        .branchi(CondKind::Eq, Reg(3), 1, left)
        .fallthrough(right);
    // Left: conflicting store is the youngest older store (distance 0).
    b.at(left).store(Reg(4), 0, Reg(5), MemSize::B8).jump(join);
    // Right: two more stores follow the conflicting one (distance 2).
    b.at(right)
        .store(Reg(4), 0, Reg(5), MemSize::B8)
        .store(Reg(4), 64, Reg(5), MemSize::B8)
        .store(Reg(4), 128, Reg(5), MemSize::B8)
        .jump(join);
    b.at(join)
        .load(Reg(6), Reg(1), 0, MemSize::B8) // early address: can overtake
        .add(Reg(7), Reg(7), Reg(6))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().expect("valid program")
}

fn run(name: &str, program: &Program, pred: &mut dyn MemDepPredictor, train: TrainPoint) {
    let mut cfg = CoreConfig::alder_lake();
    cfg.train_point = train;
    let s = simulate(program, &cfg, pred, 500_000);
    println!(
        "{:<10} IPC {:>6.3}  violations {:>5}  false deps {:>5}",
        name, s.ipc(), s.violations, s.false_dependences
    );
}

fn main() {
    let program = fig5_program(5_000);
    println!("Fig. 5 scenario: distance 0 on the left path, distance 2 on the right.\n");

    run(
        "phast",
        &program,
        &mut Phast::new(PhastConfig::paper()),
        TrainPoint::Commit,
    );
    run(
        "nosq",
        &program,
        &mut NoSqPredictor::new(NoSqConfig::paper()),
        TrainPoint::Detect,
    );

    // A PHAST stripped to one length-0 table *without* path information
    // would behave like a PC-only predictor. The nearest configurable
    // point: a single-table PHAST still sees the N+1 branch, so even the
    // minimal configuration disambiguates the two paths.
    run(
        "phast-1tbl",
        &program,
        &mut Phast::new(PhastConfig {
            history_lengths: vec![0],
            ..PhastConfig::paper()
        }),
        TrainPoint::Commit,
    );

    println!(
        "\nPHAST keys its length-0 table with the *destination of the divergent\n\
         branch previous to the store* (the N+1 rule), so both paths get their\n\
         own store distance; a PC-only table would thrash between 0 and 2."
    );
}
