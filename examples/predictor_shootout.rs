//! Predictor shootout: every memory dependence predictor on every
//! synthetic SPEC-like workload, reported as IPC normalized to the ideal
//! predictor — a compact version of the paper's Fig. 15.
//!
//! ```text
//! cargo run --release --example predictor_shootout          # full
//! cargo run --release --example predictor_shootout -- quick # 6 workloads
//! ```

use phast_experiments::harness::{geomean, normalized_ipc, Sweep};
use phast_experiments::{Budget, PredictorKind};
use phast_ooo::CoreConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let budget = if quick { Budget::quick() } else { Budget::full() };
    let cfg = CoreConfig::alder_lake();
    let sweep = Sweep::parallel();

    let kinds = [
        PredictorKind::Blind,
        PredictorKind::TotalOrder,
        PredictorKind::Cht,
        PredictorKind::StoreVector,
        PredictorKind::StoreSets,
        PredictorKind::MdpTage,
        PredictorKind::MdpTageS,
        PredictorKind::NoSq,
        PredictorKind::Phast,
    ];

    println!(
        "simulating {} workloads x {} predictors on {} worker(s)...",
        budget.workloads().len(),
        kinds.len() + 1,
        sweep.workers()
    );
    let ideal = sweep.run_all(&PredictorKind::Ideal, &cfg, &budget);

    println!(
        "\n{:<14} {:>10} {:>10} {:>10} {:>10}",
        "predictor", "norm. IPC", "MPKI FN", "MPKI FP", "size KB"
    );
    for kind in &kinds {
        let runs = sweep.run_all(kind, &cfg, &budget);
        let g = geomean(&normalized_ipc(&runs, &ideal));
        let n = runs.len() as f64;
        let fnm = runs.iter().map(|r| r.stats.violation_mpki()).sum::<f64>() / n;
        let fpm = runs.iter().map(|r| r.stats.false_dep_mpki()).sum::<f64>() / n;
        let program = budget.workloads()[0].build(16);
        let kb = kind.build(&program, 16).storage_bits() as f64 / 8192.0;
        println!("{:<14} {:>10.4} {:>10.3} {:>10.3} {:>10.2}", kind.label(), g, fnm, fpm, kb);
    }
    println!("\n(IPC normalized to a perfect memory dependence predictor; higher is better)");
}
