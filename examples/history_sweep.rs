//! History-length sweep: the paper's Fig. 6 limit study in miniature.
//!
//! UnlimitedNoSQ at fixed history lengths 1..16 trades accuracy against an
//! exploding number of tracked paths; UnlimitedPHAST picks the minimum
//! effective length per conflict and gets the best of both.
//!
//! ```text
//! cargo run --release --example history_sweep
//! ```

use phast_experiments::harness::{geomean, normalized_ipc, Sweep};
use phast_experiments::{Budget, PredictorKind};
use phast_ooo::CoreConfig;

fn main() {
    let budget = Budget { insts: 120_000, workload_iters: 500_000, max_workloads: None };
    let cfg = CoreConfig::alder_lake();
    let sweep = Sweep::parallel();
    println!(
        "running the unlimited-predictor sweep ({} workloads, {} workers)...\n",
        budget.workloads().len(),
        sweep.workers()
    );
    let ideal = sweep.run_all(&PredictorKind::Ideal, &cfg, &budget);

    println!("{:<16} {:>12} {:>14}", "predictor", "norm. IPC", "paths tracked");
    let mut kinds: Vec<PredictorKind> = [1, 2, 4, 6, 8, 10, 12, 16]
        .into_iter()
        .map(PredictorKind::UnlimitedNoSq)
        .collect();
    kinds.push(PredictorKind::UnlimitedMdpTage);
    kinds.push(PredictorKind::UnlimitedPhast(None));

    for kind in &kinds {
        let runs = sweep.run_all(kind, &cfg, &budget);
        let g = geomean(&normalized_ipc(&runs, &ideal));
        let paths: u64 = runs.iter().map(|r| r.num_paths).sum();
        println!("{:<16} {:>12.4} {:>14}", kind.label(), g, paths);
    }

    println!(
        "\nExpected shape (paper Fig. 6): NoSQ IPC saturates around history 8-9\n\
         while its path count keeps growing; UnlimitedPHAST reaches the highest\n\
         IPC with a fraction of the paths."
    );
}
