//! Quickstart: build a tiny program, run it on the out-of-order core with
//! PHAST, and print what the memory dependence predictor did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phast::{Phast, PhastConfig};
use phast_isa::{CondKind, MemSize, ProgramBuilder, Reg};
use phast_mdp::{BlindSpeculation, MemDepPredictor};
use phast_ooo::{simulate, CoreConfig, TrainPoint};

fn main() {
    // A loop in which a store's address resolves late (divide chain) and
    // the following load reads the same location through a fast register:
    // without prediction the load overtakes the store and is squashed at
    // commit, every iteration.
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x1000).li(Reg(2), 1).li(Reg(10), 0).jump(body);
    b.at(body)
        .div(Reg(4), Reg(1), Reg(2)) // slow copy of the address
        .div(Reg(4), Reg(4), Reg(2))
        .addi(Reg(5), Reg(10), 42)
        .store(Reg(4), 0, Reg(5), MemSize::B8) // address ready late
        .load(Reg(6), Reg(1), 0, MemSize::B8) // same address, ready early
        .add(Reg(7), Reg(7), Reg(6))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), 2_000, body)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    let program = b.build().expect("valid program");

    let cfg = CoreConfig::alder_lake();

    // Baseline: no memory dependence prediction.
    let mut blind = BlindSpeculation;
    let no_mdp = simulate(&program, &cfg, &mut blind, 1_000_000);

    // PHAST, trained at commit as in the paper (§IV-A1).
    let mut phast_cfg = cfg.clone();
    phast_cfg.train_point = TrainPoint::Commit;
    let mut predictor = Phast::new(PhastConfig::paper());
    let with_phast = simulate(&program, &phast_cfg, &mut predictor, 1_000_000);

    println!("program: {} static instructions", program.num_insts());
    println!();
    println!("              {:>12} {:>12}", "no MDP", "PHAST");
    println!("IPC           {:>12.3} {:>12.3}", no_mdp.ipc(), with_phast.ipc());
    println!("violations    {:>12} {:>12}", no_mdp.violations, with_phast.violations);
    println!(
        "false deps    {:>12} {:>12}",
        no_mdp.false_dependences, with_phast.false_dependences
    );
    println!(
        "fwd'd loads   {:>12} {:>12}",
        no_mdp.forwarded_loads, with_phast.forwarded_loads
    );
    println!();
    println!(
        "speedup from PHAST: {:.2}x (predictor size: {:.1} KB)",
        with_phast.ipc() / no_mdp.ipc(),
        predictor.storage_bits() as f64 / 8192.0
    );
    assert!(with_phast.ipc() > no_mdp.ipc(), "PHAST should win on this loop");
}
