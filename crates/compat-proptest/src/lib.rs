//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member implements the proptest API subset the workspace's property
//! tests use: the [`proptest!`] test macro, `prop_assert*` / `prop_assume`
//! assertions, [`strategy::Strategy`] with `prop_map`, [`strategy::Just`],
//! [`prop_oneof!`], [`arbitrary::any`], integer-range and tuple strategies,
//! and [`collection::vec`].
//!
//! Differences from real proptest, chosen for simplicity:
//!
//! * case generation is deterministic (seeded from the test name), so
//!   failures always reproduce;
//! * there is no shrinking — a failing case reports its generated inputs
//!   verbatim instead of a minimized counterexample.

#![warn(missing_docs)]

pub mod test_runner {
    //! Case generation, rejection handling and failure reporting.

    /// Deterministic generator driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed (never degenerate).
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next 64-bit word (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Debiased uniform draw from `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            loop {
                let x = self.next_u64();
                let m = u128::from(x) * u128::from(span);
                if (m as u64) >= span.wrapping_neg() % span {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed assertion with its message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError::Fail(msg)
        }
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Total `prop_assume!` rejections tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Runs one property: `cases` successful executions of `body`, where
    /// the body returns its generated inputs (for failure reports) and the
    /// case outcome.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or the rejection budget is exhausted; the
    /// message includes the case number, seed and generated inputs.
    pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng, &mut Vec<String>) -> Result<(), TestCaseError>,
    {
        // Seed derived from the test name so distinct properties explore
        // distinct streams but every run of one property is identical.
        let base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        let mut rejects = 0u32;
        let mut attempt = 0u64;
        let mut done = 0u32;
        while done < config.cases {
            let seed = base.wrapping_add(attempt.wrapping_mul(0x2545_F491_4F6C_DD1D));
            attempt += 1;
            let mut rng = TestRng::new(seed);
            let mut inputs = Vec::new();
            match body(&mut rng, &mut inputs) {
                Ok(()) => done += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects}) after {done} passing cases"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}': case {done} (seed {seed:#x}) failed: {msg}\n\
                         inputs:\n  {}",
                        inputs.join("\n  ")
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A strategy mapped through a function ([`Strategy::prop_map`]).
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies ([`prop_oneof!`]).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Default strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value covering the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over the full domain).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: length uniform in `len`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Module alias so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(expr)]            // optional
///     #[test]
///     fn name(a in strategy, b: u64) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_proptest(
                __config,
                stringify!($name),
                |__rng, __inputs| {
                    $crate::__proptest_bind! { __rng, __inputs, $($params)* }
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Implementation detail of [`proptest!`]: binds one parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident $(,)?) => {};
    ($rng:ident, $inputs:ident, $pat:pat_param in $strat:expr $(, $($rest:tt)*)?) => {
        let __value = $crate::strategy::Strategy::generate(&($strat), $rng);
        $inputs.push(format!("{} = {:?}", stringify!($pat), __value));
        let $pat = __value;
        $crate::__proptest_bind! { $rng, $inputs $(, $($rest)*)? }
    };
    ($rng:ident, $inputs:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let __value: $ty = $crate::arbitrary::Arbitrary::arbitrary($rng);
        $inputs.push(format!("{} = {:?}", stringify!($name), __value));
        let $name = __value;
        $crate::__proptest_bind! { $rng, $inputs $(, $($rest)*)? }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+), __l
        );
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in -4i64..5, c in 0usize..1) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..5).contains(&b));
            prop_assert_eq!(c, 0);
        }

        #[test]
        #[allow(clippy::overly_complex_bool_expr)] // tautology exercises prop_assume!
        fn any_and_typed_params(x: u64, flag: bool) {
            prop_assert_eq!(x.wrapping_add(1).wrapping_sub(1), x);
            prop_assume!(flag || !flag);
        }

        #[test]
        fn oneof_map_and_vec(vals in prop::collection::vec(
            prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v * 2)],
            0..32,
        )) {
            prop_assert!(vals.len() < 32);
            for v in vals {
                prop_assert!(v == 1 || v == 2 || (20..40).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_case_reports_inputs() {
        crate::test_runner::run_proptest(
            crate::test_runner::ProptestConfig { cases: 8, ..Default::default() },
            "always_fails",
            |_rng, inputs| {
                inputs.push("x = 1".into());
                Err(crate::test_runner::TestCaseError::fail("boom".into()))
            },
        );
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 1..10);
        let mut r1 = crate::test_runner::TestRng::new(5);
        let mut r2 = crate::test_runner::TestRng::new(5);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
