//! Property-based tests for the ISA substrate.

use phast_isa::{ranges_overlap, MemSize, SparseMemory};
use proptest::prelude::*;

fn size_strategy() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::B1),
        Just(MemSize::B2),
        Just(MemSize::B4),
        Just(MemSize::B8)
    ]
}

proptest! {
    /// A write followed by a read of the same location returns the
    /// truncated value, regardless of address alignment or size.
    #[test]
    fn memory_write_read_roundtrip(addr in 0u64..1_000_000, value: u64, size in size_strategy()) {
        let mut m = SparseMemory::new();
        m.write(addr, size, value);
        prop_assert_eq!(m.read(addr, size), size.truncate(value));
    }

    /// Writes to disjoint ranges never interfere.
    #[test]
    fn disjoint_writes_do_not_interfere(
        a in 0u64..100_000,
        b in 0u64..100_000,
        va: u64,
        vb: u64,
        sa in size_strategy(),
        sb in size_strategy(),
    ) {
        prop_assume!(!ranges_overlap(a, sa.bytes(), b, sb.bytes()));
        let mut m = SparseMemory::new();
        m.write(a, sa, va);
        m.write(b, sb, vb);
        prop_assert_eq!(m.read(a, sa), sa.truncate(va));
        prop_assert_eq!(m.read(b, sb), sb.truncate(vb));
    }

    /// Byte-wise writes compose into the same value as a single write.
    #[test]
    fn bytewise_composition(addr in 0u64..100_000, value: u64) {
        let mut whole = SparseMemory::new();
        whole.write(addr, MemSize::B8, value);
        let mut parts = SparseMemory::new();
        for i in 0..8 {
            parts.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
        prop_assert_eq!(whole.read(addr, MemSize::B8), parts.read(addr, MemSize::B8));
    }

    /// Overlap is symmetric and consistent with interval arithmetic.
    #[test]
    fn overlap_is_symmetric(a in 0u64..10_000, asz in 1u64..16, b in 0u64..10_000, bsz in 1u64..16) {
        let fwd = ranges_overlap(a, asz, b, bsz);
        let rev = ranges_overlap(b, bsz, a, asz);
        prop_assert_eq!(fwd, rev);
        let reference = a < b + bsz && b < a + asz;
        prop_assert_eq!(fwd, reference);
    }

    /// A range always overlaps itself; adjacent ranges never do.
    #[test]
    fn overlap_identity_and_adjacency(a in 0u64..10_000, sz in 1u64..16) {
        prop_assert!(ranges_overlap(a, sz, a, sz));
        prop_assert!(!ranges_overlap(a, sz, a + sz, 1));
        prop_assert!(!ranges_overlap(a + sz, 1, a, sz));
    }
}
