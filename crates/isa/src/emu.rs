//! Functional reference emulator.
//!
//! The emulator executes a [`Program`] architecturally (no timing) and
//! yields one [`ExecRecord`] per retired instruction. The cycle-level core
//! in `phast-ooo` must commit exactly this stream; integration tests
//! compare the two. Analyses (e.g. the paper's Fig. 4 multi-store study)
//! also run directly on the emulator.

use crate::inst::{MemSize, Op, Reg};
use crate::program::{BlockId, Pc, Program};
use crate::NUM_REGS;
use std::collections::HashMap;

/// Value computed by a non-memory, value-producing operation.
///
/// `lhs` is the resolved value of `src1` (0 when absent); `rhs` is the
/// resolved value of `src2` when present, otherwise the immediate. Both the
/// emulator and the out-of-order core use this single definition so their
/// results agree bit-for-bit.
pub fn compute_value(op: &Op, lhs: u64, rhs: u64) -> Option<u64> {
    match op {
        Op::Alu(kind) => Some(kind.apply(lhs, rhs)),
        Op::LoadImm => Some(rhs),
        Op::Mul => Some(lhs.wrapping_mul(rhs)),
        Op::Div => Some(lhs / rhs.max(1)),
        Op::Fp => Some((lhs ^ rhs).rotate_left(17).wrapping_add(0x9E37_79B9_7F4A_7C15)),
        _ => None,
    }
}

/// Returns true if the byte ranges `[a, a+asz)` and `[b, b+bsz)` overlap.
pub fn ranges_overlap(a: u64, asz: u64, b: u64, bsz: u64) -> bool {
    a < b.wrapping_add(bsz) && b < a.wrapping_add(asz)
}

/// Byte-addressable sparse memory, stored as 64-byte lines.
///
/// Reads of unwritten bytes return zero. Multi-byte accesses are
/// little-endian and may cross line boundaries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseMemory {
    lines: HashMap<u64, [u8; 64]>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Reads one byte.
    #[inline]
    pub fn read_byte(&self, addr: u64) -> u8 {
        match self.lines.get(&(addr / 64)) {
            Some(line) => line[(addr % 64) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_byte(&mut self, addr: u64, value: u8) {
        self.lines.entry(addr / 64).or_insert([0; 64])[(addr % 64) as usize] = value;
    }

    /// Reads `n ≤ 8` bytes at `addr`, little-endian, zero-extended.
    ///
    /// When the access stays inside one 64-byte line (the overwhelmingly
    /// common case), the line is hashed once instead of once per byte —
    /// this sits on the simulator's load path, where per-byte probing
    /// showed up in profiles.
    #[inline]
    pub fn read_bytes(&self, addr: u64, n: u64) -> u64 {
        debug_assert!(n <= 8, "memory accesses are at most 8 bytes");
        let off = (addr % 64) as usize;
        if off + n as usize <= 64 {
            match self.lines.get(&(addr / 64)) {
                Some(line) => {
                    let mut v = 0u64;
                    for i in (0..n as usize).rev() {
                        v = (v << 8) | u64::from(line[off + i]);
                    }
                    v
                }
                None => 0,
            }
        } else {
            // Line-crossing access: per-byte fallback.
            let mut v = 0u64;
            for i in (0..n).rev() {
                v = (v << 8) | u64::from(self.read_byte(addr.wrapping_add(i)));
            }
            v
        }
    }

    /// Reads `size` bytes at `addr`, little-endian, zero-extended.
    pub fn read(&self, addr: u64, size: MemSize) -> u64 {
        self.read_bytes(addr, size.bytes())
    }

    /// Writes the low `size` bytes of `value` at `addr`, little-endian,
    /// hashing the line once when the access does not cross a boundary.
    pub fn write(&mut self, addr: u64, size: MemSize, value: u64) {
        let n = size.bytes();
        let off = (addr % 64) as usize;
        if off + n as usize <= 64 {
            let line = self.lines.entry(addr / 64).or_insert([0; 64]);
            for i in 0..n as usize {
                line[off + i] = (value >> (8 * i)) as u8;
            }
        } else {
            for i in 0..n {
                self.write_byte(addr.wrapping_add(i), (value >> (8 * i)) as u8);
            }
        }
    }

    /// Number of 64-byte lines ever written.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }

    /// All touched lines as `(line_index, data)` pairs, sorted by line
    /// index so that serialization is deterministic.
    pub fn lines_sorted(&self) -> Vec<(u64, &[u8; 64])> {
        let mut out: Vec<(u64, &[u8; 64])> = self.lines.iter().map(|(&k, v)| (k, v)).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Installs a full 64-byte line at `line_index` (addresses
    /// `line_index * 64 ..`). Used when restoring a serialized snapshot.
    pub fn insert_line(&mut self, line_index: u64, data: [u8; 64]) {
        self.lines.insert(line_index, data);
    }
}

/// Errors the emulator can encounter at run time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmuError {
    /// A `Ret` instruction's link value does not name a valid block.
    BadRetTarget {
        /// The invalid value found in the source register.
        value: u64,
    },
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::BadRetTarget { value } => write!(f, "ret to invalid block id {value}"),
        }
    }
}

impl std::error::Error for EmuError {}

/// One architecturally retired instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecRecord {
    /// Dynamic instruction number (0-based).
    pub seq: u64,
    /// Program counter of the instruction.
    pub pc: Pc,
    /// Static location of the instruction.
    pub block: BlockId,
    /// Index within the block.
    pub index: usize,
    /// Value written to the destination register, if any.
    pub dst_value: Option<u64>,
    /// Effective address for loads and stores.
    pub eff_addr: Option<u64>,
    /// Data written by stores (after truncation).
    pub store_data: Option<u64>,
    /// Outcome of a conditional branch.
    pub taken: Option<bool>,
    /// Destination PC of a taken control transfer.
    pub target_pc: Option<Pc>,
}

/// Complete architectural state of an [`Emulator`] at one point in time.
///
/// A snapshot captures registers, memory, the fetch cursor and the retired
/// instruction count — everything needed to resume execution with
/// [`Emulator::from_snapshot`] and observe the exact same record stream the
/// original emulator would have produced. Snapshots are the architectural
/// half of a sampling checkpoint (`phast-sample`).
#[derive(Clone, Debug, PartialEq)]
pub struct EmuSnapshot {
    /// Architectural register file.
    pub regs: [u64; NUM_REGS],
    /// Architectural memory.
    pub memory: SparseMemory,
    /// Next fetch point; `None` once halted.
    pub cursor: Option<(BlockId, usize)>,
    /// Instructions retired so far (the `seq` of the next record).
    pub icount: u64,
}

/// Functional emulator over a borrowed [`Program`].
///
/// # Examples
///
/// ```
/// use phast_isa::{Emulator, MemSize, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let e = b.block();
/// b.at(e)
///     .li(Reg(1), 0x2000)
///     .li(Reg(2), 42)
///     .store(Reg(1), 0, Reg(2), MemSize::B8)
///     .load(Reg(3), Reg(1), 0, MemSize::B8)
///     .halt();
/// b.set_entry(e);
/// let p = b.build().unwrap();
/// let mut emu = Emulator::new(&p);
/// emu.run(100).unwrap();
/// assert_eq!(emu.reg(Reg(3)), 42);
/// ```
#[derive(Clone)]
pub struct Emulator<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS],
    mem: SparseMemory,
    cursor: Option<(BlockId, usize)>,
    icount: u64,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator positioned at the program entry, with zeroed
    /// registers and memory.
    pub fn new(program: &'p Program) -> Emulator<'p> {
        Emulator {
            program,
            regs: [0; NUM_REGS],
            mem: SparseMemory::new(),
            cursor: Some((program.entry(), 0)),
            icount: 0,
        }
    }

    /// Creates an emulator resuming from a previously captured snapshot.
    ///
    /// `program` must be the same program the snapshot was taken from; the
    /// resumed emulator then retires exactly the records the original would
    /// have retired next.
    pub fn from_snapshot(program: &'p Program, snap: &EmuSnapshot) -> Emulator<'p> {
        Emulator {
            program,
            regs: snap.regs,
            mem: snap.memory.clone(),
            cursor: snap.cursor,
            icount: snap.icount,
        }
    }

    /// Captures the complete architectural state.
    pub fn snapshot(&self) -> EmuSnapshot {
        EmuSnapshot {
            regs: self.regs,
            memory: self.mem.clone(),
            cursor: self.cursor,
            icount: self.icount,
        }
    }

    /// The value of a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Sets a register (no-op for r0). Useful for test setup.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The architectural memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to architectural memory, for test setup.
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.icount
    }

    /// True once a `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.cursor.is_none()
    }

    /// The next fetch point, if not halted.
    pub fn cursor(&self) -> Option<(BlockId, usize)> {
        self.cursor
    }

    fn resolve(&self, r: Option<Reg>) -> u64 {
        r.map_or(0, |r| self.regs[r.index()])
    }

    /// Executes one instruction; returns `Ok(None)` once halted.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::BadRetTarget`] if a `Ret` consumes a value that
    /// is not a valid block id.
    pub fn step(&mut self) -> Result<Option<ExecRecord>, EmuError> {
        let Some((block, index)) = self.cursor else {
            return Ok(None);
        };
        let inst = self.program.inst(block, index);
        let pc = self.program.pc(block, index);
        let lhs = self.resolve(inst.src1);
        let rhs = inst.src2.map_or(inst.imm as u64, |r| self.regs[r.index()]);

        let mut rec = ExecRecord {
            seq: self.icount,
            pc,
            block,
            index,
            dst_value: None,
            eff_addr: None,
            store_data: None,
            taken: None,
            target_pc: None,
        };

        let bb = self.program.block(block);
        let seq_next = if index + 1 < bb.insts.len() {
            Some((block, index + 1))
        } else {
            bb.fallthrough.map(|f| (f, 0))
        };

        let mut write_dst = |regs: &mut [u64; NUM_REGS], v: u64| {
            if let Some(d) = inst.dst {
                if !d.is_zero() {
                    regs[d.index()] = v;
                }
                rec.dst_value = Some(v);
            }
        };

        let next = match &inst.op {
            Op::Load(size) => {
                let addr = lhs.wrapping_add(inst.imm as u64);
                let v = self.mem.read(addr, *size);
                rec.eff_addr = Some(addr);
                write_dst(&mut self.regs, v);
                seq_next
            }
            Op::Store(size) => {
                let addr = lhs.wrapping_add(inst.imm as u64);
                let data = size.truncate(rhs);
                self.mem.write(addr, *size, data);
                rec.eff_addr = Some(addr);
                rec.store_data = Some(data);
                seq_next
            }
            Op::CondBranch { kind, taken } => {
                let t = kind.eval(lhs, rhs);
                rec.taken = Some(t);
                let dest = if t { (*taken, 0) } else { seq_next.expect("validated fallthrough") };
                rec.target_pc = Some(self.program.pc(dest.0, dest.1));
                Some(dest)
            }
            Op::Jump(target) => {
                rec.target_pc = Some(self.program.block_pc(*target));
                Some((*target, 0))
            }
            Op::IndirectJump(targets) => {
                let t = targets[(lhs as usize) % targets.len()];
                rec.target_pc = Some(self.program.block_pc(t));
                Some((t, 0))
            }
            Op::Call(target) => {
                let ret_to = seq_next.expect("validated fallthrough").0;
                write_dst(&mut self.regs, u64::from(ret_to.0));
                rec.target_pc = Some(self.program.block_pc(*target));
                Some((*target, 0))
            }
            Op::Ret => {
                if lhs >= self.program.num_blocks() as u64 {
                    return Err(EmuError::BadRetTarget { value: lhs });
                }
                let t = BlockId(lhs as u32);
                rec.target_pc = Some(self.program.block_pc(t));
                Some((t, 0))
            }
            Op::Halt => None,
            op => {
                let v = compute_value(op, lhs, rhs).expect("value-producing op");
                write_dst(&mut self.regs, v);
                seq_next
            }
        };

        self.cursor = next;
        self.icount += 1;
        Ok(Some(rec))
    }

    /// Runs up to `max_insts` instructions; returns the number retired.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EmuError`] encountered.
    pub fn run(&mut self, max_insts: u64) -> Result<u64, EmuError> {
        let mut n = 0;
        while n < max_insts {
            if self.step()?.is_none() {
                break;
            }
            n += 1;
        }
        Ok(n)
    }

    /// Runs up to `max_insts` instructions, collecting their records.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EmuError`] encountered.
    pub fn run_collect(&mut self, max_insts: u64) -> Result<Vec<ExecRecord>, EmuError> {
        let mut out = Vec::new();
        while (out.len() as u64) < max_insts {
            match self.step()? {
                Some(rec) => out.push(rec),
                None => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::CondKind;
    use crate::{LINK_REG, STACK_REG};

    #[test]
    fn sparse_memory_roundtrip() {
        let mut m = SparseMemory::new();
        m.write(100, MemSize::B8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(100, MemSize::B8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(100, MemSize::B1), 0x88, "little-endian low byte");
        assert_eq!(m.read(104, MemSize::B4), 0x1122_3344);
        assert_eq!(m.read(200, MemSize::B8), 0, "unwritten reads as zero");
    }

    #[test]
    fn sparse_memory_crosses_lines() {
        let mut m = SparseMemory::new();
        m.write(62, MemSize::B4, 0xdead_beef);
        assert_eq!(m.read(62, MemSize::B4), 0xdead_beef);
        assert_eq!(m.touched_lines(), 2);
    }

    #[test]
    fn sub_word_store_merges() {
        let mut m = SparseMemory::new();
        m.write(0, MemSize::B8, 0);
        m.write(0, MemSize::B1, 0xaa);
        m.write(1, MemSize::B1, 0xbb);
        assert_eq!(m.read(0, MemSize::B2), 0xbbaa);
    }

    #[test]
    fn ranges_overlap_cases() {
        assert!(ranges_overlap(0, 8, 4, 8));
        assert!(ranges_overlap(4, 8, 0, 8));
        assert!(!ranges_overlap(0, 4, 4, 4));
        assert!(ranges_overlap(0, 1, 0, 8));
        assert!(!ranges_overlap(0, 1, 1, 1));
    }

    #[test]
    fn loop_executes_expected_count() {
        // r1 = 10; loop { r1 -= 1 } while r1 != 0
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let exit = b.block();
        b.at(entry).li(Reg(1), 10).fallthrough(body);
        b.at(body).addi(Reg(1), Reg(1), -1).branchi(CondKind::Ne, Reg(1), 0, body).fallthrough(exit);
        b.at(exit).halt();
        b.set_entry(entry);
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        let n = emu.run(10_000).unwrap();
        assert!(emu.halted());
        // 1 li + 10*(addi+branch) + 1 halt
        assert_eq!(n, 22);
        assert_eq!(emu.reg(Reg(1)), 0);
    }

    #[test]
    fn call_ret_roundtrip_with_stack_save() {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let callee = b.block();
        let after = b.block();
        b.at(entry).li(STACK_REG, 0x8000).li(Reg(1), 7).call(callee).fallthrough(after);
        b.at(callee)
            .store(STACK_REG, 0, LINK_REG, MemSize::B8)
            .addi(Reg(1), Reg(1), 1)
            .load(LINK_REG, STACK_REG, 0, MemSize::B8)
            .ret();
        b.at(after).addi(Reg(2), Reg(1), 100).halt();
        b.set_entry(entry);
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        emu.run(1000).unwrap();
        assert!(emu.halted());
        assert_eq!(emu.reg(Reg(2)), 108);
    }

    #[test]
    fn indirect_jump_selects_by_value() {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let t0 = b.block();
        let t1 = b.block();
        b.at(entry).li(Reg(1), 5).indirect_jump(Reg(1), &[t0, t1]);
        b.at(t0).li(Reg(2), 100).halt();
        b.at(t1).li(Reg(2), 200).halt();
        b.set_entry(entry);
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg(2)), 200, "5 % 2 == 1 selects t1");
    }

    #[test]
    fn bad_ret_target_is_an_error() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).li(Reg(5), 999).ret_via(Reg(5));
        b.set_entry(e);
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        assert!(emu.step().unwrap().is_some());
        assert_eq!(emu.step().unwrap_err(), EmuError::BadRetTarget { value: 999 });
    }

    #[test]
    fn records_carry_memory_details() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e)
            .li(Reg(1), 0x3000)
            .li(Reg(2), 0xffff)
            .store(Reg(1), 4, Reg(2), MemSize::B1)
            .load(Reg(3), Reg(1), 4, MemSize::B1)
            .halt();
        b.set_entry(e);
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        let recs = emu.run_collect(100).unwrap();
        let st = &recs[2];
        assert_eq!(st.eff_addr, Some(0x3004));
        assert_eq!(st.store_data, Some(0xff), "truncated to one byte");
        let ld = &recs[3];
        assert_eq!(ld.eff_addr, Some(0x3004));
        assert_eq!(ld.dst_value, Some(0xff));
    }

    #[test]
    fn snapshot_resumes_identically() {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let exit = b.block();
        b.at(entry).li(Reg(1), 50).li(Reg(2), 0x4000).fallthrough(body);
        b.at(body)
            .store(Reg(2), 0, Reg(1), MemSize::B8)
            .load(Reg(3), Reg(2), 0, MemSize::B8)
            .addi(Reg(1), Reg(1), -1)
            .branchi(CondKind::Ne, Reg(1), 0, body)
            .fallthrough(exit);
        b.at(exit).halt();
        b.set_entry(entry);
        let p = b.build().unwrap();

        let mut emu = Emulator::new(&p);
        emu.run(37).unwrap();
        let snap = emu.snapshot();
        assert_eq!(snap.icount, 37);

        let mut resumed = Emulator::from_snapshot(&p, &snap);
        assert_eq!(resumed.snapshot(), snap, "round-trip through snapshot");
        loop {
            let a = emu.step().unwrap();
            let b = resumed.step().unwrap();
            assert_eq!(a, b, "resumed stream must match original");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(emu.reg(Reg(3)), resumed.reg(Reg(3)));
    }

    #[test]
    fn branch_records_target_pc() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let t = b.block();
        b.at(e).li(Reg(1), 1).branchi(CondKind::Eq, Reg(1), 1, t).fallthrough(e);
        b.at(t).halt();
        b.set_entry(e);
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        let recs = emu.run_collect(10).unwrap();
        assert_eq!(recs[1].taken, Some(true));
        assert_eq!(recs[1].target_pc, Some(p.block_pc(t)));
    }
}
