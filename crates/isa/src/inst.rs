//! Instruction definitions for the mini-ISA.

use crate::program::BlockId;
use std::fmt;

/// An architectural register identifier.
///
/// Register 0 is hardwired to zero: reads return 0 and writes are rejected
/// by the [`ProgramBuilder`](crate::ProgramBuilder).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Returns true if this is the hardwired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the register index as a usize, for register-file indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary ALU operations, all single-cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `rhs & 63`).
    Shl,
    /// Logical shift right (by `rhs & 63`).
    Shr,
    /// Set to 1 if `lhs < rhs` (unsigned), else 0.
    SltU,
}

impl AluKind {
    /// Applies the operation to two operand values.
    #[inline]
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluKind::Add => lhs.wrapping_add(rhs),
            AluKind::Sub => lhs.wrapping_sub(rhs),
            AluKind::And => lhs & rhs,
            AluKind::Or => lhs | rhs,
            AluKind::Xor => lhs ^ rhs,
            AluKind::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            AluKind::Shr => lhs.wrapping_shr((rhs & 63) as u32),
            AluKind::SltU => u64::from(lhs < rhs),
        }
    }
}

/// Conditional-branch comparison kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CondKind {
    /// Taken if `lhs == rhs`.
    Eq,
    /// Taken if `lhs != rhs`.
    Ne,
    /// Taken if `lhs < rhs` (unsigned).
    LtU,
    /// Taken if `lhs >= rhs` (unsigned).
    GeU,
    /// Taken if `lhs < rhs` (signed).
    Lt,
    /// Taken if `lhs >= rhs` (signed).
    Ge,
}

impl CondKind {
    /// Evaluates the condition on two operand values.
    #[inline]
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CondKind::Eq => lhs == rhs,
            CondKind::Ne => lhs != rhs,
            CondKind::LtU => lhs < rhs,
            CondKind::GeU => lhs >= rhs,
            CondKind::Lt => (lhs as i64) < (rhs as i64),
            CondKind::Ge => (lhs as i64) >= (rhs as i64),
        }
    }
}

/// Memory access sizes in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }

    /// Truncates a value to this size.
    #[inline]
    pub fn truncate(self, value: u64) -> u64 {
        match self {
            MemSize::B1 => value & 0xff,
            MemSize::B2 => value & 0xffff,
            MemSize::B4 => value & 0xffff_ffff,
            MemSize::B8 => value,
        }
    }
}

/// Operation performed by an [`Inst`].
///
/// Control-transfer operations may appear only as the last instruction of a
/// basic block; the builder enforces this. Conditional branches fall through
/// to the block's `fallthrough` successor when not taken, and `Call` returns
/// (via [`Op::Ret`]) to the block's `fallthrough` successor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = src1 <kind> (src2 | imm)`; `src2` is used when present.
    Alu(AluKind),
    /// `dst = imm`.
    LoadImm,
    /// `dst = src1 * src2` (wrapping); 3-cycle latency class.
    Mul,
    /// `dst = src1 / max(src2,1)`; 12-cycle latency class.
    Div,
    /// Placeholder floating-point-latency operation: `dst = src1 ^ src2`
    /// rotated; 4-cycle latency class. Exists purely for scheduler pressure.
    Fp,
    /// `dst = mem[src1 + imm]`, zero-extended from `size` bytes.
    Load(MemSize),
    /// `mem[src1 + imm] = src2`, truncated to `size` bytes.
    Store(MemSize),
    /// Conditional branch: taken when `<kind>(src1, src2|imm)`; target is
    /// `taken`; not-taken falls through to the block successor. Divergent.
    CondBranch {
        /// Comparison deciding the branch.
        kind: CondKind,
        /// Block executed when the branch is taken.
        taken: BlockId,
    },
    /// Unconditional direct jump. Not divergent.
    Jump(BlockId),
    /// Indirect jump: target is `targets[src1 % targets.len()]`. Divergent.
    IndirectJump(Box<[BlockId]>),
    /// Direct call: jumps to `target`, writing the fallthrough block id of
    /// the current block into `dst` (conventionally the link register).
    /// Not divergent (the target is static).
    Call(BlockId),
    /// Indirect return: jumps to the block whose id is in `src1`
    /// (conventionally the link register). Divergent.
    Ret,
    /// Stops execution.
    Halt,
}

impl Op {
    /// Returns true for control-transfer operations (must terminate a block).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Op::CondBranch { .. }
                | Op::Jump(_)
                | Op::IndirectJump(_)
                | Op::Call(_)
                | Op::Ret
                | Op::Halt
        )
    }

    /// Returns true for *divergent* branches in the paper's sense:
    /// conditional or indirect control transfers, i.e. those that can take
    /// different paths on different executions (§III-B).
    pub fn is_divergent(&self) -> bool {
        matches!(self, Op::CondBranch { .. } | Op::IndirectJump(_) | Op::Ret)
    }

    /// Returns true for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load(_))
    }

    /// Returns true for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store(_))
    }
}

/// Execution-resource class of an instruction, with its latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Single-cycle integer ALU (also direct jumps and immediate moves).
    IntAlu,
    /// 3-cycle integer multiply.
    IntMul,
    /// 12-cycle integer divide (unpipelined in the scheduler model).
    IntDiv,
    /// 4-cycle floating-point-class operation.
    Fp,
    /// Load port; latency comes from the memory hierarchy.
    Load,
    /// Store port (address + data); latency 1 to resolve.
    Store,
    /// Branch unit (conditional, indirect, call, ret).
    Branch,
}

impl ExecClass {
    /// Fixed execution latency in cycles; loads return the address-generation
    /// latency only (cache latency is added by the memory model).
    pub fn latency(self) -> u32 {
        match self {
            ExecClass::IntAlu => 1,
            ExecClass::IntMul => 3,
            ExecClass::IntDiv => 12,
            ExecClass::Fp => 4,
            ExecClass::Load => 1,
            ExecClass::Store => 1,
            ExecClass::Branch => 1,
        }
    }
}

/// A single static instruction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Destination register, when the operation produces a value.
    pub dst: Option<Reg>,
    /// First source register (address base for memory ops).
    pub src1: Option<Reg>,
    /// Second source register (store data; ALU right-hand side).
    pub src2: Option<Reg>,
    /// Immediate operand (ALU rhs when `src2` is absent; address offset).
    pub imm: i64,
}

impl Inst {
    /// The execution-resource class of this instruction.
    pub fn class(&self) -> ExecClass {
        match self.op {
            Op::Alu(_) | Op::LoadImm => ExecClass::IntAlu,
            Op::Mul => ExecClass::IntMul,
            Op::Div => ExecClass::IntDiv,
            Op::Fp => ExecClass::Fp,
            Op::Load(_) => ExecClass::Load,
            Op::Store(_) => ExecClass::Store,
            Op::CondBranch { .. } | Op::Jump(_) | Op::IndirectJump(_) | Op::Call(_) | Op::Ret => {
                ExecClass::Branch
            }
            Op::Halt => ExecClass::IntAlu,
        }
    }

    /// Iterates over the source registers actually read by this instruction.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_kinds_apply() {
        assert_eq!(AluKind::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluKind::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluKind::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluKind::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluKind::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluKind::Shl.apply(1, 65), 2, "shift amount is masked");
        assert_eq!(AluKind::Shr.apply(8, 3), 1);
        assert_eq!(AluKind::SltU.apply(1, 2), 1);
        assert_eq!(AluKind::SltU.apply(2, 2), 0);
    }

    #[test]
    fn cond_kinds_eval() {
        assert!(CondKind::Eq.eval(3, 3));
        assert!(!CondKind::Eq.eval(3, 4));
        assert!(CondKind::Ne.eval(3, 4));
        assert!(CondKind::LtU.eval(1, u64::MAX));
        assert!(!CondKind::Lt.eval(1, u64::MAX), "signed: MAX is -1");
        assert!(CondKind::Ge.eval(1, u64::MAX));
        assert!(CondKind::GeU.eval(u64::MAX, 1));
    }

    #[test]
    fn mem_size_truncate() {
        assert_eq!(MemSize::B1.truncate(0x1234), 0x34);
        assert_eq!(MemSize::B2.truncate(0xabcd_ef01), 0xef01);
        assert_eq!(MemSize::B4.truncate(u64::MAX), 0xffff_ffff);
        assert_eq!(MemSize::B8.truncate(u64::MAX), u64::MAX);
    }

    #[test]
    fn divergence_classification() {
        assert!(Op::CondBranch { kind: CondKind::Eq, taken: BlockId(0) }.is_divergent());
        assert!(Op::IndirectJump(Box::new([BlockId(0)])).is_divergent());
        assert!(Op::Ret.is_divergent());
        assert!(!Op::Jump(BlockId(0)).is_divergent());
        assert!(!Op::Call(BlockId(0)).is_divergent(), "direct calls are not divergent");
        assert!(!Op::Halt.is_divergent());
    }

    #[test]
    fn control_classification() {
        assert!(Op::Halt.is_control());
        assert!(Op::Call(BlockId(1)).is_control());
        assert!(!Op::Load(MemSize::B8).is_control());
        assert!(Op::Load(MemSize::B4).is_load());
        assert!(Op::Store(MemSize::B1).is_store());
    }

    #[test]
    fn exec_class_latencies() {
        assert_eq!(ExecClass::IntAlu.latency(), 1);
        assert_eq!(ExecClass::IntMul.latency(), 3);
        assert_eq!(ExecClass::IntDiv.latency(), 12);
        assert_eq!(ExecClass::Fp.latency(), 4);
    }
}
