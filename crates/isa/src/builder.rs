//! A small validating DSL for constructing [`Program`]s.

use crate::inst::{AluKind, CondKind, Inst, MemSize, Op, Reg};
use crate::program::{BasicBlock, BlockId, Program};

/// Handle to a block under construction. Identical to [`BlockId`]; blocks
/// can be referenced (e.g. as branch targets) before they are filled in.
pub type BlockHandle = BlockId;

/// Errors detected when validating a program under construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No entry block was set with [`ProgramBuilder::set_entry`].
    NoEntry,
    /// A block contains no instructions.
    EmptyBlock(BlockId),
    /// A control-transfer instruction appears before the end of a block.
    ControlNotLast(BlockId, usize),
    /// A block requires a fallthrough successor (its last instruction is
    /// not a control transfer, or is a conditional branch or call) but none
    /// was set.
    MissingFallthrough(BlockId),
    /// A block whose last instruction is an unconditional transfer has a
    /// fallthrough successor, which would be unreachable.
    UselessFallthrough(BlockId),
    /// A branch/jump/call references a block id that does not exist.
    BadTarget(BlockId, usize),
    /// An instruction writes the hardwired zero register.
    WritesZeroReg(BlockId, usize),
    /// An indirect jump has an empty target table.
    EmptyIndirectTable(BlockId, usize),
    /// A register index is out of range.
    BadReg(BlockId, usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoEntry => write!(f, "no entry block set"),
            BuildError::EmptyBlock(b) => write!(f, "{b:?} is empty"),
            BuildError::ControlNotLast(b, i) => {
                write!(f, "control instruction not last in {b:?} at index {i}")
            }
            BuildError::MissingFallthrough(b) => write!(f, "{b:?} needs a fallthrough successor"),
            BuildError::UselessFallthrough(b) => {
                write!(f, "{b:?} has an unreachable fallthrough successor")
            }
            BuildError::BadTarget(b, i) => write!(f, "bad target in {b:?} at index {i}"),
            BuildError::WritesZeroReg(b, i) => {
                write!(f, "instruction writes r0 in {b:?} at index {i}")
            }
            BuildError::EmptyIndirectTable(b, i) => {
                write!(f, "indirect jump with empty table in {b:?} at index {i}")
            }
            BuildError::BadReg(b, i) => write!(f, "register out of range in {b:?} at index {i}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use phast_isa::{MemSize, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let entry = b.block();
/// let body = b.block();
/// b.at(entry).addi(Reg(1), Reg::ZERO, 0x1000).jump(body);
/// b.at(body)
///     .store(Reg(1), 0, Reg(1), MemSize::B8)
///     .load(Reg(2), Reg(1), 0, MemSize::B8)
///     .halt();
/// b.set_entry(entry);
/// let program = b.build().unwrap();
/// assert_eq!(program.num_blocks(), 2);
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    blocks: Vec<(Vec<Inst>, Option<BlockId>)>,
    entry: Option<BlockId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Allocates a new, empty block and returns its handle.
    pub fn block(&mut self) -> BlockHandle {
        self.blocks.push((Vec::new(), None));
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Allocates `n` new blocks at once.
    pub fn blocks(&mut self, n: usize) -> Vec<BlockHandle> {
        (0..n).map(|_| self.block()).collect()
    }

    /// Returns a cursor for appending instructions to `block`.
    pub fn at(&mut self, block: BlockHandle) -> BlockCursor<'_> {
        BlockCursor { builder: self, block }
    }

    /// Sets the entry block.
    pub fn set_entry(&mut self, block: BlockHandle) {
        self.entry = Some(block);
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] describing the first structural violation
    /// found (unterminated blocks, dangling targets, writes to r0, ...).
    pub fn build(self) -> Result<Program, BuildError> {
        let entry = self.entry.ok_or(BuildError::NoEntry)?;
        let n = self.blocks.len();
        let check_target = |b: BlockId, i: usize, t: BlockId| {
            if t.index() < n {
                Ok(())
            } else {
                Err(BuildError::BadTarget(b, i))
            }
        };
        check_target(entry, 0, entry)?;

        for (bi, (insts, fallthrough)) in self.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            if insts.is_empty() {
                return Err(BuildError::EmptyBlock(bid));
            }
            for (ii, inst) in insts.iter().enumerate() {
                let last = ii + 1 == insts.len();
                if inst.op.is_control() && !last {
                    return Err(BuildError::ControlNotLast(bid, ii));
                }
                if inst.dst.is_some_and(|r| r.is_zero()) {
                    return Err(BuildError::WritesZeroReg(bid, ii));
                }
                for r in inst.dst.into_iter().chain(inst.sources()) {
                    if r.index() >= crate::NUM_REGS {
                        return Err(BuildError::BadReg(bid, ii));
                    }
                }
                match &inst.op {
                    Op::CondBranch { taken, .. } => check_target(bid, ii, *taken)?,
                    Op::Jump(t) | Op::Call(t) => check_target(bid, ii, *t)?,
                    Op::IndirectJump(ts) => {
                        if ts.is_empty() {
                            return Err(BuildError::EmptyIndirectTable(bid, ii));
                        }
                        for &t in ts.iter() {
                            check_target(bid, ii, t)?;
                        }
                    }
                    _ => {}
                }
            }
            if let Some(ft) = fallthrough {
                check_target(bid, insts.len() - 1, *ft)?;
            }
            let last_op = &insts.last().expect("non-empty").op;
            let needs_ft = match last_op {
                Op::CondBranch { .. } | Op::Call(_) => true,
                op if !op.is_control() => true,
                _ => false,
            };
            if needs_ft && fallthrough.is_none() {
                return Err(BuildError::MissingFallthrough(bid));
            }
            if !needs_ft && fallthrough.is_some() {
                return Err(BuildError::UselessFallthrough(bid));
            }
        }

        let blocks = self
            .blocks
            .into_iter()
            .map(|(insts, fallthrough)| BasicBlock { insts, fallthrough })
            .collect();
        Ok(Program::layout(blocks, entry))
    }
}

/// Cursor appending instructions to a specific block. All instruction
/// methods return `&mut Self` so they chain.
pub struct BlockCursor<'a> {
    builder: &'a mut ProgramBuilder,
    block: BlockHandle,
}

impl BlockCursor<'_> {
    fn push(&mut self, inst: Inst) -> &mut Self {
        self.builder.blocks[self.block.index()].0.push(inst);
        self
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.push(inst)
    }

    /// `dst = src1 <kind> src2`.
    pub fn alu(&mut self, kind: AluKind, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst { op: Op::Alu(kind), dst: Some(dst), src1: Some(src1), src2: Some(src2), imm: 0 })
    }

    /// `dst = src1 <kind> imm`.
    pub fn alui(&mut self, kind: AluKind, dst: Reg, src1: Reg, imm: i64) -> &mut Self {
        self.push(Inst { op: Op::Alu(kind), dst: Some(dst), src1: Some(src1), src2: None, imm })
    }

    /// `dst = src1 + src2`.
    pub fn add(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(AluKind::Add, dst, src1, src2)
    }

    /// `dst = src1 + imm`.
    pub fn addi(&mut self, dst: Reg, src1: Reg, imm: i64) -> &mut Self {
        self.alui(AluKind::Add, dst, src1, imm)
    }

    /// `dst = src1 - src2`.
    pub fn sub(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(AluKind::Sub, dst, src1, src2)
    }

    /// `dst = src1 & imm`.
    pub fn andi(&mut self, dst: Reg, src1: Reg, imm: i64) -> &mut Self {
        self.alui(AluKind::And, dst, src1, imm)
    }

    /// `dst = src1 ^ src2`.
    pub fn xor(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(AluKind::Xor, dst, src1, src2)
    }

    /// `dst = src1 << imm`.
    pub fn shli(&mut self, dst: Reg, src1: Reg, imm: i64) -> &mut Self {
        self.alui(AluKind::Shl, dst, src1, imm)
    }

    /// `dst = src1 >> imm`.
    pub fn shri(&mut self, dst: Reg, src1: Reg, imm: i64) -> &mut Self {
        self.alui(AluKind::Shr, dst, src1, imm)
    }

    /// `dst = imm`.
    pub fn li(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Inst { op: Op::LoadImm, dst: Some(dst), src1: None, src2: None, imm })
    }

    /// `dst = src` (encoded as `src + 0`).
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.addi(dst, src, 0)
    }

    /// `dst = src1 * src2`.
    pub fn mul(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst { op: Op::Mul, dst: Some(dst), src1: Some(src1), src2: Some(src2), imm: 0 })
    }

    /// `dst = src1 / max(src2, 1)`.
    pub fn div(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst { op: Op::Div, dst: Some(dst), src1: Some(src1), src2: Some(src2), imm: 0 })
    }

    /// Floating-point-latency filler op.
    pub fn fp(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst { op: Op::Fp, dst: Some(dst), src1: Some(src1), src2: Some(src2), imm: 0 })
    }

    /// `dst = mem[base + offset]` (`size` bytes, zero-extended).
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.push(Inst { op: Op::Load(size), dst: Some(dst), src1: Some(base), src2: None, imm: offset })
    }

    /// `mem[base + offset] = data` (`size` bytes).
    pub fn store(&mut self, base: Reg, offset: i64, data: Reg, size: MemSize) -> &mut Self {
        self.push(Inst { op: Op::Store(size), dst: None, src1: Some(base), src2: Some(data), imm: offset })
    }

    /// Conditional branch on `kind(src1, src2)` to `taken`; requires a
    /// fallthrough successor on the block.
    pub fn branch(&mut self, kind: CondKind, src1: Reg, src2: Reg, taken: BlockHandle) -> &mut Self {
        self.push(Inst {
            op: Op::CondBranch { kind, taken },
            dst: None,
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
        })
    }

    /// Conditional branch comparing `src1` against an immediate.
    pub fn branchi(&mut self, kind: CondKind, src1: Reg, imm: i64, taken: BlockHandle) -> &mut Self {
        self.push(Inst {
            op: Op::CondBranch { kind, taken },
            dst: None,
            src1: Some(src1),
            src2: None,
            imm,
        })
    }

    /// `beq src1, src2 -> taken`.
    pub fn beq(&mut self, src1: Reg, src2: Reg, taken: BlockHandle) -> &mut Self {
        self.branch(CondKind::Eq, src1, src2, taken)
    }

    /// `bne src1, src2 -> taken`.
    pub fn bne(&mut self, src1: Reg, src2: Reg, taken: BlockHandle) -> &mut Self {
        self.branch(CondKind::Ne, src1, src2, taken)
    }

    /// `bltu src1, imm -> taken`.
    pub fn bltui(&mut self, src1: Reg, imm: i64, taken: BlockHandle) -> &mut Self {
        self.branchi(CondKind::LtU, src1, imm, taken)
    }

    /// Unconditional direct jump.
    pub fn jump(&mut self, target: BlockHandle) -> &mut Self {
        self.push(Inst { op: Op::Jump(target), dst: None, src1: None, src2: None, imm: 0 })
    }

    /// Indirect jump to `targets[selector % targets.len()]`.
    pub fn indirect_jump(&mut self, selector: Reg, targets: &[BlockHandle]) -> &mut Self {
        self.push(Inst {
            op: Op::IndirectJump(targets.to_vec().into_boxed_slice()),
            dst: None,
            src1: Some(selector),
            src2: None,
            imm: 0,
        })
    }

    /// Direct call to `target`; writes the return block id into the link
    /// register. Requires a fallthrough successor (the return point).
    pub fn call(&mut self, target: BlockHandle) -> &mut Self {
        self.push(Inst {
            op: Op::Call(target),
            dst: Some(crate::LINK_REG),
            src1: None,
            src2: None,
            imm: 0,
        })
    }

    /// Indirect return to the block id held in the link register.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst { op: Op::Ret, dst: None, src1: Some(crate::LINK_REG), src2: None, imm: 0 })
    }

    /// Indirect return to the block id held in `src`.
    pub fn ret_via(&mut self, src: Reg) -> &mut Self {
        self.push(Inst { op: Op::Ret, dst: None, src1: Some(src), src2: None, imm: 0 })
    }

    /// Halts the program.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst { op: Op::Halt, dst: None, src1: None, src2: None, imm: 0 })
    }

    /// Sets the fallthrough successor of this block.
    pub fn fallthrough(&mut self, next: BlockHandle) -> &mut Self {
        self.builder.blocks[self.block.index()].1 = Some(next);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_missing_entry() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).halt();
        assert_eq!(b.build().unwrap_err(), BuildError::NoEntry);
    }

    #[test]
    fn rejects_empty_block() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::EmptyBlock(BlockId(0)));
    }

    #[test]
    fn rejects_control_not_last() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).halt().addi(Reg(1), Reg::ZERO, 1);
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::ControlNotLast(BlockId(0), 0));
    }

    #[test]
    fn rejects_missing_fallthrough_for_cond_branch() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).branchi(CondKind::Eq, Reg(1), 0, e);
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::MissingFallthrough(BlockId(0)));
    }

    #[test]
    fn rejects_useless_fallthrough() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).halt().fallthrough(e);
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::UselessFallthrough(BlockId(0)));
    }

    #[test]
    fn rejects_bad_target() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).jump(BlockId(7));
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::BadTarget(BlockId(0), 0));
    }

    #[test]
    fn rejects_write_to_zero_reg() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).addi(Reg::ZERO, Reg(1), 1).halt();
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::WritesZeroReg(BlockId(0), 0));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).addi(Reg(40), Reg::ZERO, 1).halt();
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::BadReg(BlockId(0), 0));
    }

    #[test]
    fn rejects_empty_indirect_table() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).indirect_jump(Reg(1), &[]);
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::EmptyIndirectTable(BlockId(0), 0));
    }

    #[test]
    fn accepts_fallthrough_block() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let x = b.block();
        b.at(e).addi(Reg(1), Reg::ZERO, 1).fallthrough(x);
        b.at(x).halt();
        b.set_entry(e);
        let p = b.build().unwrap();
        assert_eq!(p.block(BlockId(0)).fallthrough, Some(BlockId(1)));
    }

    #[test]
    fn call_requires_fallthrough() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let f = b.block();
        b.at(e).call(f);
        b.at(f).ret();
        b.set_entry(e);
        assert_eq!(b.build().unwrap_err(), BuildError::MissingFallthrough(BlockId(0)));
    }
}
