//! Programs as basic-block control-flow graphs, with a synthetic address
//! layout so PC-indexed predictor structures behave realistically.

use crate::inst::{Inst, Op};
use std::fmt;

/// Identifier of a basic block within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A synthetic program counter (byte address of an instruction).
pub type Pc = u64;

/// Base address at which programs are laid out.
pub const TEXT_BASE: Pc = 0x0040_0000;

/// A straight-line sequence of instructions.
///
/// Only the final instruction may be a control transfer. If the final
/// instruction is not a control transfer (or is a conditional branch that
/// falls through, or a call that returns), execution continues at
/// `fallthrough`.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// The instructions of the block, in program order.
    pub insts: Vec<Inst>,
    /// Successor for fallthrough / not-taken / call-return continuation.
    pub fallthrough: Option<BlockId>,
}

impl BasicBlock {
    /// Returns true if the block's last instruction is a control transfer.
    pub fn ends_in_control(&self) -> bool {
        self.insts.last().is_some_and(|i| i.op.is_control())
    }
}

/// A validated program: a CFG of basic blocks plus a deterministic address
/// layout.
///
/// Construct programs with [`ProgramBuilder`](crate::ProgramBuilder); the
/// builder guarantees the structural invariants that [`Program`] relies on
/// (valid targets, control ops only in terminal position, fallthroughs
/// present where required).
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) entry: BlockId,
    /// Start address of each block; parallel to `blocks`.
    pub(crate) block_base: Vec<Pc>,
}

impl Program {
    pub(crate) fn layout(blocks: Vec<BasicBlock>, entry: BlockId) -> Program {
        // Lay blocks out sequentially, 4 bytes per instruction, with a
        // 4-byte gap between blocks so block starts differ in their low
        // bits — PHAST keys on the 5 LSBs of branch targets, so block
        // start addresses must not be uniformly aligned.
        let mut block_base = Vec::with_capacity(blocks.len());
        let mut addr = TEXT_BASE;
        for b in &blocks {
            block_base.push(addr);
            addr += 4 * (b.insts.len() as Pc + 1);
        }
        Program { blocks, entry, block_base }
    }

    /// The entry block.
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of static instructions.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Returns the block with the given id, or `None` if out of range.
    /// Wrong-path execution uses this to tolerate garbage indirect targets.
    #[inline]
    pub fn try_block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.index())
    }

    /// The instruction at `(block, index)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn inst(&self, block: BlockId, index: usize) -> &Inst {
        &self.blocks[block.index()].insts[index]
    }

    /// The synthetic PC of the instruction at `(block, index)`.
    #[inline]
    pub fn pc(&self, block: BlockId, index: usize) -> Pc {
        self.block_base[block.index()] + 4 * index as Pc
    }

    /// The PC of the first instruction of `block`.
    #[inline]
    pub fn block_pc(&self, block: BlockId) -> Pc {
        self.block_base[block.index()]
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Counts static instructions satisfying a predicate.
    pub fn count_insts(&self, mut pred: impl FnMut(&Inst) -> bool) -> usize {
        self.blocks.iter().flat_map(|b| &b.insts).filter(|i| pred(i)).count()
    }

    /// Counts static divergent branches (conditional, indirect, ret).
    pub fn num_divergent_branches(&self) -> usize {
        self.count_insts(|i| i.op.is_divergent())
    }

    /// Counts static loads and stores as `(loads, stores)`.
    pub fn num_mem_ops(&self) -> (usize, usize) {
        let loads = self.count_insts(|i| matches!(i.op, Op::Load(_)));
        let stores = self.count_insts(|i| matches!(i.op, Op::Store(_)));
        (loads, stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{MemSize, Reg};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let x = b.block();
        b.at(e).addi(Reg(1), Reg::ZERO, 5).jump(x);
        b.at(x).load(Reg(2), Reg(1), 0, MemSize::B8).halt();
        b.set_entry(e);
        b.build().expect("valid program")
    }

    #[test]
    fn layout_is_sequential_and_gapped() {
        let p = tiny();
        assert_eq!(p.block_pc(BlockId(0)), TEXT_BASE);
        // Block 0 has 2 insts -> 2*4 bytes + 4-byte gap.
        assert_eq!(p.block_pc(BlockId(1)), TEXT_BASE + 12);
        assert_eq!(p.pc(BlockId(1), 1), TEXT_BASE + 16);
    }

    #[test]
    fn block_starts_have_distinct_low_bits() {
        let mut b = ProgramBuilder::new();
        let blocks: Vec<_> = (0..8).map(|_| b.block()).collect();
        for (i, &bb) in blocks.iter().enumerate() {
            let mut c = b.at(bb);
            for _ in 0..=i {
                c.addi(Reg(1), Reg::ZERO, 1);
            }
            if i + 1 < blocks.len() {
                c.jump(blocks[i + 1]);
            } else {
                c.halt();
            }
        }
        b.set_entry(blocks[0]);
        let p = b.build().unwrap();
        let low: std::collections::HashSet<u64> =
            (0..8).map(|i| p.block_pc(BlockId(i)) & 0x1f).collect();
        assert!(low.len() > 1, "low 5 bits of block starts must vary");
    }

    #[test]
    fn counting_helpers() {
        let p = tiny();
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.num_insts(), 4);
        let (loads, stores) = p.num_mem_ops();
        assert_eq!((loads, stores), (1, 0));
        assert_eq!(p.num_divergent_branches(), 0);
    }
}
