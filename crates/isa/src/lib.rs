//! Mini-ISA and program model for the PHAST reproduction.
//!
//! The paper evaluates memory dependence prediction (MDP) on SPEC CPU 2017
//! traces fed into a cycle-accurate x86 simulator. This crate provides the
//! substitute substrate: a small register-machine ISA with explicit
//! basic-block control flow, rich enough to exercise every mechanism MDP
//! cares about:
//!
//! * loads and stores of 1/2/4/8 bytes (sub-word stores create the
//!   multi-store dependences of the paper's Fig. 4),
//! * conditional branches and indirect jumps (the *divergent branches* that
//!   form PHAST's path history),
//! * direct calls and returns through a link register, enabling the classic
//!   register save/restore store→load dependences,
//! * ALU/multiply/divide/FP latency classes so the out-of-order scheduler
//!   has realistic pressure.
//!
//! Programs are built with [`ProgramBuilder`], which validates control flow
//! at build time. [`Emulator`] is a functional reference implementation used
//! both to drive analyses and as a correctness oracle for the cycle-level
//! core in `phast-ooo`: the committed instruction stream of the out-of-order
//! core must match the emulator's stream exactly.

#![warn(missing_docs)]

mod builder;
mod emu;
mod inst;
mod program;

pub use builder::{BlockHandle, BuildError, ProgramBuilder};
pub use emu::{compute_value, ranges_overlap, EmuError, EmuSnapshot, Emulator, ExecRecord, SparseMemory};
pub use inst::{AluKind, CondKind, ExecClass, Inst, MemSize, Op, Reg};
pub use program::{BasicBlock, BlockId, Pc, Program};

/// Number of architectural integer registers. Register 0 is hardwired to 0.
pub const NUM_REGS: usize = 32;

/// Conventional link register written by [`Op::Call`] and read by [`Op::Ret`].
pub const LINK_REG: Reg = Reg(31);

/// Conventional stack pointer used by workloads for save/restore sequences.
pub const STACK_REG: Reg = Reg(30);
