//! Conditional-branch direction predictors.
//!
//! These cover the 30-year trend line of the paper's Fig. 1: static,
//! bimodal (2-bit counters), gshare, and perceptron. TAGE lives in its own
//! module. All predictors are pure over `(pc, ghr)`: the core owns the
//! speculative global history register and passes it in, which makes
//! checkpoint/restore on squash trivial.

use phast_isa::Pc;

/// A conditional-branch direction predictor.
///
/// `predict` must not mutate predictor state observable by later
/// predictions (internal statistics are fine); all learning happens in
/// `update`, which the core calls at branch resolution with the same
/// history value used to predict.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc` under global history
    /// `ghr` (newest outcome in bit 0).
    fn predict(&self, pc: Pc, ghr: u128) -> bool;

    /// Trains the predictor with the resolved outcome.
    fn update(&mut self, pc: Pc, ghr: u128, taken: bool);

    /// Total storage in bits, for the Fig. 1 storage accounting.
    fn storage_bits(&self) -> usize;

    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Always predicts taken — the degenerate 1983-era baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticTaken;

impl DirectionPredictor for StaticTaken {
    fn predict(&self, _pc: Pc, _ghr: u128) -> bool {
        true
    }

    fn update(&mut self, _pc: Pc, _ghr: u128, _taken: bool) {}

    fn storage_bits(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "static-taken"
    }
}

#[inline]
pub(crate) fn ctr_update(ctr: &mut u8, taken: bool, max: u8) {
    if taken {
        if *ctr < max {
            *ctr += 1;
        }
    } else if *ctr > 0 {
        *ctr -= 1;
    }
}

/// Classic bimodal predictor: a PC-indexed table of 2-bit counters.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<u8>,
    index_mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Bimodal {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Bimodal { table: vec![1; entries], index_mask: entries as u64 - 1 }
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: Pc, _ghr: u128) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: Pc, _ghr: u128, taken: bool) {
        let i = self.index(pc);
        ctr_update(&mut self.table[i], taken, 3);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// McFarling's gshare: global history XOR PC indexes a 2-bit counter table.
#[derive(Clone, Debug)]
pub struct GShare {
    table: Vec<u8>,
    index_mask: u64,
    history_bits: u32,
}

impl GShare {
    /// Creates a gshare predictor with `entries` counters (power of two)
    /// and `history_bits` of global history (≤ 64).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits > 64`.
    pub fn new(entries: usize, history_bits: u32) -> GShare {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 64, "history_bits must be <= 64");
        GShare { table: vec![1; entries], index_mask: entries as u64 - 1, history_bits }
    }

    #[inline]
    fn index(&self, pc: Pc, ghr: u128) -> usize {
        let h = (ghr as u64) & ((1u64 << self.history_bits.min(63)) - 1);
        (((pc >> 2) ^ h) & self.index_mask) as usize
    }
}

impl DirectionPredictor for GShare {
    fn predict(&self, pc: Pc, ghr: u128) -> bool {
        self.table[self.index(pc, ghr)] >= 2
    }

    fn update(&mut self, pc: Pc, ghr: u128, taken: bool) {
        let i = self.index(pc, ghr);
        ctr_update(&mut self.table[i], taken, 3);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// Jiménez & Lin's perceptron predictor.
#[derive(Clone, Debug)]
pub struct Perceptron {
    weights: Vec<Vec<i16>>, // [entry][history_bits + 1 (bias)]
    history_bits: u32,
    threshold: i32,
    index_mask: u64,
}

impl Perceptron {
    /// Creates a perceptron predictor with `entries` perceptrons over
    /// `history_bits` bits of history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits > 64`.
    pub fn new(entries: usize, history_bits: u32) -> Perceptron {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 64, "history_bits must be <= 64");
        let threshold = (1.93 * history_bits as f64 + 14.0) as i32;
        Perceptron {
            weights: vec![vec![0; history_bits as usize + 1]; entries],
            history_bits,
            threshold,
            index_mask: entries as u64 - 1,
        }
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    fn output(&self, pc: Pc, ghr: u128) -> i32 {
        let w = &self.weights[self.index(pc)];
        let mut y = i32::from(w[0]); // bias
        for b in 0..self.history_bits as usize {
            let x = if (ghr >> b) & 1 == 1 { 1 } else { -1 };
            y += i32::from(w[b + 1]) * x;
        }
        y
    }
}

impl DirectionPredictor for Perceptron {
    fn predict(&self, pc: Pc, ghr: u128) -> bool {
        self.output(pc, ghr) >= 0
    }

    fn update(&mut self, pc: Pc, ghr: u128, taken: bool) {
        let y = self.output(pc, ghr);
        let predicted = y >= 0;
        if predicted != taken || y.abs() <= self.threshold {
            let t: i16 = if taken { 1 } else { -1 };
            let i = self.index(pc);
            let w = &mut self.weights[i];
            w[0] = w[0].saturating_add(t).clamp(-128, 127);
            for b in 0..self.history_bits as usize {
                let x: i16 = if (ghr >> b) & 1 == 1 { 1 } else { -1 };
                w[b + 1] = w[b + 1].saturating_add(t * x).clamp(-128, 127);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.weights.len() * (self.history_bits as usize + 1) * 8
    }

    fn name(&self) -> &'static str {
        "perceptron"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(0x400_0000, 0, true);
        }
        assert!(p.predict(0x400_0000, 0));
        for _ in 0..4 {
            p.update(0x400_0000, 0, false);
        }
        assert!(!p.predict(0x400_0000, 0));
    }

    #[test]
    fn gshare_separates_by_history() {
        let mut p = GShare::new(1024, 8);
        let pc = 0x40_0040;
        // Alternating pattern correlated with history: taken iff last
        // outcome bit set.
        for _ in 0..64 {
            p.update(pc, 0b1, true);
            p.update(pc, 0b0, false);
        }
        assert!(p.predict(pc, 0b1));
        assert!(!p.predict(pc, 0b0));
    }

    #[test]
    fn perceptron_learns_history_correlation() {
        let mut p = Perceptron::new(256, 16);
        let pc = 0x40_1000;
        // Outcome equals history bit 3.
        for i in 0..400u64 {
            let ghr = u128::from(i.wrapping_mul(2654435761));
            let taken = (ghr >> 3) & 1 == 1;
            p.update(pc, ghr, taken);
        }
        let mut correct = 0;
        for i in 400..600u64 {
            let ghr = u128::from(i.wrapping_mul(2654435761));
            let taken = (ghr >> 3) & 1 == 1;
            if p.predict(pc, ghr) == taken {
                correct += 1;
            }
        }
        assert!(correct > 180, "perceptron should learn a single-bit correlation, got {correct}/200");
    }

    #[test]
    fn static_taken_is_free() {
        let p = StaticTaken;
        assert!(p.predict(0, 0));
        assert_eq!(p.storage_bits(), 0);
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(Bimodal::new(4096).storage_bits(), 8192);
        assert_eq!(GShare::new(4096, 12).storage_bits(), 8192);
        assert_eq!(Perceptron::new(256, 32).storage_bits(), 256 * 33 * 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bimodal_rejects_non_power_of_two() {
        let _ = Bimodal::new(100);
    }
}
