//! Divergent-branch global history (§III-B, §IV-A2 of the paper).

/// Capacity of the divergent-history ring buffer. Large enough to cover the
/// longest history any predictor uses (MDP-TAGE's longest component) plus
/// all in-flight branches.
pub const HISTORY_CAPACITY: usize = 4096;

/// One divergent-branch outcome: a conditional branch or an indirect
/// transfer (indirect jump / return).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DivergentEvent {
    /// True for indirect transfers, false for conditional branches.
    pub indirect: bool,
    /// Taken/not-taken outcome (always true for indirect transfers).
    pub taken: bool,
    /// The actual destination address of the branch (the branch target when
    /// taken, the fallthrough PC when not). Only the 5 LSBs are kept.
    pub target: u64,
}

impl DivergentEvent {
    /// Packs the event into 7 bits: `[indirect:1 | taken:1 | target:5]`.
    #[inline]
    pub fn packed(self) -> u8 {
        (u8::from(self.indirect) << 6) | (u8::from(self.taken) << 5) | (self.target as u8 & 0x1f)
    }

    /// The per-use history contribution of a packed event (§IV-A2):
    ///
    /// * the **oldest** entry of a collected path (the divergent branch
    ///   previous to the conflicting store) contributes all 7 bits — its
    ///   destination disambiguates paths even for conditional branches
    ///   (the paper's Fig. 5 N+1 rule);
    /// * younger conditional branches contribute only their outcome bit;
    /// * younger indirect branches contribute their destination bits.
    #[inline]
    pub fn contribution(packed: u8, oldest: bool) -> u8 {
        if oldest {
            packed
        } else if packed & 0x40 != 0 {
            packed & 0x5f // indirect: type + 5-bit destination
        } else {
            packed & 0x20 // conditional: outcome bit only
        }
    }
}

/// Checkpoint of a [`DivergentHistory`], restorable in O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryCheckpoint {
    head: usize,
    count: u64,
}

/// Global history register of divergent branches.
///
/// Backed by a ring buffer of packed 7-bit events. The `count` of events
/// ever pushed doubles as the decode-time divergent-branch counter the
/// paper uses to compute store→load history lengths (§IV-A2): loads and
/// stores copy `count()` at decode, and a conflict's history length is the
/// difference of the two copies plus one.
#[derive(Clone, PartialEq, Eq)]
pub struct DivergentHistory {
    buf: Box<[u8]>,
    head: usize,
    count: u64,
}

impl Default for DivergentHistory {
    fn default() -> Self {
        DivergentHistory::new()
    }
}

impl DivergentHistory {
    /// Creates an empty history.
    pub fn new() -> DivergentHistory {
        DivergentHistory { buf: vec![0u8; HISTORY_CAPACITY].into_boxed_slice(), head: 0, count: 0 }
    }

    /// Records a divergent-branch outcome.
    pub fn push(&mut self, event: DivergentEvent) {
        self.buf[self.head] = event.packed();
        self.head = (self.head + 1) % HISTORY_CAPACITY;
        self.count += 1;
    }

    /// Total number of events ever pushed (the decode-time counter).
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Takes a checkpoint for later [`restore`](Self::restore).
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint { head: self.head, count: self.count }
    }

    /// Restores a checkpoint taken on this history. Rewinding discards
    /// events pushed after the checkpoint; the core also restores
    /// *forward* to undo a temporary rewind (ring contents are preserved
    /// until overwritten, so both directions are exact within
    /// [`HISTORY_CAPACITY`]).
    pub fn restore(&mut self, cp: HistoryCheckpoint) {
        self.head = cp.head;
        self.count = cp.count;
    }

    /// The packed event `i` positions back from the newest (0 = newest).
    /// Returns 0 for positions older than anything recorded.
    #[inline]
    pub fn packed_at(&self, i: usize) -> u8 {
        if (i as u64) < self.count && i < HISTORY_CAPACITY {
            self.buf[(self.head + HISTORY_CAPACITY - 1 - i) % HISTORY_CAPACITY]
        } else {
            0
        }
    }

    /// Collects the `len` newest events into a [`Path`], applying the
    /// oldest-entry destination rule. A `len` of 0 yields the empty path.
    pub fn path(&self, len: usize) -> Path {
        let len = len.min(HISTORY_CAPACITY).min(self.count as usize);
        let mut entries = Vec::with_capacity(len);
        for i in 0..len {
            let packed = self.packed_at(i);
            entries.push(DivergentEvent::contribution(packed, i + 1 == len));
        }
        Path { entries }
    }

    /// Collects the `len` newest events *without* the oldest-entry
    /// destination rule: every entry uses the younger-entry contribution
    /// (outcome bit for conditionals, destination for indirects). This is
    /// the history form used by NoSQ and MDP-TAGE, which predate the
    /// paper's N+1 rule.
    pub fn path_plain(&self, len: usize) -> Path {
        let len = len.min(HISTORY_CAPACITY).min(self.count as usize);
        let mut entries = Vec::with_capacity(len);
        for i in 0..len {
            entries.push(DivergentEvent::contribution(self.packed_at(i), false));
        }
        Path { entries }
    }

    /// Raw ring-buffer contents for serialization: `(buf, head, count)`.
    /// `buf` is always exactly [`HISTORY_CAPACITY`] bytes. Together with
    /// [`from_raw_parts`](Self::from_raw_parts) this round-trips the history
    /// bit-identically (checkpointing in `phast-sample`).
    pub fn raw_parts(&self) -> (&[u8], usize, u64) {
        (&self.buf, self.head, self.count)
    }

    /// Reconstructs a history from parts captured by
    /// [`raw_parts`](Self::raw_parts).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly [`HISTORY_CAPACITY`] bytes or `head`
    /// is out of range.
    pub fn from_raw_parts(buf: &[u8], head: usize, count: u64) -> DivergentHistory {
        assert_eq!(buf.len(), HISTORY_CAPACITY, "history buffer must be full-capacity");
        assert!(head < HISTORY_CAPACITY, "history head out of range");
        DivergentHistory { buf: buf.to_vec().into_boxed_slice(), head, count }
    }

    /// Allocation-free equivalent of `self.path(len).fold(bits)`.
    pub fn fold_path(&self, len: usize, bits: u32) -> u64 {
        PathFolder::new(self).fold_path(len, bits)
    }

    /// Allocation-free equivalent of `self.path_plain(len).fold(bits)`.
    pub fn fold_plain(&self, len: usize, bits: u32) -> u64 {
        PathFolder::new(self).fold_plain(len, bits)
    }
}

impl std::fmt::Debug for DivergentHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DivergentHistory")
            .field("count", &self.count)
            .field("head", &self.head)
            .finish()
    }
}

/// A collected store→load path: the per-use history string, newest entry
/// first. Used directly as a key by unlimited predictors and folded to a
/// small index/tag by table-based predictors.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Path {
    /// 7-bit contributions, newest first; the last entry carries the full
    /// destination of the divergent branch previous to the store.
    pub entries: Vec<u8>,
}

impl Path {
    /// Number of history entries in the path.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for the empty (length-0) path.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds the path into `bits` bits by rotate-XOR, TAGE-style.
    pub fn fold(&self, bits: u32) -> u64 {
        fold_bits(self.entries.iter().copied(), bits)
    }
}

/// Folds a sequence of 7-bit values into `bits` bits (1..=63).
/// Deterministic and order-sensitive. Each entry is diffused across the
/// full accumulator with a multiplicative mix before the final fold-down,
/// so single-bit differences between paths land on many table-index bits
/// — weakly mixed history hashes cause systematic set conflicts between
/// hot loads (the paper's footnote 4 notes that good hashes matter for
/// every predictor it evaluates).
pub fn fold_bits(values: impl Iterator<Item = u8>, bits: u32) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = mix(acc, v);
    }
    fold_down(acc, bits)
}

/// One mixing step of [`fold_bits`]: diffuses `v` into the accumulator.
#[inline]
fn mix(acc: u64, v: u8) -> u64 {
    acc.rotate_left(13).wrapping_add(u64::from(v) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Folds a 64-bit accumulator down to `bits` bits (the tail of
/// [`fold_bits`]).
#[inline]
fn fold_down(acc: u64, bits: u32) -> u64 {
    assert!((1..=63).contains(&bits), "fold width must be 1..=63");
    let mask = (1u64 << bits) - 1;
    let mut out = 0u64;
    let mut a = acc;
    while a != 0 {
        out ^= a & mask;
        a >>= bits;
    }
    out
}

/// Incremental, allocation-free path folder over one [`DivergentHistory`].
///
/// Table-based predictors probe many components whose paths are nested
/// prefixes of the same newest-first event sequence. Collecting a [`Path`]
/// per component allocates a `Vec` and re-walks the shared prefix every
/// time — on MDP-TAGE's 12-component geometric series that is ~4900 ring
/// reads per load where ~2000 suffice. A `PathFolder` walks the ring once,
/// carrying the raw fold accumulator forward, and folds it down at each
/// requested length.
///
/// Lengths must be non-decreasing across calls (probe components shortest
/// history first, as every TAGE-style loop already does). Each fold is
/// bit-identical to collecting the equivalent [`Path`] and calling
/// [`Path::fold`].
pub struct PathFolder<'a> {
    hist: &'a DivergentHistory,
    /// Events mixed into `acc` so far (= plain-contribution prefix length).
    pos: usize,
    /// Usable history length: `min(count, HISTORY_CAPACITY)`.
    limit: usize,
    acc: u64,
}

impl<'a> PathFolder<'a> {
    /// Starts a folder at prefix length 0.
    pub fn new(hist: &'a DivergentHistory) -> PathFolder<'a> {
        let limit = hist.count.min(HISTORY_CAPACITY as u64) as usize;
        PathFolder { hist, pos: 0, limit, acc: 0 }
    }

    #[inline]
    fn advance_to(&mut self, len: usize) {
        debug_assert!(len >= self.pos, "PathFolder lengths must be non-decreasing");
        while self.pos < len {
            let v = DivergentEvent::contribution(self.hist.packed_at(self.pos), false);
            self.acc = mix(self.acc, v);
            self.pos += 1;
        }
    }

    /// Folds the `len`-newest plain path (no oldest-entry rule) into
    /// `bits` bits. Equals `hist.path_plain(len).fold(bits)`.
    pub fn fold_plain(&mut self, len: usize, bits: u32) -> u64 {
        let len = len.min(self.limit);
        self.advance_to(len);
        fold_down(self.acc, bits)
    }

    /// Folds the `len`-newest path *with* the oldest-entry destination rule
    /// (§IV-A2's N+1 form) into `bits` bits. Equals
    /// `hist.path(len).fold(bits)`. The oldest entry's full contribution is
    /// mixed off to the side so the shared plain prefix stays reusable by
    /// later (longer) folds.
    pub fn fold_path(&mut self, len: usize, bits: u32) -> u64 {
        let len = len.min(self.limit);
        if len == 0 {
            return fold_down(0, bits);
        }
        self.advance_to(len - 1);
        let oldest = DivergentEvent::contribution(self.hist.packed_at(len - 1), true);
        fold_down(mix(self.acc, oldest), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(taken: bool, target: u64) -> DivergentEvent {
        DivergentEvent { indirect: false, taken, target }
    }

    fn indirect(target: u64) -> DivergentEvent {
        DivergentEvent { indirect: true, taken: true, target }
    }

    #[test]
    fn packing_layout() {
        assert_eq!(cond(true, 0).packed(), 0b010_0000);
        assert_eq!(cond(false, 0x1f).packed(), 0b001_1111);
        assert_eq!(indirect(0b10110).packed(), 0b111_0110);
    }

    #[test]
    fn contribution_rules() {
        let c = cond(true, 0b11111).packed();
        // Younger conditional: outcome only, destination masked away.
        assert_eq!(DivergentEvent::contribution(c, false), 0b010_0000);
        // Oldest entry keeps its destination even when conditional.
        assert_eq!(DivergentEvent::contribution(c, true), 0b011_1111);
        let i = indirect(0b10101).packed();
        assert_eq!(DivergentEvent::contribution(i, false), 0b101_0101);
        assert_eq!(DivergentEvent::contribution(i, true), 0b111_0101);
    }

    #[test]
    fn path_collects_newest_first_with_oldest_rule() {
        let mut h = DivergentHistory::new();
        h.push(cond(true, 1)); // oldest
        h.push(indirect(2));
        h.push(cond(false, 3)); // newest
        let p = h.path(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.entries[0], DivergentEvent::contribution(cond(false, 3).packed(), false));
        assert_eq!(p.entries[1], DivergentEvent::contribution(indirect(2).packed(), false));
        assert_eq!(p.entries[2], cond(true, 1).packed(), "oldest keeps full info");
    }

    #[test]
    fn path_truncates_to_available() {
        let mut h = DivergentHistory::new();
        h.push(cond(true, 0));
        assert_eq!(h.path(8).len(), 1);
        assert!(h.path(0).is_empty());
    }

    #[test]
    fn same_suffix_different_oldest_destination_differs() {
        // The Fig. 5 scenario: identical branch outcomes between store and
        // load, but the branch previous to the store lands elsewhere.
        let mut left = DivergentHistory::new();
        left.push(cond(true, 0b00001));
        left.push(cond(true, 9999)); // suffix branch, same outcome both sides
        let mut right = DivergentHistory::new();
        right.push(cond(true, 0b00010));
        right.push(cond(true, 1234));
        assert_ne!(left.path(2), right.path(2), "N+1 destination disambiguates");
        // Without the oldest-entry rule (length 1) they are identical.
        assert_eq!(left.path(1).entries[0] & 0x20, right.path(1).entries[0] & 0x20);
    }

    #[test]
    fn checkpoint_restore_discards_wrong_path() {
        let mut h = DivergentHistory::new();
        h.push(cond(true, 1));
        let cp = h.checkpoint();
        h.push(cond(false, 2));
        h.push(indirect(3));
        assert_eq!(h.count(), 3);
        h.restore(cp);
        assert_eq!(h.count(), 1);
        assert_eq!(h.path(1).entries[0], cond(true, 1).packed());
    }

    #[test]
    fn ring_wraps_without_losing_recent_entries() {
        let mut h = DivergentHistory::new();
        for i in 0..(HISTORY_CAPACITY as u64 + 10) {
            h.push(cond(i % 2 == 0, i));
        }
        assert_eq!(h.count(), HISTORY_CAPACITY as u64 + 10);
        let newest = h.packed_at(0);
        assert_eq!(newest, cond((HISTORY_CAPACITY as u64 + 9).is_multiple_of(2), HISTORY_CAPACITY as u64 + 9).packed());
    }

    #[test]
    fn fold_respects_width_and_order() {
        let a = fold_bits([1u8, 2, 3].into_iter(), 10);
        let b = fold_bits([3u8, 2, 1].into_iter(), 10);
        assert!(a < 1024 && b < 1024);
        assert_ne!(a, b, "folding is order-sensitive");
        assert_eq!(fold_bits(std::iter::empty(), 16), 0);
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn fold_rejects_zero_width() {
        let _ = fold_bits(std::iter::empty(), 0);
    }

    #[test]
    fn path_folder_matches_collected_paths() {
        let mut h = DivergentHistory::new();
        // Include a ring wrap so packed_at clamping is exercised.
        for i in 0..(HISTORY_CAPACITY as u64 + 37) {
            if i % 5 == 0 {
                h.push(indirect(i));
            } else {
                h.push(cond(i % 3 == 0, i));
            }
        }
        let lens = [0usize, 1, 2, 6, 10, 17, 500, 2000, HISTORY_CAPACITY, HISTORY_CAPACITY + 99];
        for bits in [7u32, 13, 27] {
            let mut folder = PathFolder::new(&h);
            for &len in &lens {
                assert_eq!(
                    folder.fold_plain(len, bits),
                    h.path_plain(len).fold(bits),
                    "plain len {len} bits {bits}"
                );
            }
            let mut folder = PathFolder::new(&h);
            for &len in &lens {
                assert_eq!(
                    folder.fold_path(len, bits),
                    h.path(len).fold(bits),
                    "n+1 len {len} bits {bits}"
                );
            }
        }
    }

    #[test]
    fn path_folder_interleaves_plain_and_oldest_rule() {
        // Phast-style usage: fold_path at ascending lengths must not let
        // the oldest-entry contribution leak into the shared prefix.
        let mut h = DivergentHistory::new();
        for i in 0..64u64 {
            h.push(cond(i % 2 == 0, i * 7 + 3));
        }
        let mut folder = PathFolder::new(&h);
        for len in [1usize, 3, 5, 9, 13, 17, 33] {
            assert_eq!(folder.fold_path(len, 23), h.path(len).fold(23), "len {len}");
        }
    }

    #[test]
    fn fold_shortcuts_on_short_histories() {
        let mut h = DivergentHistory::new();
        h.push(cond(true, 5));
        h.push(indirect(9));
        assert_eq!(h.fold_plain(100, 11), h.path_plain(100).fold(11));
        assert_eq!(h.fold_path(100, 11), h.path(100).fold(11));
        assert_eq!(DivergentHistory::new().fold_path(4, 9), 0);
    }
}
