//! Indirect-target prediction: a last-target table for indirect jumps and
//! a return-address stack for `ret`.

use phast_isa::{BlockId, Pc};

/// PC-indexed last-target predictor for indirect jumps.
///
/// Stores the last observed target block per branch PC, with a partial tag
/// to limit destructive aliasing. This stands in for the BTB+ITTAGE pair of
/// a real front end; direct targets need no prediction in our model because
/// the static program is visible at fetch.
#[derive(Clone, Debug)]
pub struct LastTargetPredictor {
    entries: Vec<Option<(u16, BlockId)>>,
    index_mask: u64,
}

impl LastTargetPredictor {
    /// Creates a predictor with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> LastTargetPredictor {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        LastTargetPredictor { entries: vec![None; entries], index_mask: entries as u64 - 1 }
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        (((pc >> 2) ^ (pc >> 13)) & self.index_mask) as usize
    }

    #[inline]
    fn tag(pc: Pc) -> u16 {
        ((pc >> 2) & 0xffff) as u16
    }

    /// Predicted target for the indirect branch at `pc`, if one is cached.
    pub fn predict(&self, pc: Pc) -> Option<BlockId> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == Self::tag(pc) => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target of the indirect branch at `pc`.
    pub fn update(&mut self, pc: Pc, target: BlockId) {
        let i = self.index(pc);
        self.entries[i] = Some((Self::tag(pc), target));
    }

    /// Storage in bits (16-bit tag + 32-bit target + valid per entry).
    pub fn storage_bits(&self) -> usize {
        self.entries.len() * (16 + 32 + 1)
    }
}

/// Return-address stack predicting `ret` targets at fetch.
///
/// The stack is speculative: `push` happens when a call is fetched, `pop`
/// when a return is fetched. Squash recovery restores the top-of-stack
/// pointer from a checkpoint; entries below the restored top survive, which
/// matches hardware RAS behaviour (and its occasional corruption).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReturnAddressStack {
    stack: Vec<BlockId>,
    top: usize,
}

/// Checkpoint of the RAS top-of-stack pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RasCheckpoint(usize);

impl ReturnAddressStack {
    /// Creates a RAS with `depth` entries.
    pub fn new(depth: usize) -> ReturnAddressStack {
        ReturnAddressStack { stack: vec![BlockId(0); depth.max(1)], top: 0 }
    }

    /// Pushes a return target (on fetching a call).
    pub fn push(&mut self, target: BlockId) {
        let d = self.stack.len();
        self.stack[self.top % d] = target;
        self.top += 1;
    }

    /// Pops the predicted return target (on fetching a ret). Returns `None`
    /// when the speculative stack is empty.
    pub fn pop(&mut self) -> Option<BlockId> {
        if self.top == 0 {
            return None;
        }
        self.top -= 1;
        Some(self.stack[self.top % self.stack.len()])
    }

    /// Current speculative depth (saturating at capacity for wrap purposes).
    pub fn depth(&self) -> usize {
        self.top
    }

    /// Takes a checkpoint of the top-of-stack pointer.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint(self.top)
    }

    /// Restores the pointer from a checkpoint.
    pub fn restore(&mut self, cp: RasCheckpoint) {
        self.top = cp.0;
    }

    /// Raw contents for serialization: `(entries, top)`. `entries` is the
    /// full circular buffer (capacity slots). Together with
    /// [`from_raw_parts`](Self::from_raw_parts) this round-trips the stack
    /// bit-identically (checkpointing in `phast-sample`).
    pub fn raw_parts(&self) -> (&[BlockId], usize) {
        (&self.stack, self.top)
    }

    /// Reconstructs a RAS from parts captured by
    /// [`raw_parts`](Self::raw_parts).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn from_raw_parts(entries: &[BlockId], top: usize) -> ReturnAddressStack {
        assert!(!entries.is_empty(), "RAS must have at least one slot");
        ReturnAddressStack { stack: entries.to_vec(), top }
    }
}



#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_target_roundtrip() {
        let mut p = LastTargetPredictor::new(256);
        assert_eq!(p.predict(0x40_0100), None);
        p.update(0x40_0100, BlockId(7));
        assert_eq!(p.predict(0x40_0100), Some(BlockId(7)));
        p.update(0x40_0100, BlockId(9));
        assert_eq!(p.predict(0x40_0100), Some(BlockId(9)), "last target wins");
    }

    #[test]
    fn last_target_tag_rejects_aliases() {
        let mut p = LastTargetPredictor::new(4);
        p.update(0x40_0000, BlockId(1));
        // Same index (mod 4 after shifts) but different tag must miss.
        let alias = 0x40_0000 + (4 << 2) * 1024 * 16;
        if p.predict(alias).is_some() {
            // Only acceptable if tags happen to match.
            assert_eq!(
                (alias >> 2) & 0xffff,
                (0x40_0000u64 >> 2) & 0xffff,
                "prediction for aliasing pc must be tag-checked"
            );
        }
    }

    #[test]
    fn ras_lifo_order() {
        let mut r = ReturnAddressStack::new(16);
        r.push(BlockId(1));
        r.push(BlockId(2));
        assert_eq!(r.pop(), Some(BlockId(2)));
        assert_eq!(r.pop(), Some(BlockId(1)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_checkpoint_restore() {
        let mut r = ReturnAddressStack::new(8);
        r.push(BlockId(1));
        let cp = r.checkpoint();
        r.push(BlockId(2));
        r.pop();
        r.pop();
        r.restore(cp);
        assert_eq!(r.pop(), Some(BlockId(1)), "restore rewinds to checkpointed top");
    }

    #[test]
    fn ras_wraps_when_overflowed() {
        let mut r = ReturnAddressStack::new(2);
        r.push(BlockId(1));
        r.push(BlockId(2));
        r.push(BlockId(3)); // overwrites BlockId(1)'s slot
        assert_eq!(r.pop(), Some(BlockId(3)));
        assert_eq!(r.pop(), Some(BlockId(2)));
        assert_eq!(r.pop(), Some(BlockId(3)), "wrapped slot now holds newer value");
    }
}
