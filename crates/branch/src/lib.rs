//! Branch prediction and global-history infrastructure.
//!
//! Two consumers drive this crate's design:
//!
//! 1. The out-of-order core (`phast-ooo`) needs a conditional-direction
//!    predictor (the paper uses TAGE-SC-L; we provide TAGE plus the simpler
//!    historical predictors used in the paper's Fig. 1 trend study), an
//!    indirect-target predictor and a return-address stack.
//! 2. Memory dependence predictors need *context*: the global history of
//!    **divergent branches** (conditional + indirect, §III-B of the paper),
//!    where each event records the branch type, its taken/not-taken
//!    outcome, and the 5 least-significant bits of its actual destination.
//!    [`DivergentHistory`] is that register, with O(1) checkpoint/restore
//!    so the core can repair it on squashes, and [`Path`] is the per-use
//!    history string PHAST hashes (younger conditionals contribute their
//!    outcome bit, indirect branches their destination, and the oldest
//!    entry — the divergent branch *previous to the conflicting store* —
//!    always contributes its destination, the paper's N+1 rule).

#![warn(missing_docs)]

mod direction;
mod history;
mod indirect;
mod ittage;
mod tage;

pub use direction::{Bimodal, DirectionPredictor, GShare, Perceptron, StaticTaken};
pub use history::{
    fold_bits, DivergentEvent, DivergentHistory, HistoryCheckpoint, Path, PathFolder,
    HISTORY_CAPACITY,
};
pub use indirect::{LastTargetPredictor, RasCheckpoint, ReturnAddressStack};
pub use ittage::{Ittage, IttageConfig};
pub use tage::{Tage, TageConfig};
