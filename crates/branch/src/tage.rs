//! A TAGE conditional-branch predictor (Seznec, MICRO 2011).
//!
//! The paper's simulated core uses TAGE-SC-L; we implement the TAGE core
//! (base bimodal + tagged components with geometric history lengths,
//! usefulness counters and periodic aging). The statistical corrector and
//! loop predictor are omitted — they shave a little conditional MPKI but do
//! not change memory-dependence behaviour (see DESIGN.md substitutions).

use crate::direction::DirectionPredictor;
use phast_isa::Pc;

/// Configuration of a [`Tage`] predictor.
#[derive(Clone, Debug)]
pub struct TageConfig {
    /// log2 of the base bimodal table size.
    pub base_log2: u32,
    /// log2 of each tagged table size.
    pub tagged_log2: u32,
    /// Tag width in bits for the tagged tables.
    pub tag_bits: u32,
    /// Geometric history lengths, shortest first (≤ 128 each).
    pub history_lengths: Vec<u32>,
    /// Reset the usefulness counters after this many updates.
    pub reset_period: u64,
}

impl Default for TageConfig {
    fn default() -> TageConfig {
        TageConfig {
            base_log2: 12,
            tagged_log2: 10,
            tag_bits: 10,
            history_lengths: vec![2, 4, 8, 16, 32, 64, 96, 128],
            reset_period: 512 * 1024,
        }
    }
}

#[derive(Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: u8, // 3-bit saturating, 4 = weakly taken threshold
    useful: u8,
}

/// TAGE predictor with a bimodal base and geometric tagged components.
#[derive(Clone)]
pub struct Tage {
    cfg: TageConfig,
    base: Vec<u8>,
    tables: Vec<Vec<TaggedEntry>>,
    updates: u64,
    lfsr: u32,
}

struct Lookup {
    provider: Option<(usize, usize)>, // (table, index)
    pred: bool,
    alt_pred: bool,
}

impl Tage {
    /// Creates a TAGE predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any history length exceeds 128 or the length list is empty.
    pub fn new(cfg: TageConfig) -> Tage {
        assert!(!cfg.history_lengths.is_empty(), "need at least one tagged component");
        assert!(cfg.history_lengths.iter().all(|&h| h <= 128), "histories must fit u128");
        let tables =
            vec![vec![TaggedEntry::default(); 1 << cfg.tagged_log2]; cfg.history_lengths.len()];
        Tage { base: vec![1; 1 << cfg.base_log2], tables, cfg, updates: 0, lfsr: 0xace1 }
    }

    fn fold_hist(ghr: u128, len: u32, bits: u32) -> u64 {
        let mut acc = 0u64;
        let mask = (1u64 << bits) - 1;
        let mut remaining = len;
        let mut h = ghr;
        while remaining > 0 {
            let take = remaining.min(bits);
            acc ^= (h as u64) & ((1u64 << take) - 1);
            acc &= mask;
            h >>= take;
            remaining -= take;
        }
        acc
    }

    fn index(&self, t: usize, pc: Pc, ghr: u128) -> usize {
        let bits = self.cfg.tagged_log2;
        let h = Self::fold_hist(ghr, self.cfg.history_lengths[t], bits);
        let pch = (pc >> 2) ^ (pc >> (2 + bits as u64)) ^ (t as u64);
        ((pch ^ h) & ((1 << bits) - 1)) as usize
    }

    fn tag(&self, t: usize, pc: Pc, ghr: u128) -> u16 {
        let bits = self.cfg.tag_bits;
        let h = Self::fold_hist(ghr, self.cfg.history_lengths[t], bits);
        let h2 = Self::fold_hist(ghr, self.cfg.history_lengths[t], bits - 1) << 1;
        (((pc >> 2) ^ h ^ h2) & ((1 << bits) - 1)) as u16
    }

    fn base_index(&self, pc: Pc) -> usize {
        ((pc >> 2) & ((1 << self.cfg.base_log2) - 1)) as usize
    }

    fn lookup(&self, pc: Pc, ghr: u128) -> Lookup {
        let mut provider = None;
        let mut alt: Option<(usize, usize)> = None;
        for t in (0..self.tables.len()).rev() {
            let idx = self.index(t, pc, ghr);
            if self.tables[t][idx].tag == self.tag(t, pc, ghr) {
                if provider.is_none() {
                    provider = Some((t, idx));
                } else {
                    alt = Some((t, idx));
                    break;
                }
            }
        }
        let base_pred = self.base[self.base_index(pc)] >= 2;
        let alt_pred = match alt {
            Some((t, i)) => self.tables[t][i].ctr >= 4,
            None => base_pred,
        };
        let pred = match provider {
            Some((t, i)) => self.tables[t][i].ctr >= 4,
            None => base_pred,
        };
        Lookup { provider, pred, alt_pred }
    }

    fn rand(&mut self) -> u32 {
        // 16-bit Galois LFSR for allocation randomization; deterministic.
        let lsb = self.lfsr & 1;
        self.lfsr >>= 1;
        if lsb != 0 {
            self.lfsr ^= 0xB400;
        }
        self.lfsr
    }
}

impl DirectionPredictor for Tage {
    fn predict(&self, pc: Pc, ghr: u128) -> bool {
        self.lookup(pc, ghr).pred
    }

    fn update(&mut self, pc: Pc, ghr: u128, taken: bool) {
        let l = self.lookup(pc, ghr);
        let mispredicted = l.pred != taken;

        // Update provider (or base) counter.
        match l.provider {
            Some((t, i)) => {
                let e = &mut self.tables[t][i];
                if taken {
                    e.ctr = (e.ctr + 1).min(7);
                } else {
                    e.ctr = e.ctr.saturating_sub(1);
                }
                // Usefulness: provider correct where alternate was wrong.
                if l.pred != l.alt_pred {
                    if l.pred == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
            None => {
                let i = self.base_index(pc);
                crate::direction::ctr_update(&mut self.base[i], taken, 3);
            }
        }

        // Allocate on misprediction in a longer-history component.
        if mispredicted {
            let start = l.provider.map_or(0, |(t, _)| t + 1);
            let mut allocated = false;
            let r = self.rand();
            for t in start..self.tables.len() {
                let idx = self.index(t, pc, ghr);
                if self.tables[t][idx].useful == 0 {
                    // Skip a free slot with probability 1/2 to spread
                    // allocations across components, but never skip the
                    // last candidate.
                    let last = t + 1 == self.tables.len();
                    if last || r & (1 << t) == 0 {
                        let tag = self.tag(t, pc, ghr);
                        self.tables[t][idx] =
                            TaggedEntry { tag, ctr: if taken { 4 } else { 3 }, useful: 0 };
                        allocated = true;
                        break;
                    }
                }
            }
            if !allocated {
                // Decay usefulness along the would-be allocation path.
                for t in start..self.tables.len() {
                    let idx = self.index(t, pc, ghr);
                    self.tables[t][idx].useful = self.tables[t][idx].useful.saturating_sub(1);
                }
            }
        }

        self.updates += 1;
        if self.updates.is_multiple_of(self.cfg.reset_period) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
    }

    fn storage_bits(&self) -> usize {
        let tagged_entry_bits = self.cfg.tag_bits as usize + 3 + 2;
        self.base.len() * 2 + self.tables.len() * (1 << self.cfg.tagged_log2) * tagged_entry_bits
    }

    fn name(&self) -> &'static str {
        "tage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(p: &mut Tage, pattern: impl Fn(u64, u128) -> bool, iters: u64) -> f64 {
        let mut ghr: u128 = 0;
        let mut correct = 0u64;
        let pc = 0x40_2000;
        for i in 0..iters {
            let taken = pattern(i, ghr);
            if p.predict(pc, ghr) == taken {
                correct += 1;
            }
            p.update(pc, ghr, taken);
            ghr = (ghr << 1) | u128::from(taken);
        }
        correct as f64 / iters as f64
    }

    #[test]
    fn learns_simple_bias() {
        let mut p = Tage::new(TageConfig::default());
        let acc = run_pattern(&mut p, |_, _| true, 2000);
        assert!(acc > 0.99, "bias accuracy {acc}");
    }

    #[test]
    fn learns_long_period_pattern() {
        // Period-24 pattern: needs more history than bimodal/gshare-8.
        let mut p = Tage::new(TageConfig::default());
        let acc = run_pattern(&mut p, |i, _| (i % 24) < 5, 30_000);
        assert!(acc > 0.95, "period-24 accuracy {acc}");
    }

    #[test]
    fn outperforms_bimodal_on_history_pattern() {
        use crate::direction::Bimodal;
        let pattern = |i: u64, _: u128| i.is_multiple_of(7) || i.is_multiple_of(5);
        let mut tage = Tage::new(TageConfig::default());
        let tage_acc = run_pattern(&mut tage, pattern, 20_000);

        let mut bim = Bimodal::new(4096);
        let mut ghr: u128 = 0;
        let mut correct = 0u64;
        for i in 0..20_000u64 {
            let taken = pattern(i, ghr);
            if bim.predict(0x40_2000, ghr) == taken {
                correct += 1;
            }
            bim.update(0x40_2000, ghr, taken);
            ghr = (ghr << 1) | u128::from(taken);
        }
        let bim_acc = correct as f64 / 20_000.0;
        assert!(tage_acc > bim_acc + 0.05, "tage {tage_acc} vs bimodal {bim_acc}");
    }

    #[test]
    fn storage_is_reported() {
        let p = Tage::new(TageConfig::default());
        // 4K*2 + 8*1K*(10+3+2) bits.
        assert_eq!(p.storage_bits(), 4096 * 2 + 8 * 1024 * 15);
    }

    #[test]
    fn fold_hist_is_stable_and_bounded() {
        let f = Tage::fold_hist(0xdead_beef_dead_beef, 64, 10);
        assert!(f < 1024);
        assert_eq!(f, Tage::fold_hist(0xdead_beef_dead_beef, 64, 10));
        assert_ne!(
            Tage::fold_hist(0b01, 2, 10),
            Tage::fold_hist(0b10, 2, 10),
            "order matters within the window"
        );
    }
}
