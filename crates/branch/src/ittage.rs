//! ITTAGE indirect-target predictor (Seznec, CBP-2 2011).
//!
//! The paper's front end pairs TAGE-SC-L with an ITTAGE-style indirect
//! predictor; our core defaults to a last-target table but can use this
//! tagged, geometric-history predictor for indirect jumps and returns,
//! which matters on dispatch-heavy workloads (povray/blender-like).

use phast_isa::{BlockId, Pc};

/// Configuration of an [`Ittage`] predictor.
#[derive(Clone, Debug)]
pub struct IttageConfig {
    /// log2 of the base (history-less) table size.
    pub base_log2: u32,
    /// log2 of each tagged table size.
    pub tagged_log2: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// Geometric history lengths (≤ 64 each), shortest first.
    pub history_lengths: Vec<u32>,
    /// Halve the usefulness counters after this many updates.
    pub reset_period: u64,
}

impl Default for IttageConfig {
    fn default() -> IttageConfig {
        IttageConfig {
            base_log2: 9,
            tagged_log2: 8,
            tag_bits: 9,
            history_lengths: vec![2, 4, 8, 16, 32, 64],
            reset_period: 256 * 1024,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    valid: bool,
    tag: u16,
    target: BlockId,
    confidence: u8, // 2-bit
    useful: u8,     // 1-bit
}

impl Default for Entry {
    fn default() -> Entry {
        Entry { valid: false, tag: 0, target: BlockId(0), confidence: 0, useful: 0 }
    }
}

/// Tagged geometric-history indirect-target predictor.
#[derive(Clone, Debug)]
pub struct Ittage {
    cfg: IttageConfig,
    base: Vec<Option<BlockId>>,
    tables: Vec<Vec<Entry>>,
    updates: u64,
    lfsr: u32,
}

impl Ittage {
    /// Creates an ITTAGE predictor.
    ///
    /// # Panics
    ///
    /// Panics if the length list is empty or any length exceeds 64.
    pub fn new(cfg: IttageConfig) -> Ittage {
        assert!(!cfg.history_lengths.is_empty(), "need at least one tagged component");
        assert!(cfg.history_lengths.iter().all(|&h| h <= 64), "histories must fit u64 paths");
        let tables = vec![vec![Entry::default(); 1 << cfg.tagged_log2]; cfg.history_lengths.len()];
        Ittage { base: vec![None; 1 << cfg.base_log2], tables, cfg, updates: 0, lfsr: 0x1d2f }
    }

    fn fold(ghr: u128, len: u32, bits: u32) -> u64 {
        let mut acc = 0u64;
        let mask = (1u64 << bits) - 1;
        let mut remaining = len;
        let mut h = ghr;
        while remaining > 0 {
            let take = remaining.min(bits);
            acc ^= (h as u64) & ((1u64 << take) - 1);
            acc = acc.rotate_left(3) & mask | (acc >> (bits.saturating_sub(3))).min(mask);
            acc &= mask;
            h >>= take;
            remaining -= take;
        }
        acc
    }

    fn index(&self, t: usize, pc: Pc, ghr: u128) -> usize {
        let bits = self.cfg.tagged_log2;
        let h = Self::fold(ghr, self.cfg.history_lengths[t], bits);
        (((pc >> 2) ^ (pc >> 11) ^ h ^ (t as u64)) & ((1 << bits) - 1)) as usize
    }

    fn tag(&self, t: usize, pc: Pc, ghr: u128) -> u16 {
        let bits = self.cfg.tag_bits;
        let h = Self::fold(ghr, self.cfg.history_lengths[t], bits);
        (((pc >> 2) ^ (pc >> 7) ^ h.rotate_left(2)) & ((1 << bits) - 1)) as u16
    }

    fn base_index(&self, pc: Pc) -> usize {
        ((pc >> 2) & ((1 << self.cfg.base_log2) - 1)) as usize
    }

    fn provider(&self, pc: Pc, ghr: u128) -> Option<(usize, usize)> {
        (0..self.tables.len()).rev().find_map(|t| {
            let i = self.index(t, pc, ghr);
            let e = &self.tables[t][i];
            (e.valid && e.tag == self.tag(t, pc, ghr)).then_some((t, i))
        })
    }

    /// Predicts the target of the indirect branch at `pc` under history
    /// `ghr` (the same conditional-outcome history TAGE uses).
    pub fn predict(&self, pc: Pc, ghr: u128) -> Option<BlockId> {
        match self.provider(pc, ghr) {
            Some((t, i)) => Some(self.tables[t][i].target),
            None => self.base[self.base_index(pc)],
        }
    }

    /// Trains with the resolved target.
    pub fn update(&mut self, pc: Pc, ghr: u128, target: BlockId) {
        let predicted = self.predict(pc, ghr);
        let provider = self.provider(pc, ghr);

        match provider {
            Some((t, i)) => {
                let e = &mut self.tables[t][i];
                if e.target == target {
                    e.confidence = (e.confidence + 1).min(3);
                    e.useful = 1;
                } else if e.confidence > 0 {
                    e.confidence -= 1;
                } else {
                    e.target = target;
                    e.confidence = 1;
                }
            }
            None => {
                let bi = self.base_index(pc);
                self.base[bi] = Some(target);
            }
        }

        // Allocate a longer-history entry on a mispredict.
        if predicted != Some(target) {
            let start = provider.map_or(0, |(t, _)| t + 1);
            let r = {
                // 16-bit LFSR step.
                let lsb = self.lfsr & 1;
                self.lfsr >>= 1;
                if lsb != 0 {
                    self.lfsr ^= 0xB400;
                }
                self.lfsr
            };
            let n = self.tables.len();
            for t in start..n {
                let i = self.index(t, pc, ghr);
                let tag = self.tag(t, pc, ghr);
                let last = t + 1 == n;
                let e = &mut self.tables[t][i];
                if (!e.valid || e.useful == 0) && (last || r & (1 << t) == 0) {
                    *e = Entry { valid: true, tag, target, confidence: 1, useful: 0 };
                    break;
                }
            }
        }

        self.updates += 1;
        if self.updates.is_multiple_of(self.cfg.reset_period) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful = 0;
                }
            }
        }
    }

    /// Total storage in bits (valid + tag + 32-bit target + conf + u per
    /// tagged entry; 32-bit target + valid in the base table).
    pub fn storage_bits(&self) -> usize {
        let tagged = self.tables.len()
            * (1 << self.cfg.tagged_log2)
            * (1 + self.cfg.tag_bits as usize + 32 + 2 + 1);
        let base = (1 << self.cfg.base_log2) * 33;
        tagged + base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_monomorphic_target() {
        let mut p = Ittage::new(IttageConfig::default());
        for _ in 0..4 {
            p.update(0x40_0100, 0, BlockId(7));
        }
        assert_eq!(p.predict(0x40_0100, 0), Some(BlockId(7)));
    }

    #[test]
    fn separates_targets_by_history() {
        let mut p = Ittage::new(IttageConfig::default());
        let pc = 0x40_0200;
        for _ in 0..64 {
            p.update(pc, 0b01, BlockId(1));
            p.update(pc, 0b10, BlockId(2));
        }
        assert_eq!(p.predict(pc, 0b01), Some(BlockId(1)), "history 01 -> target 1");
        assert_eq!(p.predict(pc, 0b10), Some(BlockId(2)), "history 10 -> target 2");
    }

    #[test]
    fn beats_last_target_on_alternating_patterns() {
        use crate::indirect::LastTargetPredictor;
        let mut it = Ittage::new(IttageConfig::default());
        let mut lt = LastTargetPredictor::new(512);
        let pc = 0x40_0300;
        let mut ghr: u128 = 0;
        let mut it_ok = 0;
        let mut lt_ok = 0;
        for i in 0..4000u64 {
            let taken = i % 2 == 0;
            let target = if taken { BlockId(1) } else { BlockId(2) };
            if it.predict(pc, ghr) == Some(target) {
                it_ok += 1;
            }
            if lt.predict(pc) == Some(target) {
                lt_ok += 1;
            }
            it.update(pc, ghr, target);
            lt.update(pc, target);
            ghr = (ghr << 1) | u128::from(taken);
        }
        assert!(
            it_ok > lt_ok + 1000,
            "ITTAGE must crush last-target on alternation ({it_ok} vs {lt_ok})"
        );
    }

    #[test]
    fn storage_is_positive_and_stable() {
        let p = Ittage::new(IttageConfig::default());
        assert!(p.storage_bits() > 0);
        assert_eq!(p.storage_bits(), Ittage::new(IttageConfig::default()).storage_bits());
    }

    #[test]
    fn polymorphic_base_falls_back_to_last_target() {
        let mut p = Ittage::new(IttageConfig::default());
        p.update(0x40_0400, 0, BlockId(9));
        // Unseen history falls back to the base table's last target.
        assert_eq!(p.predict(0x40_0400, 0xdead_beef), Some(BlockId(9)));
    }
}
