//! Property-based tests for the divergent-branch history machinery.

use phast_branch::{fold_bits, DivergentEvent, DivergentHistory};
use proptest::prelude::*;

fn event_strategy() -> impl Strategy<Value = DivergentEvent> {
    (any::<bool>(), any::<bool>(), any::<u64>())
        .prop_map(|(indirect, taken, target)| DivergentEvent { indirect, taken, target })
}

proptest! {
    /// A collected path never exceeds the requested length or the number
    /// of recorded events.
    #[test]
    fn path_length_is_bounded(events in prop::collection::vec(event_strategy(), 0..64), len in 0usize..80) {
        let mut h = DivergentHistory::new();
        for e in &events {
            h.push(*e);
        }
        let p = h.path(len);
        prop_assert!(p.len() <= len);
        prop_assert!(p.len() <= events.len());
        prop_assert_eq!(p.len(), len.min(events.len()));
    }

    /// Checkpoint/restore erases exactly the events pushed in between.
    #[test]
    fn checkpoint_restore_roundtrip(
        before in prop::collection::vec(event_strategy(), 0..32),
        after in prop::collection::vec(event_strategy(), 0..32),
        len in 1usize..40,
    ) {
        let mut h = DivergentHistory::new();
        for e in &before {
            h.push(*e);
        }
        let snapshot = h.path(len);
        let cp = h.checkpoint();
        for e in &after {
            h.push(*e);
        }
        h.restore(cp);
        prop_assert_eq!(h.count(), before.len() as u64);
        prop_assert_eq!(h.path(len), snapshot, "restored paths must match");
    }

    /// Identical event sequences produce identical paths; appending a
    /// different newest event changes every non-empty path.
    #[test]
    fn paths_are_deterministic_and_sensitive(
        events in prop::collection::vec(event_strategy(), 1..32),
        len in 1usize..33,
    ) {
        let build = |evs: &[DivergentEvent]| {
            let mut h = DivergentHistory::new();
            for e in evs {
                h.push(*e);
            }
            h
        };
        let h1 = build(&events);
        let h2 = build(&events);
        prop_assert_eq!(h1.path(len), h2.path(len));

        // Flip the newest event's taken bit: the path must change.
        let mut flipped = events.clone();
        let old = *flipped.last().unwrap();
        *flipped.last_mut().unwrap() =
            DivergentEvent { taken: !old.taken, indirect: false, target: old.target };
        let h3 = build(&flipped);
        prop_assert_ne!(h1.path(len), h3.path(len), "newest outcome must be visible");
    }

    /// `fold_bits` stays within its width and is deterministic.
    #[test]
    fn fold_is_bounded_and_stable(values in prop::collection::vec(0u8..128, 0..64), bits in 1u32..64) {
        let a = fold_bits(values.iter().copied(), bits);
        let b = fold_bits(values.iter().copied(), bits);
        prop_assert_eq!(a, b);
        prop_assert!(a < (1u64 << bits));
    }

    /// Folding distributes differences: two single-entry paths differing
    /// in one value collide with low probability at 16 bits.
    #[test]
    fn fold_separates_singletons(a in 0u8..128, b in 0u8..128) {
        prop_assume!(a != b);
        // Not a strict guarantee (hashes collide), but at 16 bits a
        // single-byte difference must not collide for these tiny inputs.
        prop_assert_ne!(
            fold_bits(std::iter::once(a), 16),
            fold_bits(std::iter::once(b), 16)
        );
    }

    /// The plain path (no oldest-entry rule) hides conditional targets but
    /// keeps indirect targets.
    #[test]
    fn plain_path_contribution_rules(target in 0u64..32) {
        let mut h = DivergentHistory::new();
        h.push(DivergentEvent { indirect: false, taken: true, target });
        let plain = h.path_plain(1);
        prop_assert_eq!(plain.entries[0] & 0x1f, 0, "conditional target must be masked");
        let mut h2 = DivergentHistory::new();
        h2.push(DivergentEvent { indirect: true, taken: true, target });
        let plain2 = h2.path_plain(1);
        prop_assert_eq!(u64::from(plain2.entries[0] & 0x1f), target & 0x1f, "indirect target kept");
    }
}
