//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member provides the criterion API subset the workspace's benches use
//! ([`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], the `criterion_group!`/`criterion_main!` macros) backed
//! by a simple wall-clock harness: each benchmark runs `sample_size`
//! timed samples after one warm-up and prints min/mean times.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id built from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Times closures over a fixed number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sampled(name: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    // One warm-up pass, then `sample_size` timed samples of one iteration
    // each (the workspace's benches wrap whole experiment runs, so long
    // per-iteration times dominate and one iteration per sample is fine).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    routine(&mut b);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        routine(&mut b);
        samples.push(b.elapsed);
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("bench {name:<40} min {min:>12.3?}  mean {mean:>12.3?}  ({} samples)", samples.len());
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_sampled(&format!("{}/{}", self.name, id), self.sample_size, routine);
        self
    }

    /// Benchmarks a closure receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_sampled(&format!("{}/{}", self.name, id.label), self.sample_size, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level bench context handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size.max(1);
        BenchmarkGroup { name: name.into(), sample_size, _parent: self }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let n = self.sample_size.max(1);
        run_sampled(&id.to_string(), n, routine);
        self
    }
}

/// Re-export of `std::hint::black_box` (criterion exposes its own).
pub use std::hint::black_box;

/// Declares a list of benchmark functions as one group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = <$crate::Criterion as Default>::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut runs = 0;
        g.sample_size(3).bench_function("inc", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &x| {
            b.iter(|| x + 1)
        });
    }
}
