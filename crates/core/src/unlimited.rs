//! The unlimited (alias-free) PHAST limit study (§III-C, Figs. 6–11).

use phast_branch::Path;
use phast_isa::Pc;
use phast_mdp::{
    AccessStats, DepPrediction, LoadCommit, LoadQuery, MemDepPredictor, PredictionOutcome,
    Violation,
};
use std::collections::{BTreeSet, HashMap};

#[derive(Clone, Copy, Debug)]
struct Entry {
    distance: u32,
    confidence: u8,
}

const MAX_CONFIDENCE: u8 = 15;

/// UnlimitedPHAST: unbounded storage keyed by the exact
/// `(load PC, store→load path)` pair, trained at the exact N+1 history
/// length. No folding, no tags, no aliasing — this isolates the value of
/// the paper's history-length selection rule.
pub struct UnlimitedPhast {
    /// Optional cap on tracked history length (the Fig. 11 sweep);
    /// `None` tracks the full path however long.
    max_len: Option<u32>,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    entries: HashMap<(Pc, Path), Entry>,
    lengths_by_pc: HashMap<Pc, BTreeSet<u32>>,
    /// Unique conflicts first registered at each history length (Fig. 10).
    length_histogram: Vec<u64>,
    stats: AccessStats,
}

impl UnlimitedPhast {
    /// Creates an unlimited predictor with no history-length cap.
    pub fn new() -> UnlimitedPhast {
        UnlimitedPhast::with_max_length(None)
    }

    /// Creates an unlimited predictor that truncates trained paths to at
    /// most `max_len` divergent branches (Fig. 11 sensitivity study).
    pub fn with_max_length(max_len: Option<u32>) -> UnlimitedPhast {
        UnlimitedPhast {
            name: match max_len {
                Some(cap) => format!("unlimited-phast-max{cap}"),
                None => "unlimited-phast".into(),
            },
            max_len,
            entries: HashMap::new(),
            lengths_by_pc: HashMap::new(),
            length_histogram: Vec::new(),
            stats: AccessStats::default(),
        }
    }

    fn effective_len(&self, history_len: u32) -> u32 {
        match self.max_len {
            Some(cap) => history_len.min(cap),
            None => history_len,
        }
    }

    /// Histogram of unique conflicts by their trained history length
    /// (index = length in divergent branches).
    pub fn length_histogram(&self) -> &[u64] {
        &self.length_histogram
    }
}

impl Default for UnlimitedPhast {
    fn default() -> Self {
        UnlimitedPhast::new()
    }
}

impl MemDepPredictor for UnlimitedPhast {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        let Some(lengths) = self.lengths_by_pc.get(&q.pc) else {
            return PredictionOutcome::none();
        };
        // Longest matching history wins, as in the limited implementation.
        for &len in lengths.iter().rev() {
            self.stats.reads += 1;
            let path = q.history.path(len as usize + 1);
            if let Some(e) = self.entries.get(&(q.pc, path)) {
                if e.confidence > 0 {
                    return PredictionOutcome {
                        dep: DepPrediction::Distance(e.distance),
                        hint: u64::from(len),
                    };
                }
            }
        }
        PredictionOutcome::none()
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        let len = self.effective_len(v.history_len);
        let path = v.history.path(len as usize + 1);
        self.stats.writes += 1;
        let key = (v.load_pc, path);
        if !self.entries.contains_key(&key) {
            if self.length_histogram.len() <= len as usize {
                self.length_histogram.resize(len as usize + 1, 0);
            }
            self.length_histogram[len as usize] += 1;
        }
        self.entries
            .insert(key, Entry { distance: v.store_distance, confidence: MAX_CONFIDENCE });
        self.lengths_by_pc.entry(v.load_pc).or_default().insert(len);
    }

    fn load_committed(&mut self, c: &LoadCommit<'_>) {
        let DepPrediction::Distance(_) = c.prediction.dep else { return };
        let len = c.prediction.hint as u32;
        let path = c.history.path(len as usize + 1);
        self.stats.writes += 1;
        if let Some(e) = self.entries.get_mut(&(c.pc, path)) {
            if c.waited_correct {
                e.confidence = MAX_CONFIDENCE;
            } else {
                e.confidence = e.confidence.saturating_sub(1);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        0 // unlimited: not a hardware budget
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn num_paths(&self) -> u64 {
        self.entries.len() as u64
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::{DivergentEvent, DivergentHistory};

    fn history_with(events: &[(bool, u64)]) -> DivergentHistory {
        let mut h = DivergentHistory::new();
        for &(taken, target) in events {
            h.push(DivergentEvent { indirect: false, taken, target });
        }
        h
    }

    fn violation<'a>(
        pc: Pc,
        distance: u32,
        history_len: u32,
        history: &'a DivergentHistory,
    ) -> Violation<'a> {
        Violation {
            load_pc: pc,
            store_pc: 0,
            store_distance: distance,
            history_len,
            history,
            load_token: 0,
            store_token: 0,
            prior: PredictionOutcome::none(),
        }
    }

    fn query<'a>(pc: Pc, history: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 0, history, arch_seq: 0, older_stores: 10 }
    }

    #[test]
    fn exact_path_roundtrip() {
        let mut p = UnlimitedPhast::new();
        let h = history_with(&[(true, 1), (false, 2), (true, 3)]);
        p.train_violation(&violation(0x100, 5, 2, &h));
        let out = p.predict_load(&query(0x100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(5));
        assert_eq!(out.hint, 2);
        assert_eq!(p.num_paths(), 1);
    }

    #[test]
    fn distinct_paths_are_distinct_entries() {
        let mut p = UnlimitedPhast::new();
        let h1 = history_with(&[(true, 1), (true, 2)]);
        let h2 = history_with(&[(false, 1), (true, 2)]);
        p.train_violation(&violation(0x100, 0, 2, &h1));
        p.train_violation(&violation(0x100, 1, 2, &h2));
        assert_eq!(p.num_paths(), 2);
        assert_eq!(p.predict_load(&query(0x100, &h1)).dep, DepPrediction::Distance(0));
        assert_eq!(p.predict_load(&query(0x100, &h2)).dep, DepPrediction::Distance(1));
    }

    #[test]
    fn retrain_same_path_updates_in_place() {
        let mut p = UnlimitedPhast::new();
        let h = history_with(&[(true, 1)]);
        p.train_violation(&violation(0x100, 3, 1, &h));
        p.train_violation(&violation(0x100, 4, 1, &h));
        assert_eq!(p.num_paths(), 1, "same path reuses its entry (§III-C)");
        assert_eq!(p.predict_load(&query(0x100, &h)).dep, DepPrediction::Distance(4));
    }

    #[test]
    fn length_cap_truncates_training() {
        let mut p = UnlimitedPhast::with_max_length(Some(2));
        let events: Vec<(bool, u64)> = (0..10).map(|i| (true, i)).collect();
        let h = history_with(&events);
        p.train_violation(&violation(0x100, 1, 8, &h));
        let hist = p.length_histogram();
        assert_eq!(hist[2], 1, "trained at the capped length");
        assert_eq!(p.predict_load(&query(0x100, &h)).dep, DepPrediction::Distance(1));
    }

    #[test]
    fn histogram_counts_unique_conflicts_by_length() {
        let mut p = UnlimitedPhast::new();
        let h1 = history_with(&[(true, 1)]);
        let h3 = history_with(&[(true, 1), (false, 2), (true, 3)]);
        p.train_violation(&violation(0x100, 0, 1, &h1));
        p.train_violation(&violation(0x100, 0, 1, &h1)); // same conflict
        p.train_violation(&violation(0x200, 0, 3, &h3));
        assert_eq!(p.length_histogram()[1], 1);
        assert_eq!(p.length_histogram()[3], 1);
    }

    #[test]
    fn confidence_machinery_matches_limited() {
        let mut p = UnlimitedPhast::new();
        let h = history_with(&[(true, 1)]);
        p.train_violation(&violation(0x100, 2, 1, &h));
        let out = p.predict_load(&query(0x100, &h));
        for _ in 0..15 {
            p.load_committed(&LoadCommit {
                pc: 0x100,
                prediction: out,
                actual_distance: None,
                waited_correct: false,
                history: &h,
            });
        }
        assert_eq!(p.predict_load(&query(0x100, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn no_storage_budget_reported() {
        assert_eq!(UnlimitedPhast::new().storage_bits(), 0);
    }
}
