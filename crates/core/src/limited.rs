//! The cost-effective PHAST implementation (§IV-B).

use crate::truncate_length;
use phast_branch::PathFolder;
use phast_isa::Pc;
use phast_mdp::{
    pc_index_hash, pc_tag_hash, AccessStats, AssocTable, DepPrediction, LoadCommit, LoadQuery,
    MemDepPredictor, PredictionOutcome, TableGeometry, Violation, MAX_STORE_DISTANCE,
};

/// Configuration of the table-based PHAST predictor.
#[derive(Clone, Debug)]
pub struct PhastConfig {
    /// History lengths, one prediction table per length, ascending.
    pub history_lengths: Vec<u32>,
    /// Sets per table (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Partial tag bits per entry.
    pub tag_bits: u32,
    /// Confidence counter bits.
    pub confidence_bits: u32,
    /// Store distance bits.
    pub distance_bits: u32,
    /// Apply the paper's N+1 rule: collect L+1 history entries per
    /// length-L table, the oldest carrying the destination of the
    /// divergent branch previous to the store (§IV-A2). Disabling this is
    /// the ablation showing why Fig. 5-style paths need the extra entry.
    pub n_plus_one: bool,
}

impl PhastConfig {
    /// The paper's 14.5 KB configuration: 8 tables at lengths
    /// (0, 2, 4, 6, 8, 12, 16, 32), 128 sets × 4 ways each, 16-bit tags,
    /// 7-bit distances, 4-bit confidence, 2-bit LRU.
    pub fn paper() -> PhastConfig {
        PhastConfig {
            history_lengths: vec![0, 2, 4, 6, 8, 12, 16, 32],
            sets: 128,
            ways: 4,
            tag_bits: 16,
            confidence_bits: 4,
            distance_bits: 7,
            n_plus_one: true,
        }
    }

    /// The paper configuration without the N+1 destination rule: tables
    /// hash exactly L plain entries (outcome bits + indirect targets),
    /// like NoSQ/MDP-TAGE histories. Ablation only.
    pub fn without_n_plus_one() -> PhastConfig {
        PhastConfig { n_plus_one: false, ..PhastConfig::paper() }
    }

    /// The paper configuration with a different confidence width
    /// (sensitivity ablation; the paper uses 4 bits).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 7`.
    pub fn with_confidence_bits(bits: u32) -> PhastConfig {
        assert!((1..=7).contains(&bits), "confidence must be 1..=7 bits");
        PhastConfig { confidence_bits: bits, ..PhastConfig::paper() }
    }

    /// The paper configuration scaled to a different per-table set count
    /// (for the Fig. 13 performance-versus-storage sweep).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two.
    pub fn with_sets(sets: usize) -> PhastConfig {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        PhastConfig { sets, ..PhastConfig::paper() }
    }

    /// Bits per entry: tag + distance + confidence + LRU.
    pub fn entry_bits(&self) -> usize {
        let lru_bits =
            TableGeometry { sets: self.sets, ways: self.ways, tag_bits: self.tag_bits }.lru_bits();
        self.tag_bits as usize + self.distance_bits as usize + self.confidence_bits as usize
            + lru_bits
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.history_lengths.len() * self.sets * self.ways * self.entry_bits()
    }

    fn max_confidence(&self) -> u8 {
        ((1u32 << self.confidence_bits) - 1) as u8
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    distance: u8,
    confidence: u8,
}

/// The PHAST memory dependence predictor.
///
/// One set-associative table per history length. Predictions probe all
/// tables in parallel (like a TAGE lookup) using the decode-time divergent
/// history; training writes exactly one table — the one whose length is
/// the truncated N+1 store→load path length (§IV-A2). The longest matching
/// history provides the prediction.
pub struct Phast {
    cfg: PhastConfig,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    tables: Vec<AssocTable<Entry>>,
    index_bits: u32,
    stats: AccessStats,
}

impl Phast {
    /// Creates a PHAST predictor.
    pub fn new(cfg: PhastConfig) -> Phast {
        assert!(!cfg.history_lengths.is_empty(), "need at least one history length");
        let geo = TableGeometry { sets: cfg.sets, ways: cfg.ways, tag_bits: cfg.tag_bits };
        let tables = cfg.history_lengths.iter().map(|_| AssocTable::new(geo)).collect();
        Phast {
            name: format!("phast-{:.1}KB", cfg.storage_bits() as f64 / 8192.0),
            index_bits: cfg.sets.trailing_zeros(),
            tables,
            cfg,
            stats: AccessStats::default(),
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &PhastConfig {
        &self.cfg
    }

    /// Computes the `(index, tag)` pair for a load PC and a folded
    /// history. The folded history spans S+T bits; index and tag take
    /// disjoint slices, each XORed with a distinct PC hash (§IV-B).
    fn index_tag(&self, pc: Pc, folded: u64) -> (u64, u64) {
        let s = self.index_bits;
        let index = pc_index_hash(pc) ^ (folded & ((1 << s) - 1));
        let tag = pc_tag_hash(pc) ^ (folded >> s);
        (index, tag)
    }

    /// Folds the history entries a length-L table hashes, without
    /// collecting a [`Path`] (allocation-free hot path).
    ///
    /// A table configured for length L (L = divergent branches between
    /// store and load) hashes L+1 history entries: the paper's N+1 rule
    /// always includes the divergent branch previous to the store.
    /// `folder` carries the shared prefix across ascending-length probes.
    fn fold(&self, len: u32, folder: &mut PathFolder<'_>) -> u64 {
        let bits = self.index_bits + self.cfg.tag_bits;
        if self.cfg.n_plus_one {
            folder.fold_path(len as usize + 1, bits)
        } else {
            folder.fold_plain(len as usize, bits)
        }
    }

    fn probe(&mut self, li: usize, pc: Pc, folder: &mut PathFolder<'_>) -> Option<u32> {
        let folded = self.fold(self.cfg.history_lengths[li], folder);
        let (index, tag) = self.index_tag(pc, folded);
        self.stats.reads += 1;
        let entry = self.tables[li].peek(index, tag)?;
        (entry.confidence > 0).then_some(u32::from(entry.distance))
    }
}

impl MemDepPredictor for Phast {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        // Probe every table; the longest matching history wins (§IV-A3).
        // One incremental history walk feeds all probes: lengths ascend,
        // so each table's path extends the previous table's prefix.
        let mut best: Option<(usize, u32)> = None;
        let mut folder = PathFolder::new(q.history);
        for li in 0..self.tables.len() {
            if let Some(dist) = self.probe(li, q.pc, &mut folder) {
                best = Some((li, dist));
            }
        }
        match best {
            Some((li, dist)) => {
                PredictionOutcome { dep: DepPrediction::Distance(dist), hint: li as u64 }
            }
            None => PredictionOutcome::none(),
        }
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        // Train with the minimum effective history length: the truncated
        // N+1 store→load path length.
        let len = truncate_length(&self.cfg.history_lengths, v.history_len);
        let li = self
            .cfg
            .history_lengths
            .iter()
            .position(|&l| l == len)
            .expect("truncate_length returns a configured length");
        let folded = self.fold(len, &mut PathFolder::new(v.history));
        let (index, tag) = self.index_tag(v.load_pc, folded);
        let entry = Entry {
            distance: v.store_distance.min(MAX_STORE_DISTANCE) as u8,
            confidence: self.cfg.max_confidence(),
        };
        self.stats.writes += 1;
        self.tables[li].insert(index, tag, entry);
    }

    fn load_committed(&mut self, c: &LoadCommit<'_>) {
        // Only predictions that made the load wait carry feedback (§IV-A2).
        let DepPrediction::Distance(_) = c.prediction.dep else { return };
        let li = c.prediction.hint as usize;
        if li >= self.tables.len() {
            return;
        }
        let folded = self.fold(self.cfg.history_lengths[li], &mut PathFolder::new(c.history));
        let (index, tag) = self.index_tag(c.pc, folded);
        let max = self.cfg.max_confidence();
        self.stats.writes += 1;
        if let Some(e) = self.tables[li].lookup(index, tag) {
            if c.waited_correct {
                e.confidence = max;
            } else {
                e.confidence = e.confidence.saturating_sub(1);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.cfg.storage_bits()
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::{DivergentEvent, DivergentHistory};

    fn history_with(events: &[(bool, u64)]) -> DivergentHistory {
        let mut h = DivergentHistory::new();
        for &(taken, target) in events {
            h.push(DivergentEvent { indirect: false, taken, target });
        }
        h
    }

    fn violation<'a>(
        load_pc: Pc,
        distance: u32,
        history_len: u32,
        history: &'a DivergentHistory,
    ) -> Violation<'a> {
        Violation {
            load_pc,
            store_pc: 0x40_2000,
            store_distance: distance,
            history_len,
            history,
            load_token: 1,
            store_token: 0,
            prior: PredictionOutcome::none(),
        }
    }

    fn query<'a>(pc: Pc, history: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 9, history, arch_seq: 0, older_stores: 8 }
    }

    #[test]
    fn paper_config_is_14_5_kb() {
        let cfg = PhastConfig::paper();
        assert_eq!(cfg.entry_bits(), 16 + 7 + 4 + 2);
        assert_eq!(cfg.storage_bits(), 8 * 512 * 29);
        assert_eq!(cfg.storage_bits() as f64 / 8192.0, 14.5, "Table II: 14.5 KB");
    }

    #[test]
    fn cold_predictor_predicts_nothing() {
        let mut p = Phast::new(PhastConfig::paper());
        let h = history_with(&[(true, 3), (false, 5)]);
        assert_eq!(p.predict_load(&query(0x40_0100, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn trains_and_predicts_same_context() {
        let mut p = Phast::new(PhastConfig::paper());
        let h = history_with(&[(true, 3), (false, 5), (true, 9)]);
        // N = 1 branch between store and load -> history_len = 2.
        p.train_violation(&violation(0x40_0100, 4, 2, &h));
        let out = p.predict_load(&query(0x40_0100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(4));
        assert_eq!(out.hint, 1, "provided by the length-2 table");
    }

    #[test]
    fn different_path_does_not_predict() {
        let mut p = Phast::new(PhastConfig::paper());
        let trained = history_with(&[(true, 3), (true, 9)]);
        p.train_violation(&violation(0x40_0100, 4, 2, &trained));
        let other = history_with(&[(false, 3), (true, 9)]);
        assert_eq!(
            p.predict_load(&query(0x40_0100, &other)).dep,
            DepPrediction::None,
            "a different divergent outcome inside the path must miss"
        );
    }

    #[test]
    fn longest_matching_history_wins() {
        let mut p = Phast::new(PhastConfig::paper());
        let h = history_with(&[(true, 1), (true, 2), (true, 3), (true, 4)]);
        p.train_violation(&violation(0x40_0100, 1, 0, &h)); // length-0 table
        p.train_violation(&violation(0x40_0100, 7, 4, &h)); // length-4 table
        let out = p.predict_load(&query(0x40_0100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(7), "longer history preferred");
    }

    #[test]
    fn confidence_decrements_until_disabled() {
        let mut p = Phast::new(PhastConfig::paper());
        let h = history_with(&[(true, 1)]);
        p.train_violation(&violation(0x40_0100, 2, 0, &h));
        let out = p.predict_load(&query(0x40_0100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(2));
        // 15 wrong waits exhaust the 4-bit confidence counter.
        for _ in 0..15 {
            p.load_committed(&LoadCommit {
                pc: 0x40_0100,
                prediction: out,
                actual_distance: None,
                waited_correct: false,
                history: &h,
            });
        }
        assert_eq!(
            p.predict_load(&query(0x40_0100, &h)).dep,
            DepPrediction::None,
            "zero confidence disables the prediction"
        );
    }

    #[test]
    fn correct_wait_resets_confidence() {
        let mut p = Phast::new(PhastConfig::paper());
        let h = history_with(&[(true, 1)]);
        p.train_violation(&violation(0x40_0100, 2, 0, &h));
        let out = p.predict_load(&query(0x40_0100, &h));
        for _ in 0..10 {
            p.load_committed(&LoadCommit {
                pc: 0x40_0100,
                prediction: out,
                actual_distance: None,
                waited_correct: false,
                history: &h,
            });
        }
        p.load_committed(&LoadCommit {
            pc: 0x40_0100,
            prediction: out,
            actual_distance: Some(2),
            waited_correct: true,
            history: &h,
        });
        for _ in 0..5 {
            p.load_committed(&LoadCommit {
                pc: 0x40_0100,
                prediction: out,
                actual_distance: None,
                waited_correct: false,
                history: &h,
            });
        }
        assert_eq!(
            p.predict_load(&query(0x40_0100, &h)).dep,
            DepPrediction::Distance(2),
            "reset to max keeps the entry alive through 5 further misses"
        );
    }

    #[test]
    fn long_histories_truncate_to_32() {
        let mut p = Phast::new(PhastConfig::paper());
        let events: Vec<(bool, u64)> = (0..40).map(|i| (i % 2 == 0, i)).collect();
        let h = history_with(&events);
        p.train_violation(&violation(0x40_0100, 3, 40, &h));
        let out = p.predict_load(&query(0x40_0100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(3));
        assert_eq!(out.hint, 7, "provided by the length-32 table");
    }

    #[test]
    fn distance_clamps_to_field_width() {
        let mut p = Phast::new(PhastConfig::paper());
        let h = history_with(&[(true, 1)]);
        p.train_violation(&violation(0x40_0100, 500, 0, &h));
        assert_eq!(
            p.predict_load(&query(0x40_0100, &h)).dep,
            DepPrediction::Distance(127),
            "7-bit distance field saturates"
        );
    }

    #[test]
    fn access_stats_count_probes_and_writes() {
        let mut p = Phast::new(PhastConfig::paper());
        let h = history_with(&[(true, 1)]);
        let _ = p.predict_load(&query(0x40_0100, &h));
        assert_eq!(p.access_stats().reads, 8, "one probe per table");
        p.train_violation(&violation(0x40_0100, 1, 0, &h));
        assert_eq!(p.access_stats().writes, 1);
        p.reset_access_stats();
        assert_eq!(p.access_stats(), AccessStats::default());
    }

    #[test]
    fn storage_sweep_configs() {
        assert_eq!(PhastConfig::with_sets(64).storage_bits() as f64 / 8192.0, 7.25);
        assert_eq!(PhastConfig::with_sets(256).storage_bits() as f64 / 8192.0, 29.0);
    }
}
