//! PHAST: PatH-Aware STore-distance memory dependence prediction.
//!
//! This crate implements the paper's contribution (HPCA 2024): a
//! context-sensitive memory dependence predictor that, on each conflict,
//! trains with exactly the history length that identifies the path from
//! the conflicting store to the dependent load — N+1 divergent branches,
//! where N is the number of divergent branches between the two (§IV).
//!
//! Two implementations are provided:
//!
//! * [`Phast`] — the cost-effective implementation of §IV-B: one
//!   four-way set-associative table per configured history length
//!   (default lengths 0, 2, 4, 6, 8, 12, 16, 32), 16-bit tags, 7-bit
//!   store distances, 4-bit confidence counters and 2-bit LRU. The paper
//!   configuration occupies exactly 14.5 KB.
//! * [`UnlimitedPhast`] — the §III-C limit study: unbounded, alias-free
//!   storage keyed by the exact (load PC, path) pair, trained at the
//!   exact N+1 length. Used for Figs. 6–11.

#![warn(missing_docs)]

mod limited;
mod unlimited;

pub use limited::{Phast, PhastConfig};
pub use unlimited::UnlimitedPhast;

/// Truncates a trained history length to the largest configured length
/// that does not exceed it (§IV-B: "histories not covered by this sequence
/// are truncated", e.g. lengths 9–11 use the 8 branches closest to the
/// load). Lengths above the maximum use the maximum.
pub fn truncate_length(lengths: &[u32], history_len: u32) -> u32 {
    let mut best = *lengths.first().expect("at least one length");
    for &l in lengths {
        if l <= history_len && l >= best {
            best = l;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: &[u32] = &[0, 2, 4, 6, 8, 12, 16, 32];

    #[test]
    fn truncation_follows_the_paper_example() {
        for h in [9, 10, 11] {
            assert_eq!(truncate_length(PAPER, h), 8, "9-11 branches use the 8 closest");
        }
        assert_eq!(truncate_length(PAPER, 0), 0);
        assert_eq!(truncate_length(PAPER, 1), 0);
        assert_eq!(truncate_length(PAPER, 2), 2);
        assert_eq!(truncate_length(PAPER, 7), 6);
        assert_eq!(truncate_length(PAPER, 31), 16);
        assert_eq!(truncate_length(PAPER, 32), 32);
        assert_eq!(truncate_length(PAPER, 1000), 32, "beyond max uses max");
    }
}
