//! Store Vectors (Subramaniam & Loh, HPCA 2006).

use phast_mdp::{
    AccessStats, DepPrediction, LoadQuery, MemDepPredictor, PredictionOutcome, Violation,
};

/// Configuration of [`StoreVector`].
#[derive(Clone, Copy, Debug)]
pub struct StoreVectorConfig {
    /// Number of load-PC-indexed vectors (power of two).
    pub entries: usize,
    /// Vector width: one bit per tracked store distance (≤ 128).
    pub vector_bits: u32,
    /// Clear the table after this many predictor events.
    pub reset_period: u64,
}

impl StoreVectorConfig {
    /// A configuration competitive with the paper's other baselines:
    /// 1K vectors × 114 bits (the Alder-Lake store-buffer depth) ≈ 14.3 KB.
    pub fn paper() -> StoreVectorConfig {
        StoreVectorConfig { entries: 1024, vector_bits: 114, reset_period: 512 * 1024 }
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.entries * self.vector_bits as usize
    }
}

/// The Store Vectors predictor: each load PC maps (tagless) to a bit
/// vector over store distances; bit `d` set means "a store `d` stores
/// older than this load has conflicted before, wait for it".
pub struct StoreVector {
    cfg: StoreVectorConfig,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    vectors: Vec<u128>,
    events: u64,
    stats: AccessStats,
}

impl StoreVector {
    /// Creates a Store Vectors predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `vector_bits > 128`.
    pub fn new(cfg: StoreVectorConfig) -> StoreVector {
        assert!(cfg.entries.is_power_of_two(), "entries must be a power of two");
        assert!(cfg.vector_bits <= 128, "vector must fit in u128");
        StoreVector {
            name: format!("store-vector-{:.1}KB", cfg.storage_bits() as f64 / 8192.0),
            vectors: vec![0; cfg.entries],
            cfg,
            events: 0,
            stats: AccessStats::default(),
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (phast_mdp::pc_index_hash(pc) as usize) & (self.cfg.entries - 1)
    }

    fn tick(&mut self) {
        self.events += 1;
        if self.events.is_multiple_of(self.cfg.reset_period) {
            self.vectors.fill(0);
        }
    }
}

impl MemDepPredictor for StoreVector {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        self.tick();
        self.stats.reads += 1;
        let v = self.vectors[self.index(q.pc)];
        // Only distances that currently name an in-flight store matter.
        let live = if q.older_stores >= 128 {
            u128::MAX
        } else {
            (1u128 << q.older_stores) - 1
        };
        let masked = v & live;
        if masked == 0 {
            PredictionOutcome::none()
        } else {
            PredictionOutcome { dep: DepPrediction::DistanceMask(masked), hint: 0 }
        }
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        self.tick();
        if v.store_distance < self.cfg.vector_bits {
            self.stats.writes += 1;
            let idx = self.index(v.load_pc);
            self.vectors[idx] |= 1u128 << v.store_distance;
        }
    }

    fn storage_bits(&self) -> usize {
        self.cfg.storage_bits()
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::DivergentHistory;
    use phast_mdp::PredictionOutcome as PO;

    fn lq<'a>(pc: u64, older: u32, h: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 0, history: h, arch_seq: 0, older_stores: older }
    }

    fn viol<'a>(pc: u64, distance: u32, h: &'a DivergentHistory) -> Violation<'a> {
        Violation {
            load_pc: pc,
            store_pc: 0,
            store_distance: distance,
            history_len: 1,
            history: h,
            load_token: 0,
            store_token: 0,
            prior: PO::none(),
        }
    }

    #[test]
    fn accumulates_distances() {
        let h = DivergentHistory::new();
        let mut p = StoreVector::new(StoreVectorConfig::paper());
        p.train_violation(&viol(0x100, 0, &h));
        p.train_violation(&viol(0x100, 3, &h));
        assert_eq!(
            p.predict_load(&lq(0x100, 8, &h)).dep,
            DepPrediction::DistanceMask(0b1001),
            "both learned distances are demanded"
        );
    }

    #[test]
    fn masks_to_live_stores() {
        let h = DivergentHistory::new();
        let mut p = StoreVector::new(StoreVectorConfig::paper());
        p.train_violation(&viol(0x100, 5, &h));
        assert_eq!(
            p.predict_load(&lq(0x100, 3, &h)).dep,
            DepPrediction::None,
            "distance 5 is beyond the 3 in-flight stores"
        );
    }

    #[test]
    fn reset_clears_vectors() {
        let h = DivergentHistory::new();
        let mut p = StoreVector::new(StoreVectorConfig {
            reset_period: 4,
            ..StoreVectorConfig::paper()
        });
        p.train_violation(&viol(0x100, 0, &h));
        for _ in 0..4 {
            let _ = p.predict_load(&lq(0x900, 1, &h));
        }
        assert_eq!(p.predict_load(&lq(0x100, 4, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn distances_beyond_vector_are_ignored() {
        let h = DivergentHistory::new();
        let mut p = StoreVector::new(StoreVectorConfig {
            vector_bits: 8,
            ..StoreVectorConfig::paper()
        });
        p.train_violation(&viol(0x100, 20, &h));
        assert_eq!(p.predict_load(&lq(0x100, 32, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(StoreVectorConfig::paper().storage_bits(), 1024 * 114);
    }
}
