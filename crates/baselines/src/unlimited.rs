//! Unlimited (alias-free, unbounded) versions of NoSQ and MDP-TAGE for
//! the paper's §III-C limit study (Fig. 6). These quantify how many paths
//! each training policy must track and what performance it can at best
//! reach, independent of storage constraints.

use phast_branch::Path;
use phast_isa::Pc;
use phast_mdp::{
    AccessStats, DepPrediction, LoadCommit, LoadQuery, MemDepPredictor, PredictionOutcome,
    Violation,
};
use std::collections::HashMap;

const MAX_COUNTER: u8 = 127;
const THRESHOLD: u8 = 64;
const PENALTY: u8 = 16;

#[derive(Clone, Copy, Debug)]
struct Entry {
    distance: u32,
    counter: u8,
}

/// UnlimitedNoSQ: an exact map keyed by `(load PC, H-branch path)` for a
/// **fixed** history length `H` — the x-axis of Fig. 6. No aliasing, no
/// capacity limit; every distinct path allocates an entry, which is what
/// makes long fixed histories explode (Fig. 6b).
pub struct UnlimitedNoSq {
    history_len: u32,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    entries: HashMap<(Pc, Path), Entry>,
    stats: AccessStats,
}

impl UnlimitedNoSq {
    /// Creates an unlimited NoSQ tracking exactly `history_len` branches.
    pub fn new(history_len: u32) -> UnlimitedNoSq {
        UnlimitedNoSq {
            name: format!("unlimited-nosq-h{history_len}"),
            history_len,
            entries: HashMap::new(),
            stats: AccessStats::default(),
        }
    }

    fn key(&self, pc: Pc, history: &phast_branch::DivergentHistory) -> (Pc, Path) {
        (pc, history.path_plain(self.history_len as usize))
    }
}

impl MemDepPredictor for UnlimitedNoSq {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        self.stats.reads += 1;
        match self.entries.get(&self.key(q.pc, q.history)) {
            Some(e) if e.counter >= THRESHOLD => {
                PredictionOutcome { dep: DepPrediction::Distance(e.distance), hint: 0 }
            }
            _ => PredictionOutcome::none(),
        }
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        self.stats.writes += 1;
        self.entries.insert(
            self.key(v.load_pc, v.history),
            Entry { distance: v.store_distance, counter: MAX_COUNTER },
        );
    }

    fn load_committed(&mut self, c: &LoadCommit<'_>) {
        let DepPrediction::Distance(_) = c.prediction.dep else { return };
        let key = self.key(c.pc, c.history);
        self.stats.writes += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            if c.waited_correct {
                e.counter = MAX_COUNTER;
            } else {
                e.counter = e.counter.saturating_sub(PENALTY);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        0
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn num_paths(&self) -> u64 {
        self.entries.len() as u64
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

/// UnlimitedMDPTAGE: exact maps, one per geometric history length, trained
/// with MDP-TAGE's escalation policy (start at the shortest length, go one
/// longer after each misprediction). Shows that the brute-force length
/// search scatters one dependence over many entries (§III-C).
pub struct UnlimitedMdpTage {
    lengths: Vec<u32>,
    maps: Vec<HashMap<(Pc, Path), Entry>>,
    /// Which length indices hold entries for each load PC — probing only
    /// those keeps unbounded 2000-branch histories affordable to collect.
    lengths_by_pc: HashMap<Pc, Vec<usize>>,
    stats: AccessStats,
}

impl UnlimitedMdpTage {
    /// Creates an unlimited MDP-TAGE on the paper's (6, 2000) geometric
    /// length series.
    pub fn new() -> UnlimitedMdpTage {
        UnlimitedMdpTage::with_lengths(vec![6, 10, 17, 29, 50, 84, 143, 242, 411, 697, 1181, 2000])
    }

    /// Creates an unlimited MDP-TAGE with custom history lengths.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty.
    pub fn with_lengths(lengths: Vec<u32>) -> UnlimitedMdpTage {
        assert!(!lengths.is_empty(), "need at least one history length");
        let maps = lengths.iter().map(|_| HashMap::new()).collect();
        UnlimitedMdpTage { lengths, maps, lengths_by_pc: HashMap::new(), stats: AccessStats::default() }
    }

    fn key(&self, li: usize, pc: Pc, history: &phast_branch::DivergentHistory) -> (Pc, Path) {
        (pc, history.path_plain(self.lengths[li] as usize))
    }
}

impl Default for UnlimitedMdpTage {
    fn default() -> Self {
        UnlimitedMdpTage::new()
    }
}

impl MemDepPredictor for UnlimitedMdpTage {
    fn name(&self) -> &str {
        "unlimited-mdp-tage"
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        let Some(lis) = self.lengths_by_pc.get(&q.pc) else {
            return PredictionOutcome::none();
        };
        let mut out = PredictionOutcome::none();
        for &li in lis.clone().iter() {
            self.stats.reads += 1;
            let key = self.key(li, q.pc, q.history);
            if let Some(e) = self.maps[li].get(&key) {
                if e.counter >= THRESHOLD {
                    out = PredictionOutcome {
                        dep: DepPrediction::Distance(e.distance),
                        hint: li as u64 + 1,
                    };
                }
            }
        }
        out
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        let target = if v.prior.dep.is_dependence() && v.prior.hint > 0 {
            (v.prior.hint as usize).min(self.lengths.len() - 1)
        } else {
            0
        };
        let key = self.key(target, v.load_pc, v.history);
        self.stats.writes += 1;
        self.maps[target].insert(key, Entry { distance: v.store_distance, counter: MAX_COUNTER });
        let lis = self.lengths_by_pc.entry(v.load_pc).or_default();
        if !lis.contains(&target) {
            lis.push(target);
            lis.sort_unstable();
        }
    }

    fn load_committed(&mut self, c: &LoadCommit<'_>) {
        let DepPrediction::Distance(_) = c.prediction.dep else { return };
        if c.prediction.hint == 0 {
            return;
        }
        let li = (c.prediction.hint - 1) as usize;
        let key = self.key(li, c.pc, c.history);
        self.stats.writes += 1;
        if let Some(e) = self.maps[li].get_mut(&key) {
            if c.waited_correct {
                e.counter = MAX_COUNTER;
            } else {
                e.counter = e.counter.saturating_sub(PENALTY);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        0
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn num_paths(&self) -> u64 {
        self.maps.iter().map(|m| m.len() as u64).sum()
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::{DivergentEvent, DivergentHistory};

    fn history_with(events: &[(bool, u64)]) -> DivergentHistory {
        let mut h = DivergentHistory::new();
        for &(taken, target) in events {
            h.push(DivergentEvent { indirect: false, taken, target });
        }
        h
    }

    fn lq<'a>(pc: Pc, h: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 0, history: h, arch_seq: 0, older_stores: 16 }
    }

    fn viol<'a>(
        pc: Pc,
        d: u32,
        prior: PredictionOutcome,
        h: &'a DivergentHistory,
    ) -> Violation<'a> {
        Violation {
            load_pc: pc,
            store_pc: 0,
            store_distance: d,
            history_len: 1,
            history: h,
            load_token: 0,
            store_token: 0,
            prior,
        }
    }

    #[test]
    fn unlimited_nosq_is_exact_at_its_length() {
        let mut p = UnlimitedNoSq::new(2);
        let h1 = history_with(&[(true, 1), (true, 2)]);
        let h2 = history_with(&[(false, 1), (true, 2)]);
        p.train_violation(&viol(0x100, 3, PredictionOutcome::none(), &h1));
        assert_eq!(p.predict_load(&lq(0x100, &h1)).dep, DepPrediction::Distance(3));
        assert_eq!(p.predict_load(&lq(0x100, &h2)).dep, DepPrediction::None);
        assert_eq!(p.num_paths(), 1);
    }

    #[test]
    fn longer_fixed_history_tracks_more_paths() {
        // One dependence reachable under 4 different older contexts: with
        // H=1 a single entry suffices; with H=3 the paths multiply.
        let contexts: Vec<Vec<(bool, u64)>> = (0..4)
            .map(|i| vec![(i & 1 == 0, 1u64), ((i >> 1) & 1 == 0, 2u64), (true, 3u64)])
            .collect();
        let mut short = UnlimitedNoSq::new(1);
        let mut long = UnlimitedNoSq::new(3);
        for ctx in &contexts {
            let h = history_with(ctx);
            short.train_violation(&viol(0x100, 0, PredictionOutcome::none(), &h));
            long.train_violation(&viol(0x100, 0, PredictionOutcome::none(), &h));
        }
        assert_eq!(short.num_paths(), 1, "H=1 sees one path");
        assert_eq!(long.num_paths(), 4, "H=3 explodes into all context combinations");
    }

    #[test]
    fn unlimited_mdp_tage_escalates_and_scatters() {
        let mut p = UnlimitedMdpTage::with_lengths(vec![1, 2, 4]);
        let h = history_with(&[(true, 1), (false, 2), (true, 3), (false, 4)]);
        p.train_violation(&viol(0x100, 1, PredictionOutcome::none(), &h));
        assert_eq!(p.num_paths(), 1);
        let prior = p.predict_load(&lq(0x100, &h));
        p.train_violation(&viol(0x100, 2, prior, &h));
        assert_eq!(p.num_paths(), 2, "the same dependence now occupies two lengths");
        let out = p.predict_load(&lq(0x100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(2), "longest match provides");
    }

    #[test]
    fn counters_gate_both_predictors() {
        let mut p = UnlimitedNoSq::new(1);
        let h = history_with(&[(true, 1)]);
        p.train_violation(&viol(0x100, 0, PredictionOutcome::none(), &h));
        let out = p.predict_load(&lq(0x100, &h));
        for _ in 0..4 {
            p.load_committed(&LoadCommit {
                pc: 0x100,
                prediction: out,
                actual_distance: None,
                waited_correct: false,
                history: &h,
            });
        }
        assert_eq!(p.predict_load(&lq(0x100, &h)).dep, DepPrediction::None);
    }
}
