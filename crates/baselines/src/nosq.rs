//! The NoSQ memory dependence predictor (Sha, Martin & Roth, MICRO 2006).
//!
//! Two load-indexed set-associative tables predict a store distance: a
//! path-insensitive table keyed by the load PC alone, and a path-sensitive
//! table keyed by the PC hashed with a **fixed 8-entry** branch history
//! (§II-B). Both tables are allocated on a violation; when both match, the
//! path-sensitive prediction wins. The fixed history length is the design
//! point PHAST improves on: shorter-than-needed histories cause false
//! positives, longer-than-needed ones explode the number of entries.

use phast_branch::DivergentHistory;
use phast_isa::Pc;
use phast_mdp::{
    pc_index_hash, pc_tag_hash, AccessStats, AssocTable, DepPrediction, LoadCommit, LoadQuery,
    MemDepPredictor, PredictionOutcome, TableGeometry, Violation, MAX_STORE_DISTANCE,
};

/// Configuration of [`NoSqPredictor`].
#[derive(Clone, Copy, Debug)]
pub struct NoSqConfig {
    /// Sets per table (power of two); two tables are built.
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Partial tag bits.
    pub tag_bits: u32,
    /// History length of the path-sensitive table.
    pub history_len: u32,
    /// Confidence-counter bits.
    pub counter_bits: u32,
    /// Predict only when the counter is at least this value.
    pub threshold: u8,
    /// Penalty subtracted from the counter on an unnecessary wait.
    pub penalty: u8,
}

impl NoSqConfig {
    /// The paper's 19 KB configuration (Table II): 2 tables × 2K entries,
    /// 22-bit tags, 7-bit counters, 7-bit distances, 2-bit LRU; 8-branch
    /// path history.
    pub fn paper() -> NoSqConfig {
        NoSqConfig {
            sets: 512,
            ways: 4,
            tag_bits: 22,
            history_len: 8,
            counter_bits: 7,
            threshold: 64,
            penalty: 8,
        }
    }

    /// The paper configuration scaled to a different set count (Fig. 13).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two.
    pub fn with_sets(sets: usize) -> NoSqConfig {
        assert!(sets.is_power_of_two());
        NoSqConfig { sets, ..NoSqConfig::paper() }
    }

    /// Bits per entry: tag + counter + distance + LRU.
    pub fn entry_bits(&self) -> usize {
        let lru = TableGeometry { sets: self.sets, ways: self.ways, tag_bits: self.tag_bits }
            .lru_bits();
        self.tag_bits as usize + self.counter_bits as usize + 7 + lru
    }

    /// Total storage in bits (two tables).
    pub fn storage_bits(&self) -> usize {
        2 * self.sets * self.ways * self.entry_bits()
    }

    fn max_counter(&self) -> u8 {
        ((1u32 << self.counter_bits) - 1) as u8
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    distance: u8,
    counter: u8,
}

/// The NoSQ store-distance predictor.
pub struct NoSqPredictor {
    cfg: NoSqConfig,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    insensitive: AssocTable<Entry>,
    sensitive: AssocTable<Entry>,
    index_bits: u32,
    stats: AccessStats,
}

const HINT_INSENSITIVE: u64 = 0;
const HINT_SENSITIVE: u64 = 1;

impl NoSqPredictor {
    /// Creates a NoSQ predictor.
    pub fn new(cfg: NoSqConfig) -> NoSqPredictor {
        let geo = TableGeometry { sets: cfg.sets, ways: cfg.ways, tag_bits: cfg.tag_bits };
        NoSqPredictor {
            name: format!("nosq-{:.1}KB", cfg.storage_bits() as f64 / 8192.0),
            insensitive: AssocTable::new(geo),
            sensitive: AssocTable::new(geo),
            index_bits: cfg.sets.trailing_zeros(),
            cfg,
            stats: AccessStats::default(),
        }
    }

    fn keys(&self, pc: Pc, history: Option<&DivergentHistory>) -> (u64, u64) {
        let folded = match history {
            Some(h) => h.fold_plain(self.cfg.history_len as usize, self.index_bits + self.cfg.tag_bits),
            None => 0,
        };
        let index = pc_index_hash(pc) ^ (folded & ((1 << self.index_bits) - 1));
        let tag = pc_tag_hash(pc) ^ (folded >> self.index_bits);
        (index, tag)
    }
}

impl MemDepPredictor for NoSqPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        self.stats.reads += 2;
        let threshold = self.cfg.threshold;
        let (ii, it) = self.keys(q.pc, None);
        let (si, st) = self.keys(q.pc, Some(q.history));
        let ins = self.insensitive.peek(ii, it).filter(|e| e.counter >= threshold);
        let sen = self.sensitive.peek(si, st).filter(|e| e.counter >= threshold);
        // Path-sensitive wins on a double match (§II-B).
        if let Some(e) = sen {
            return PredictionOutcome {
                dep: DepPrediction::Distance(u32::from(e.distance)),
                hint: HINT_SENSITIVE,
            };
        }
        if let Some(e) = ins {
            return PredictionOutcome {
                dep: DepPrediction::Distance(u32::from(e.distance)),
                hint: HINT_INSENSITIVE,
            };
        }
        PredictionOutcome::none()
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        // Allocate in both tables.
        let entry = Entry {
            distance: v.store_distance.min(MAX_STORE_DISTANCE) as u8,
            counter: self.cfg.max_counter(),
        };
        self.stats.writes += 2;
        let (ii, it) = self.keys(v.load_pc, None);
        self.insensitive.insert(ii, it, entry);
        let (si, st) = self.keys(v.load_pc, Some(v.history));
        self.sensitive.insert(si, st, entry);
    }

    fn load_committed(&mut self, c: &LoadCommit<'_>) {
        let DepPrediction::Distance(_) = c.prediction.dep else { return };
        let (index, tag, table) = if c.prediction.hint == HINT_SENSITIVE {
            let (i, t) = self.keys(c.pc, Some(c.history));
            (i, t, &mut self.sensitive)
        } else {
            let (i, t) = self.keys(c.pc, None);
            (i, t, &mut self.insensitive)
        };
        self.stats.writes += 1;
        if let Some(e) = table.lookup(index, tag) {
            if c.waited_correct {
                e.counter = ((1u32 << self.cfg.counter_bits) - 1) as u8;
            } else {
                e.counter = e.counter.saturating_sub(self.cfg.penalty);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.cfg.storage_bits()
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::DivergentEvent;

    fn history_with(events: &[(bool, u64)]) -> DivergentHistory {
        let mut h = DivergentHistory::new();
        for &(taken, target) in events {
            h.push(DivergentEvent { indirect: false, taken, target });
        }
        h
    }

    fn lq<'a>(pc: Pc, h: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 0, history: h, arch_seq: 0, older_stores: 16 }
    }

    fn viol<'a>(pc: Pc, distance: u32, h: &'a DivergentHistory) -> Violation<'a> {
        Violation {
            load_pc: pc,
            store_pc: 0,
            store_distance: distance,
            history_len: 1,
            history: h,
            load_token: 0,
            store_token: 0,
            prior: PredictionOutcome::none(),
        }
    }

    #[test]
    fn paper_config_is_19_kb() {
        let cfg = NoSqConfig::paper();
        assert_eq!(cfg.entry_bits(), 22 + 7 + 7 + 2);
        assert_eq!(cfg.storage_bits() as f64 / 8192.0, 19.0, "Table II");
    }

    #[test]
    fn trains_both_tables_and_prefers_sensitive() {
        let mut p = NoSqPredictor::new(NoSqConfig::paper());
        let h1 = history_with(&[(true, 1), (false, 2)]);
        p.train_violation(&viol(0x100, 3, &h1));
        let out = p.predict_load(&lq(0x100, &h1));
        assert_eq!(out.dep, DepPrediction::Distance(3));
        assert_eq!(out.hint, HINT_SENSITIVE, "double match uses the path-sensitive table");
    }

    #[test]
    fn insensitive_table_covers_unseen_paths() {
        let mut p = NoSqPredictor::new(NoSqConfig::paper());
        let trained = history_with(&[(true, 1), (false, 2)]);
        p.train_violation(&viol(0x100, 3, &trained));
        let other = history_with(&[(false, 9), (true, 8)]);
        let out = p.predict_load(&lq(0x100, &other));
        assert_eq!(out.dep, DepPrediction::Distance(3));
        assert_eq!(out.hint, HINT_INSENSITIVE, "unseen path falls back to PC-only");
    }

    #[test]
    fn different_distances_per_path() {
        let mut p = NoSqPredictor::new(NoSqConfig::paper());
        let h1 = history_with(&[(true, 1)]);
        let h2 = history_with(&[(false, 1)]);
        p.train_violation(&viol(0x100, 0, &h1));
        p.train_violation(&viol(0x100, 1, &h2));
        assert_eq!(p.predict_load(&lq(0x100, &h1)).dep, DepPrediction::Distance(0));
        assert_eq!(p.predict_load(&lq(0x100, &h2)).dep, DepPrediction::Distance(1));
    }

    #[test]
    fn counter_gates_predictions() {
        let mut p = NoSqPredictor::new(NoSqConfig::paper());
        let h = history_with(&[(true, 1)]);
        p.train_violation(&viol(0x100, 2, &h));
        let out = p.predict_load(&lq(0x100, &h));
        // 8 wrong waits per table: 127 - 8*8 < 64 threshold on both.
        for _ in 0..8 {
            for hint in [HINT_SENSITIVE, HINT_INSENSITIVE] {
                p.load_committed(&LoadCommit {
                    pc: 0x100,
                    prediction: PredictionOutcome { dep: out.dep, hint },
                    actual_distance: None,
                    waited_correct: false,
                    history: &h,
                });
            }
        }
        assert_eq!(p.predict_load(&lq(0x100, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn correct_wait_restores_confidence() {
        let mut p = NoSqPredictor::new(NoSqConfig::paper());
        let h = history_with(&[(true, 1)]);
        p.train_violation(&viol(0x100, 2, &h));
        let out = p.predict_load(&lq(0x100, &h));
        for _ in 0..3 {
            p.load_committed(&LoadCommit {
                pc: 0x100,
                prediction: out,
                actual_distance: None,
                waited_correct: false,
                history: &h,
            });
        }
        p.load_committed(&LoadCommit {
            pc: 0x100,
            prediction: out,
            actual_distance: Some(2),
            waited_correct: true,
            history: &h,
        });
        assert_eq!(p.predict_load(&lq(0x100, &h)).dep, DepPrediction::Distance(2));
    }

    #[test]
    fn history_beyond_8_branches_cannot_disambiguate() {
        // Two paths identical in their 8 newest divergent branches but
        // different further back: NoSQ cannot tell them apart (the PHAST
        // motivation, §III-B).
        let mut p = NoSqPredictor::new(NoSqConfig::paper());
        let mut far1 = vec![(true, 7u64)];
        let mut far2 = vec![(false, 9u64)];
        let suffix: Vec<(bool, u64)> = (0..8).map(|i| (i % 2 == 0, i)).collect();
        far1.extend_from_slice(&suffix);
        far2.extend_from_slice(&suffix);
        let h1 = history_with(&far1);
        let h2 = history_with(&far2);
        p.train_violation(&viol(0x100, 0, &h1));
        assert_eq!(
            p.predict_load(&lq(0x100, &h2)).dep,
            DepPrediction::Distance(0),
            "8-branch key aliases the two distinct 9-branch paths"
        );
    }
}
