//! Store Sets (Chrysos & Emer, ISCA 1998).

use phast_isa::Pc;
use phast_mdp::{
    AccessStats, DepPrediction, LoadQuery, MemDepPredictor, PredictionOutcome, StoreQuery,
    Violation,
};

/// Configuration of [`StoreSets`].
#[derive(Clone, Copy, Debug)]
pub struct StoreSetsConfig {
    /// Entries in the Store Set Identification Table (power of two).
    pub ssit_entries: usize,
    /// Entries in the Last Fetched Store Table (power of two); also the
    /// SSID space.
    pub lfst_entries: usize,
    /// Clear both tables after this many predictor events (the original
    /// paper clears periodically to break up over-merged sets).
    pub reset_period: u64,
}

impl StoreSetsConfig {
    /// The paper's 18.5 KB configuration (Table II): 8K-entry SSIT with
    /// 12-bit SSIDs, 4K-entry LFST with 10-bit store ids.
    pub fn paper() -> StoreSetsConfig {
        StoreSetsConfig { ssit_entries: 8 * 1024, lfst_entries: 4 * 1024, reset_period: 512 * 1024 }
    }

    /// A scaled configuration for the Fig. 13 storage sweep.
    ///
    /// # Panics
    ///
    /// Panics if the entry counts are not powers of two.
    pub fn with_entries(ssit_entries: usize, lfst_entries: usize) -> StoreSetsConfig {
        assert!(ssit_entries.is_power_of_two() && lfst_entries.is_power_of_two());
        StoreSetsConfig { ssit_entries, lfst_entries, ..StoreSetsConfig::paper() }
    }

    /// SSID width in bits.
    fn ssid_bits(&self) -> usize {
        self.lfst_entries.trailing_zeros() as usize // Table II: 12-bit SSID for a 4K LFST
    }

    /// Total storage in bits: SSIT (valid + SSID) + LFST (valid + store id).
    pub fn storage_bits(&self) -> usize {
        let ssit = self.ssit_entries * (1 + self.ssid_bits());
        let store_id_bits = 10; // Table II
        let lfst = self.lfst_entries * (1 + store_id_bits);
        ssit + lfst
    }
}

/// The Store Sets predictor.
///
/// Loads and stores index the tagless SSIT by PC; a valid SSID links them
/// to the set's LFST entry holding the last fetched store. Loads depend on
/// that store; stores first depend on it (serializing the set) and then
/// replace it. On a violation the load and store are put in the same set,
/// merging sets toward the smaller SSID when both already have one.
pub struct StoreSets {
    cfg: StoreSetsConfig,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    ssit: Vec<Option<u32>>,
    /// SSID -> (store token, store pc). The PC lets `store_executed`
    /// invalidate without a reverse map.
    lfst: Vec<Option<(u64, Pc)>>,
    next_ssid: u32,
    events: u64,
    stats: AccessStats,
}

impl StoreSets {
    /// Creates a Store Sets predictor.
    pub fn new(cfg: StoreSetsConfig) -> StoreSets {
        StoreSets {
            name: format!("store-sets-{:.1}KB", cfg.storage_bits() as f64 / 8192.0),
            ssit: vec![None; cfg.ssit_entries],
            lfst: vec![None; cfg.lfst_entries],
            cfg,
            next_ssid: 0,
            events: 0,
            stats: AccessStats::default(),
        }
    }

    #[inline]
    fn ssit_index(&self, pc: Pc) -> usize {
        (phast_mdp::pc_index_hash(pc) as usize) & (self.cfg.ssit_entries - 1)
    }

    fn tick(&mut self) {
        self.events += 1;
        if self.events.is_multiple_of(self.cfg.reset_period) {
            self.ssit.fill(None);
            self.lfst.fill(None);
        }
    }

    fn alloc_ssid(&mut self) -> u32 {
        let ssid = self.next_ssid % self.cfg.lfst_entries as u32;
        self.next_ssid = self.next_ssid.wrapping_add(1);
        ssid
    }
}

impl MemDepPredictor for StoreSets {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        self.tick();
        self.stats.reads += 1; // SSIT read
        let idx = self.ssit_index(q.pc);
        let Some(ssid) = self.ssit[idx] else { return PredictionOutcome::none() };
        self.stats.reads += 1; // LFST read
        match self.lfst[ssid as usize] {
            Some((token, _)) => {
                PredictionOutcome { dep: DepPrediction::StoreToken(token), hint: u64::from(ssid) }
            }
            None => PredictionOutcome::none(),
        }
    }

    fn store_dispatched(&mut self, q: &StoreQuery<'_>) -> Option<u64> {
        self.tick();
        self.stats.reads += 1; // SSIT read
        let idx = self.ssit_index(q.pc);
        let ssid = self.ssit[idx]?;
        self.stats.reads += 1; // LFST read
        let prev = self.lfst[ssid as usize].map(|(t, _)| t);
        // The store becomes the set's last fetched store.
        self.stats.writes += 1;
        self.lfst[ssid as usize] = Some((q.token, q.pc));
        prev
    }

    fn store_executed(&mut self, pc: Pc, token: u64) {
        // Invalidate the LFST entry if this store is still the last one:
        // later loads must not wait for an already-executed store.
        let idx = self.ssit_index(pc);
        if let Some(ssid) = self.ssit[idx] {
            if let Some((t, _)) = self.lfst[ssid as usize] {
                if t == token {
                    self.stats.writes += 1;
                    self.lfst[ssid as usize] = None;
                }
            }
        }
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        self.tick();
        let li = self.ssit_index(v.load_pc);
        let si = self.ssit_index(v.store_pc);
        self.stats.reads += 2;
        self.stats.writes += 2;
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let ssid = self.alloc_ssid();
                self.ssit[li] = Some(ssid);
                self.ssit[si] = Some(ssid);
            }
            (Some(ssid), None) => self.ssit[si] = Some(ssid),
            (None, Some(ssid)) => self.ssit[li] = Some(ssid),
            (Some(a), Some(b)) => {
                // Merge rule: both adopt the smaller SSID.
                let winner = a.min(b);
                self.ssit[li] = Some(winner);
                self.ssit[si] = Some(winner);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.cfg.storage_bits()
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::DivergentHistory;

    fn lq<'a>(pc: Pc, h: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 100, history: h, arch_seq: 0, older_stores: 4 }
    }

    fn sq<'a>(pc: Pc, token: u64, h: &'a DivergentHistory) -> StoreQuery<'a> {
        StoreQuery { pc, token, history: h }
    }

    fn viol<'a>(load_pc: Pc, store_pc: Pc, h: &'a DivergentHistory) -> Violation<'a> {
        Violation {
            load_pc,
            store_pc,
            store_distance: 0,
            history_len: 1,
            history: h,
            load_token: 9,
            store_token: 1,
            prior: PredictionOutcome::none(),
        }
    }

    #[test]
    fn paper_config_is_18_5_kb() {
        let cfg = StoreSetsConfig::paper();
        assert_eq!(cfg.storage_bits() as f64 / 8192.0, 18.5, "Table II");
    }

    #[test]
    fn violation_links_load_to_store() {
        let h = DivergentHistory::new();
        let mut p = StoreSets::new(StoreSetsConfig::paper());
        let (load_pc, store_pc) = (0x40_0100, 0x40_0200);
        assert_eq!(p.predict_load(&lq(load_pc, &h)).dep, DepPrediction::None);
        p.train_violation(&viol(load_pc, store_pc, &h));
        // Store fetched again: enters the LFST.
        assert_eq!(p.store_dispatched(&sq(store_pc, 42, &h)), None);
        // Load now depends on that concrete store.
        assert_eq!(p.predict_load(&lq(load_pc, &h)).dep, DepPrediction::StoreToken(42));
    }

    #[test]
    fn stores_of_a_set_serialize() {
        let h = DivergentHistory::new();
        let mut p = StoreSets::new(StoreSetsConfig::paper());
        let (load_pc, store_pc) = (0x40_0100, 0x40_0200);
        p.train_violation(&viol(load_pc, store_pc, &h));
        assert_eq!(p.store_dispatched(&sq(store_pc, 1, &h)), None);
        assert_eq!(
            p.store_dispatched(&sq(store_pc, 2, &h)),
            Some(1),
            "second instance waits on the first (set serialization)"
        );
        assert_eq!(
            p.predict_load(&lq(load_pc, &h)).dep,
            DepPrediction::StoreToken(2),
            "load waits on the youngest instance"
        );
    }

    #[test]
    fn executed_store_leaves_the_lfst() {
        let h = DivergentHistory::new();
        let mut p = StoreSets::new(StoreSetsConfig::paper());
        p.train_violation(&viol(0x40_0100, 0x40_0200, &h));
        p.store_dispatched(&sq(0x40_0200, 7, &h));
        p.store_executed(0x40_0200, 7);
        assert_eq!(
            p.predict_load(&lq(0x40_0100, &h)).dep,
            DepPrediction::None,
            "no dependence once the store has executed"
        );
    }

    #[test]
    fn merging_converges_to_smaller_ssid() {
        let h = DivergentHistory::new();
        let mut p = StoreSets::new(StoreSetsConfig::paper());
        // Two independent sets.
        p.train_violation(&viol(0x40_0100, 0x40_0200, &h));
        p.train_violation(&viol(0x40_0300, 0x40_0400, &h));
        // A violation across them merges both.
        p.train_violation(&viol(0x40_0100, 0x40_0400, &h));
        p.store_dispatched(&sq(0x40_0400, 11, &h));
        assert_eq!(
            p.predict_load(&lq(0x40_0100, &h)).dep,
            DepPrediction::StoreToken(11),
            "merged set shares one LFST entry"
        );
    }

    #[test]
    fn periodic_reset_forgets() {
        let h = DivergentHistory::new();
        let mut p = StoreSets::new(StoreSetsConfig {
            reset_period: 8,
            ..StoreSetsConfig::paper()
        });
        p.train_violation(&viol(0x40_0100, 0x40_0200, &h));
        p.store_dispatched(&sq(0x40_0200, 5, &h));
        for _ in 0..8 {
            let _ = p.predict_load(&lq(0x40_0900, &h));
        }
        assert_eq!(p.predict_load(&lq(0x40_0100, &h)).dep, DepPrediction::None);
    }
}
