//! Collision History Table (Yoaz et al., ISCA 1999).

use phast_mdp::{
    AccessStats, DepPrediction, LoadQuery, MemDepPredictor, PredictionOutcome, Violation,
};

/// Configuration of [`Cht`].
#[derive(Clone, Copy, Debug)]
pub struct ChtConfig {
    /// Number of tagless entries (power of two).
    pub entries: usize,
    /// Saturating-counter bits.
    pub counter_bits: u32,
}

impl ChtConfig {
    /// A 4K-entry CHT with 2-bit counters (1 KB), as in the original work.
    pub fn paper() -> ChtConfig {
        ChtConfig { entries: 4096, counter_bits: 2 }
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.entries * self.counter_bits as usize
    }
}

/// The CHT predictor: a tagless PC-indexed table of collision counters.
/// A load predicted "colliding" waits for all older stores — the coarse
/// behaviour that made CHT's false-dependence MPKI high (paper Fig. 1).
pub struct Cht {
    cfg: ChtConfig,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    counters: Vec<u8>,
    stats: AccessStats,
}

impl Cht {
    /// Creates a CHT.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `counter_bits` is 0
    /// or > 8.
    pub fn new(cfg: ChtConfig) -> Cht {
        assert!(cfg.entries.is_power_of_two(), "entries must be a power of two");
        assert!((1..=8).contains(&cfg.counter_bits), "counter bits must be 1..=8");
        Cht {
            name: format!("cht-{:.1}KB", cfg.storage_bits() as f64 / 8192.0),
            counters: vec![0; cfg.entries],
            cfg,
            stats: AccessStats::default(),
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (phast_mdp::pc_index_hash(pc) as usize) & (self.cfg.entries - 1)
    }

    fn max(&self) -> u8 {
        ((1u32 << self.cfg.counter_bits) - 1) as u8
    }

    fn threshold(&self) -> u8 {
        (1u32 << (self.cfg.counter_bits - 1)) as u8
    }
}

impl MemDepPredictor for Cht {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        self.stats.reads += 1;
        let colliding = self.counters[self.index(q.pc)] >= self.threshold();
        if colliding && q.older_stores > 0 {
            PredictionOutcome { dep: DepPrediction::AllOlder, hint: 0 }
        } else {
            PredictionOutcome::none()
        }
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        self.stats.writes += 1;
        let idx = self.index(v.load_pc);
        let max = self.max();
        let c = &mut self.counters[idx];
        *c = (*c + 1).min(max);
    }

    fn load_committed(&mut self, c: &phast_mdp::LoadCommit<'_>) {
        // Loads that waited without needing to slowly unlearn.
        if c.prediction.dep.is_dependence() && c.actual_distance.is_none() {
            self.stats.writes += 1;
            let idx = self.index(c.pc);
            self.counters[idx] = self.counters[idx].saturating_sub(1);
        }
    }

    fn storage_bits(&self) -> usize {
        self.cfg.storage_bits()
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::DivergentHistory;
    use phast_mdp::{LoadCommit, PredictionOutcome as PO};

    fn lq<'a>(pc: u64, older: u32, h: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 0, history: h, arch_seq: 0, older_stores: older }
    }

    fn viol<'a>(pc: u64, h: &'a DivergentHistory) -> Violation<'a> {
        Violation {
            load_pc: pc,
            store_pc: 0,
            store_distance: 0,
            history_len: 1,
            history: h,
            load_token: 0,
            store_token: 0,
            prior: PO::none(),
        }
    }

    #[test]
    fn predicts_all_older_after_violations() {
        let h = DivergentHistory::new();
        let mut p = Cht::new(ChtConfig::paper());
        assert_eq!(p.predict_load(&lq(0x100, 4, &h)).dep, DepPrediction::None);
        p.train_violation(&viol(0x100, &h));
        p.train_violation(&viol(0x100, &h));
        assert_eq!(p.predict_load(&lq(0x100, 4, &h)).dep, DepPrediction::AllOlder);
    }

    #[test]
    fn no_stores_means_no_wait() {
        let h = DivergentHistory::new();
        let mut p = Cht::new(ChtConfig::paper());
        p.train_violation(&viol(0x100, &h));
        p.train_violation(&viol(0x100, &h));
        assert_eq!(p.predict_load(&lq(0x100, 0, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn unlearns_on_false_dependences() {
        let h = DivergentHistory::new();
        let mut p = Cht::new(ChtConfig::paper());
        p.train_violation(&viol(0x100, &h));
        p.train_violation(&viol(0x100, &h));
        let pred = p.predict_load(&lq(0x100, 4, &h));
        for _ in 0..4 {
            p.load_committed(&LoadCommit {
                pc: 0x100,
                prediction: pred,
                actual_distance: None,
                waited_correct: false,
                history: &h,
            });
        }
        assert_eq!(p.predict_load(&lq(0x100, 4, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(ChtConfig::paper().storage_bits(), 8192, "1 KB");
    }
}
