//! MDP-TAGE (Perais & Seznec, PACT 2018), evaluated standalone with a
//! 7-bit store-distance field as in the paper's §II-C.

use phast_branch::{DivergentHistory, PathFolder};
use phast_isa::Pc;
use phast_mdp::{
    pc_index_hash, pc_tag_hash, AccessStats, AssocTable, DepPrediction, LoadCommit, LoadQuery,
    MemDepPredictor, PredictionOutcome, TableGeometry, Violation, MAX_STORE_DISTANCE,
};

/// Geometry of one MDP-TAGE component.
#[derive(Clone, Copy, Debug)]
pub struct Component {
    /// Sets (power of two).
    pub sets: usize,
    /// Ways per set (1 = direct-mapped, as the original TAGE).
    pub ways: usize,
    /// Partial tag bits.
    pub tag_bits: u32,
    /// History length of this component (divergent branches).
    pub history_len: u32,
}

/// Configuration of [`MdpTage`].
#[derive(Clone, Debug)]
pub struct MdpTageConfig {
    /// Components, shortest history first.
    pub components: Vec<Component>,
    /// Whether entries carry an LRU field (set-associative variants).
    pub lru_bits: usize,
    /// Reset all `u` bits after this many predictor accesses (§II-C: MDP
    /// needs a higher reset frequency than branch TAGE).
    pub u_reset_period: u64,
    /// On a detected false dependence, reset the providing entry with
    /// probability `1/false_dep_reset_denom` (§II-C: 1/256).
    pub false_dep_reset_denom: u32,
}

impl MdpTageConfig {
    /// The paper's 38.625 KB configuration (Table II): 12 components on
    /// the (6, 2000) geometric series, 16K entries total, 7–15 bit tags.
    pub fn paper() -> MdpTageConfig {
        // Geometric lengths 6 .. 2000 over 12 components.
        let lengths = [6u32, 10, 17, 29, 50, 84, 143, 242, 411, 697, 1181, 2000];
        let geom: Vec<Component> = lengths
            .iter()
            .enumerate()
            .map(|(i, &history_len)| {
                let (sets, tag_bits) = if i < 4 {
                    (2048, 7 + i as u32) // 7, 8, 9, 10
                } else {
                    (1024, [13, 13, 14, 14, 14, 15, 15, 15][i - 4])
                };
                Component { sets, ways: 1, tag_bits, history_len }
            })
            .collect();
        MdpTageConfig {
            components: geom,
            lru_bits: 0,
            u_reset_period: 512 * 1024,
            false_dep_reset_denom: 256,
        }
    }

    /// MDP-TAGE-S (Table II): the same training algorithm on PHAST's table
    /// layout — 8 four-way tables of 128 sets at history lengths
    /// (0, 2, 4, 6, 8, 12, 16, 32), 16-bit tags; 13 KB.
    pub fn short() -> MdpTageConfig {
        let lengths = [0u32, 2, 4, 6, 8, 12, 16, 32];
        MdpTageConfig {
            components: lengths
                .iter()
                .map(|&history_len| Component { sets: 128, ways: 4, tag_bits: 16, history_len })
                .collect(),
            lru_bits: 2,
            u_reset_period: 512 * 1024,
            false_dep_reset_denom: 256,
        }
    }

    /// The paper configuration with every component's set count scaled by
    /// `num/den` (Fig. 13 sweep). Set counts stay powers of two.
    pub fn paper_scaled(num: usize, den: usize) -> MdpTageConfig {
        let mut cfg = MdpTageConfig::paper();
        for c in &mut cfg.components {
            let sets = (c.sets * num / den).next_power_of_two();
            c.sets = sets.max(64);
        }
        cfg
    }

    /// Total storage in bits: per entry tag + 7-bit distance + u bit
    /// (+ LRU for the associative variant).
    pub fn storage_bits(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.sets * c.ways * (c.tag_bits as usize + 7 + 1 + self.lru_bits))
            .sum()
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    distance: u8,
    useful: bool,
}

/// The MDP-TAGE predictor.
///
/// Prediction: the longest-history component with a tag match and a set
/// `u` bit provides the store distance. Training: with no prior provider,
/// allocate at the shortest history; after a misprediction, allocate at
/// the next longer history — the brute-force length search PHAST replaces
/// with the exact N+1 rule.
pub struct MdpTage {
    cfg: MdpTageConfig,
    /// Cached display name (`name()` must not allocate per call).
    name: String,
    tables: Vec<AssocTable<Entry>>,
    accesses: u64,
    lfsr: u32,
    stats: AccessStats,
}

impl MdpTage {
    /// Creates an MDP-TAGE predictor.
    pub fn new(cfg: MdpTageConfig) -> MdpTage {
        // `provider` folds every component from one incremental history
        // walk, which requires the documented shortest-first ordering.
        assert!(
            cfg.components.windows(2).all(|w| w[0].history_len <= w[1].history_len),
            "components must be ordered shortest history first"
        );
        let tables = cfg
            .components
            .iter()
            .map(|c| {
                AssocTable::new(TableGeometry { sets: c.sets, ways: c.ways, tag_bits: c.tag_bits })
            })
            .collect();
        let style = if cfg.lru_bits > 0 { "mdp-tage-s" } else { "mdp-tage" };
        let name = format!("{style}-{:.1}KB", cfg.storage_bits() as f64 / 8192.0);
        MdpTage { tables, cfg, name, accesses: 0, lfsr: 0xbeef, stats: AccessStats::default() }
    }

    fn keys(&self, ci: usize, pc: Pc, history: &DivergentHistory) -> (u64, u64) {
        let c = &self.cfg.components[ci];
        let index_bits = c.sets.trailing_zeros();
        let folded = history.fold_plain(c.history_len as usize, index_bits + c.tag_bits);
        self.keys_folded(ci, pc, folded)
    }

    /// Index/tag from an already folded history (see [`PathFolder`]).
    fn keys_folded(&self, ci: usize, pc: Pc, folded: u64) -> (u64, u64) {
        let index_bits = self.cfg.components[ci].sets.trailing_zeros();
        let index = pc_index_hash(pc) ^ (folded & ((1 << index_bits) - 1));
        let tag = pc_tag_hash(pc) ^ (folded >> index_bits);
        (index, tag)
    }

    fn tick(&mut self) {
        self.accesses += 1;
        if self.accesses.is_multiple_of(self.cfg.u_reset_period) {
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.useful = false;
                }
            }
        }
    }

    fn rand(&mut self) -> u32 {
        let lsb = self.lfsr & 1;
        self.lfsr >>= 1;
        if lsb != 0 {
            self.lfsr ^= 0xB400;
        }
        self.lfsr
    }

    fn provider(&mut self, pc: Pc, history: &DivergentHistory) -> Option<(usize, u8)> {
        // One incremental walk of the history serves every component:
        // the geometric series probes shortest history first, so each
        // component's path is a prefix of the next (per-load hot path).
        let mut found = None;
        let mut folder = PathFolder::new(history);
        for ci in 0..self.tables.len() {
            self.stats.reads += 1;
            let c = &self.cfg.components[ci];
            let bits = c.sets.trailing_zeros() + c.tag_bits;
            let folded = folder.fold_plain(c.history_len as usize, bits);
            let (index, tag) = self.keys_folded(ci, pc, folded);
            if let Some(e) = self.tables[ci].peek(index, tag) {
                if e.useful {
                    found = Some((ci, e.distance));
                }
            }
        }
        found
    }

    fn allocate(&mut self, ci: usize, pc: Pc, history: &DivergentHistory, distance: u32) {
        let (index, tag) = self.keys(ci, pc, history);
        self.stats.writes += 1;
        self.tables[ci].insert(
            index,
            tag,
            Entry { distance: distance.min(MAX_STORE_DISTANCE) as u8, useful: true },
        );
    }

}

impl MemDepPredictor for MdpTage {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        self.tick();
        match self.provider(q.pc, q.history) {
            Some((ci, dist)) => PredictionOutcome {
                dep: DepPrediction::Distance(u32::from(dist)),
                hint: ci as u64 + 1,
            },
            None => PredictionOutcome::none(),
        }
    }

    fn train_violation(&mut self, v: &Violation<'_>) {
        self.tick();
        // §II-C: no prediction -> allocate starting at the shortest
        // history; an incorrect prediction -> at a longer history than
        // the provider. As in TAGE, allocation only steals slots whose
        // `u` bit is clear; established entries are protected, otherwise
        // two hot dependences sharing a direct-mapped slot would evict
        // each other forever.
        let start = if v.prior.dep.is_dependence() && v.prior.hint > 0 {
            (v.prior.hint as usize).min(self.tables.len() - 1)
        } else {
            0
        };
        // An existing entry for this exact context retrains in place.
        for ci in start..self.tables.len() {
            let (index, tag) = self.keys(ci, v.load_pc, v.history);
            if let Some(e) = self.tables[ci].lookup(index, tag) {
                e.distance = v.store_distance.min(MAX_STORE_DISTANCE) as u8;
                e.useful = true;
                self.stats.writes += 1;
                return;
            }
        }
        // Otherwise claim the first slot that is free or not useful.
        for ci in start..self.tables.len() {
            let (index, _tag) = self.keys(ci, v.load_pc, v.history);
            let claimable = !self.tables[ci].set_full(index)
                || self.tables[ci].lru_victim_mut(index).is_some_and(|e| !e.useful);
            if claimable {
                self.allocate(ci, v.load_pc, v.history, v.store_distance);
                return;
            }
        }
        // Everything useful along the path: age the shortest candidate so
        // a future allocation can succeed (TAGE's u decay).
        let (index, _) = self.keys(start, v.load_pc, v.history);
        if let Some(e) = self.tables[start].lru_victim_mut(index) {
            e.useful = false;
            self.stats.writes += 1;
        }
    }

    fn load_committed(&mut self, c: &LoadCommit<'_>) {
        let DepPrediction::Distance(_) = c.prediction.dep else { return };
        if c.waited_correct || c.prediction.hint == 0 {
            return;
        }
        // False dependence: reset the providing entry with probability
        // 1/256 so stale dependences eventually vanish (§II-C).
        let denom = self.cfg.false_dep_reset_denom;
        if self.rand().is_multiple_of(denom) {
            let ci = (c.prediction.hint - 1) as usize;
            let (index, tag) = self.keys(ci, c.pc, c.history);
            self.stats.writes += 1;
            if let Some(e) = self.tables[ci].lookup(index, tag) {
                e.useful = false;
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.cfg.storage_bits()
    }

    fn access_stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_access_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::DivergentEvent;

    fn history_with(events: &[(bool, u64)]) -> DivergentHistory {
        let mut h = DivergentHistory::new();
        for &(taken, target) in events {
            h.push(DivergentEvent { indirect: false, taken, target });
        }
        h
    }

    fn lq<'a>(pc: Pc, h: &'a DivergentHistory) -> LoadQuery<'a> {
        LoadQuery { pc, token: 0, history: h, arch_seq: 0, older_stores: 16 }
    }

    fn viol<'a>(
        pc: Pc,
        distance: u32,
        prior: PredictionOutcome,
        h: &'a DivergentHistory,
    ) -> Violation<'a> {
        Violation {
            load_pc: pc,
            store_pc: 0,
            store_distance: distance,
            history_len: 1,
            history: h,
            load_token: 0,
            store_token: 0,
            prior,
        }
    }

    #[test]
    fn paper_config_is_38_625_kb() {
        let cfg = MdpTageConfig::paper();
        assert_eq!(cfg.components.len(), 12);
        let entries: usize = cfg.components.iter().map(|c| c.sets * c.ways).sum();
        assert_eq!(entries, 16 * 1024, "Table II: 16K entries");
        assert_eq!(cfg.storage_bits() as f64 / 8192.0, 38.625, "Table II");
    }

    #[test]
    fn short_config_is_13_kb() {
        let cfg = MdpTageConfig::short();
        let entries: usize = cfg.components.iter().map(|c| c.sets * c.ways).sum();
        assert_eq!(entries, 4096, "Table II: 4K entries");
        assert_eq!(cfg.storage_bits() as f64 / 8192.0, 13.0, "Table II");
    }

    #[test]
    fn first_violation_allocates_shortest() {
        let mut p = MdpTage::new(MdpTageConfig::paper());
        let h = history_with(&[(true, 1), (false, 2)]);
        p.train_violation(&viol(0x100, 4, PredictionOutcome::none(), &h));
        let out = p.predict_load(&lq(0x100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(4));
        assert_eq!(out.hint, 1, "provided by component 0 (shortest history)");
    }

    #[test]
    fn misprediction_escalates_history_length() {
        let mut p = MdpTage::new(MdpTageConfig::paper());
        let h = history_with(&[(true, 1), (false, 2)]);
        p.train_violation(&viol(0x100, 4, PredictionOutcome::none(), &h));
        let prior = p.predict_load(&lq(0x100, &h));
        // The prediction was wrong (violation again): allocate longer.
        p.train_violation(&viol(0x100, 6, prior, &h));
        let out = p.predict_load(&lq(0x100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(6));
        assert_eq!(out.hint, 2, "escalated to component 1");
    }

    #[test]
    fn longest_matching_component_provides() {
        let mut p = MdpTage::new(MdpTageConfig::paper());
        let h = history_with(&[(true, 1)]);
        p.train_violation(&viol(0x100, 1, PredictionOutcome::none(), &h));
        let prior = p.predict_load(&lq(0x100, &h));
        p.train_violation(&viol(0x100, 2, prior, &h));
        let out = p.predict_load(&lq(0x100, &h));
        assert_eq!(out.dep, DepPrediction::Distance(2), "longer history wins");
    }

    #[test]
    fn periodic_u_reset_forgets() {
        let mut cfg = MdpTageConfig::paper();
        cfg.u_reset_period = 4;
        let mut p = MdpTage::new(cfg);
        let h = history_with(&[(true, 1)]);
        p.train_violation(&viol(0x100, 1, PredictionOutcome::none(), &h));
        for _ in 0..4 {
            let _ = p.predict_load(&lq(0x900, &h));
        }
        assert_eq!(p.predict_load(&lq(0x100, &h)).dep, DepPrediction::None);
    }

    #[test]
    fn false_dependence_eventually_resets_entry() {
        let mut cfg = MdpTageConfig::paper();
        cfg.false_dep_reset_denom = 1; // make the probabilistic reset certain
        let mut p = MdpTage::new(cfg);
        let h = history_with(&[(true, 1)]);
        p.train_violation(&viol(0x100, 1, PredictionOutcome::none(), &h));
        let out = p.predict_load(&lq(0x100, &h));
        p.load_committed(&LoadCommit {
            pc: 0x100,
            prediction: out,
            actual_distance: None,
            waited_correct: false,
            history: &h,
        });
        assert_eq!(p.predict_load(&lq(0x100, &h)).dep, DepPrediction::None);
    }
}
