//! State-of-the-art memory dependence predictors the paper compares
//! PHAST against (§II and §VII):
//!
//! * [`StoreSets`] — Chrysos & Emer (ISCA 1998): SSIT + LFST, set merging,
//!   store serialization, periodic clearing. Table II: 18.5 KB.
//! * [`StoreVector`] — Subramaniam & Loh (HPCA 2006): per-load bit vector
//!   over store-queue slots.
//! * [`Cht`] — Yoaz et al. (ISCA 1999): collision history table.
//! * [`NoSqPredictor`] — Sha, Martin & Roth (MICRO 2006): paired
//!   path-insensitive and path-sensitive distance tables. Table II: 19 KB.
//! * [`MdpTage`] — Perais & Seznec (PACT 2018): TAGE re-targeted to store
//!   distances, 12 geometric components. Table II: 38.625 KB. The
//!   [`MdpTageConfig::short`] variant (MDP-TAGE-S) uses PHAST's table and
//!   history-length configuration, 13 KB.
//! * [`UnlimitedNoSq`] and [`UnlimitedMdpTage`] — the alias-free unbounded
//!   versions of the §III-C limit study (Fig. 6).

#![warn(missing_docs)]

mod cht;
mod mdp_tage;
mod nosq;
mod store_sets;
mod store_vector;
mod unlimited;

pub use cht::{Cht, ChtConfig};
pub use mdp_tage::{MdpTage, MdpTageConfig};
pub use nosq::{NoSqConfig, NoSqPredictor};
pub use store_sets::{StoreSets, StoreSetsConfig};
pub use store_vector::{StoreVector, StoreVectorConfig};
pub use unlimited::{UnlimitedMdpTage, UnlimitedNoSq};
