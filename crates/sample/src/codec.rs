//! Minimal little-endian byte codec for checkpoint serialization.
//!
//! The workspace has no serialization dependency, so checkpoints use a
//! hand-rolled format: fixed-width little-endian integers, length-prefixed
//! sequences, a magic/version header. [`ByteWriter`] and [`ByteReader`] are
//! the only two primitives; everything else is plain composition in
//! `checkpoint.rs`.

/// Errors decoding a serialized checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// The format version is not one this build understands.
    BadVersion(u32),
    /// A structurally invalid value (out-of-range length, bad flag byte).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of checkpoint data"),
            CodecError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u128.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Finishes and returns the serialized buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Forward-only little-endian reader over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] at end of buffer.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian u128.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than 16 bytes remain.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_u128(u128::MAX - 7);
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_u128().unwrap(), u128::MAX - 7);
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.get_u8(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn eof_is_detected_mid_value() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u32(), Err(CodecError::UnexpectedEof));
    }
}
