//! Minimal little-endian byte codec for checkpoint serialization.
//!
//! The workspace has no serialization dependency, so checkpoints use a
//! hand-rolled format: fixed-width little-endian integers, length-prefixed
//! sequences, a magic/version header. [`ByteWriter`] and [`ByteReader`] are
//! the only two primitives; everything else is plain composition in
//! `checkpoint.rs`.

/// Errors decoding a serialized checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// The format version is not one this build understands.
    BadVersion(u32),
    /// A structurally invalid value (out-of-range length, bad flag byte).
    Corrupt(&'static str),
    /// The CRC32 integrity trailer does not match the payload: the file
    /// was truncated, bit-flipped, or otherwise tampered with after it
    /// was written. Fail-closed — no partially decoded state is returned.
    BadChecksum {
        /// CRC32 computed over the payload actually present.
        computed: u32,
        /// CRC32 stored in the trailer.
        stored: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of checkpoint data"),
            CodecError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CodecError::BadChecksum { computed, stored } => write!(
                f,
                "checkpoint integrity failure: payload CRC32 {computed:#010x} != stored {stored:#010x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC32 (IEEE 802.3, the `cksum`/zlib polynomial) lookup table, built at
/// compile time.
static CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the integrity digest used by the PHSC
/// checkpoint trailer and, in `phast-experiments`, by the `BENCH_*.json`
/// `digest` field and the run-journal record digests.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u128.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Finishes and returns the serialized buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Forward-only little-endian reader over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] at end of buffer.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian u128.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than 16 bytes remain.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads a u32 element count and **caps it against the bytes actually
    /// remaining**: each element needs at least `min_elem_bytes` of input,
    /// so a declared count that could not possibly be satisfied is
    /// rejected *before* any `Vec::with_capacity` — a corrupt or hostile
    /// length field can therefore never trigger an OOM-sized allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the count itself is truncated;
    /// [`CodecError::Corrupt`] if the declared count exceeds what the
    /// remaining input could encode.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_u32()? as usize;
        let need = n.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(CodecError::Corrupt("declared length exceeds remaining input"));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_u128(u128::MAX - 7);
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_u128().unwrap(), u128::MAX - 7);
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.get_u8(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn eof_is_detected_mid_value() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u32(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn get_len_caps_declared_counts() {
        // 4-byte count of u32::MAX followed by 8 bytes of payload: the
        // count cannot possibly be satisfied and must be rejected without
        // allocating.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.get_len(8),
            Err(CodecError::Corrupt("declared length exceeds remaining input"))
        );

        // A satisfiable count passes through unchanged.
        let mut ok = 2u32.to_le_bytes().to_vec();
        ok.extend_from_slice(&[0u8; 16]);
        let mut r = ByteReader::new(&ok);
        assert_eq!(r.get_len(8), Ok(2));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Any single-bit flip changes the digest.
        let a = crc32(b"checkpoint");
        let b = crc32(b"cheakpoint");
        assert_ne!(a, b);
    }
}
