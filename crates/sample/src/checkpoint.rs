//! Checkpoints: serializable architectural + warmed-state snapshots.
//!
//! A [`Checkpoint`] pins one detailed window: the architectural state at
//! the start of that window's *warm* phase plus the [`WarmContext`] — the
//! cheap, continuously-maintained speculation context (branch histories,
//! RAS, sliding store window) that reflects the entire execution preceding
//! the window. A [`CheckpointSet`] holds every window of a run and
//! round-trips through a self-describing little-endian byte format
//! ([`CheckpointSet::to_bytes`] / [`CheckpointSet::from_bytes`]), so a
//! sweep can capture a workload once and replay its windows in parallel —
//! or from disk — without re-executing the fast-forward prefix.
//!
//! The expensive predictor-independent structures (cache tags, direction
//! and indirect predictor tables) are warmed continuously by the capture
//! pass and snapshotted **in memory** alongside each checkpoint
//! ([`CheckpointSet::warm`]); they are *not* part of the byte format,
//! because they are a pure function of the program prefix — a set loaded
//! from bytes regenerates them with one functional pass
//! (`CheckpointSet::rewarm`). That keeps the format compact and
//! predictor-agnostic — one capture serves every predictor in the sweep.
//! MDP training state is predictor-specific and is warmed per window over
//! the warm phase (see `docs/SAMPLING.md` for the warming rules).

use crate::codec::{crc32, ByteReader, ByteWriter, CodecError};
use crate::warm::WarmState;
use phast_branch::{DivergentHistory, ReturnAddressStack, HISTORY_CAPACITY};
use phast_isa::{BlockId, EmuSnapshot, Pc, SparseMemory};
use std::collections::VecDeque;

/// Serialization magic: "PHSC" (PHast Sample Checkpoint).
const MAGIC: [u8; 4] = *b"PHSC";
/// Current format version. v2 appends a little-endian CRC32 trailer over
/// everything before it; loaders verify the trailer *before* decoding, so
/// a truncated or bit-flipped file is rejected fail-closed rather than
/// decoded into silently wrong state.
const VERSION: u32 = 2;
/// A sanity ceiling on the serialized store window: the modelled cores
/// have at most a few hundred SQ entries, so anything past this is a
/// corrupt length field, not a real configuration.
const MAX_STORE_WINDOW: usize = 1 << 16;

/// One architecturally retired store remembered by the sliding window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreRec {
    /// Dynamic instruction number of the store.
    pub seq: u64,
    /// Program counter of the store.
    pub pc: Pc,
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Divergent-branch counter at the store (for §IV-A2 history lengths).
    pub div_count: u64,
}

/// The cheap warming context maintained continuously during fast-forward.
///
/// Everything here is O(1) per instruction to maintain, so the capture
/// pass keeps it live across the whole horizon; at each checkpoint it is
/// cloned into the [`Checkpoint`]. Field semantics mirror the front end of
/// `phast-ooo` exactly (same shift amounts, same push ordering), so a core
/// booted from this context sees the history it would have built itself.
#[derive(Clone, Debug, PartialEq)]
pub struct WarmContext {
    /// Conditional-branch outcome history (1 bit per conditional).
    pub cond_ghr: u128,
    /// Path history (1 bit per conditional, 5 target bits per indirect).
    pub path_ghr: u128,
    /// Divergent-branch history ring.
    pub history: DivergentHistory,
    /// Return-address stack.
    pub ras: ReturnAddressStack,
    /// Sliding window of the youngest retired stores (newest at the back),
    /// bounded by `store_window`.
    pub stores: VecDeque<StoreRec>,
    /// Window bound: the store-queue capacity of the modelled core.
    pub store_window: usize,
}

impl WarmContext {
    /// Creates an empty context for a core with `store_window` SQ entries
    /// and a RAS of `ras_depth` entries.
    pub fn new(store_window: usize, ras_depth: usize) -> WarmContext {
        WarmContext {
            cond_ghr: 0,
            path_ghr: 0,
            history: DivergentHistory::new(),
            ras: ReturnAddressStack::new(ras_depth),
            stores: VecDeque::with_capacity(store_window),
            store_window,
        }
    }

    fn serialize(&self, w: &mut ByteWriter) {
        w.put_u128(self.cond_ghr);
        w.put_u128(self.path_ghr);
        let (buf, head, count) = self.history.raw_parts();
        w.put_u64(count);
        w.put_u32(head as u32);
        w.put_bytes(buf);
        let (entries, top) = self.ras.raw_parts();
        w.put_u64(top as u64);
        w.put_u32(entries.len() as u32);
        for e in entries {
            w.put_u32(e.0);
        }
        w.put_u32(self.store_window as u32);
        w.put_u32(self.stores.len() as u32);
        for s in &self.stores {
            w.put_u64(s.seq);
            w.put_u64(s.pc);
            w.put_u64(s.addr);
            w.put_u8(s.size as u8);
            w.put_u64(s.div_count);
        }
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<WarmContext, CodecError> {
        let cond_ghr = r.get_u128()?;
        let path_ghr = r.get_u128()?;
        let count = r.get_u64()?;
        let head = r.get_u32()? as usize;
        if head >= HISTORY_CAPACITY {
            return Err(CodecError::Corrupt("history head out of range"));
        }
        let buf = r.take(HISTORY_CAPACITY)?;
        let history = DivergentHistory::from_raw_parts(buf, head, count);
        let top = r.get_u64()? as usize;
        // Each RAS entry is 4 bytes: cap the declared length against the
        // remaining input before allocating.
        let ras_len = r.get_len(4)?;
        if ras_len == 0 {
            return Err(CodecError::Corrupt("empty RAS"));
        }
        let mut entries = Vec::with_capacity(ras_len);
        for _ in 0..ras_len {
            entries.push(BlockId(r.get_u32()?));
        }
        let ras = ReturnAddressStack::from_raw_parts(&entries, top);
        let store_window = r.get_u32()? as usize;
        if store_window > MAX_STORE_WINDOW {
            return Err(CodecError::Corrupt("store window out of range"));
        }
        // Each store record is 33 bytes.
        let n_stores = r.get_len(33)?;
        let mut stores = VecDeque::with_capacity(store_window.max(n_stores));
        for _ in 0..n_stores {
            stores.push_back(StoreRec {
                seq: r.get_u64()?,
                pc: r.get_u64()?,
                addr: r.get_u64()?,
                size: u64::from(r.get_u8()?),
                div_count: r.get_u64()?,
            });
        }
        Ok(WarmContext { cond_ghr, path_ghr, history, ras, stores, store_window })
    }
}

/// One window's checkpoint: where to resume and with what state.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Instruction count at which the detailed window begins; the gap
    /// between `arch.icount` and this is the window's warm phase.
    pub detail_start: u64,
    /// Architectural state at the start of the warm phase.
    pub arch: EmuSnapshot,
    /// Warming context at the start of the warm phase.
    pub ctx: WarmContext,
}

impl Checkpoint {
    fn serialize(&self, w: &mut ByteWriter) {
        w.put_u64(self.detail_start);
        w.put_u64(self.arch.icount);
        match self.arch.cursor {
            Some((b, i)) => {
                w.put_u8(1);
                w.put_u32(b.0);
                w.put_u64(i as u64);
            }
            None => {
                w.put_u8(0);
                w.put_u32(0);
                w.put_u64(0);
            }
        }
        for &reg in &self.arch.regs {
            w.put_u64(reg);
        }
        let lines = self.arch.memory.lines_sorted();
        w.put_u32(lines.len() as u32);
        for (index, data) in lines {
            w.put_u64(index);
            w.put_bytes(data);
        }
        self.ctx.serialize(w);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Checkpoint, CodecError> {
        let detail_start = r.get_u64()?;
        let icount = r.get_u64()?;
        let cursor = match r.get_u8()? {
            0 => {
                let _ = r.get_u32()?;
                let _ = r.get_u64()?;
                None
            }
            1 => {
                let b = r.get_u32()?;
                let i = r.get_u64()? as usize;
                Some((BlockId(b), i))
            }
            _ => return Err(CodecError::Corrupt("bad cursor flag")),
        };
        let mut regs = [0u64; phast_isa::NUM_REGS];
        for reg in &mut regs {
            *reg = r.get_u64()?;
        }
        // Each memory line is 8 bytes of index + 64 bytes of data.
        let n_lines = r.get_len(72)?;
        let mut memory = SparseMemory::new();
        for _ in 0..n_lines {
            let index = r.get_u64()?;
            let data: [u8; 64] = r.take(64)?.try_into().expect("64 bytes");
            memory.insert_line(index, data);
        }
        let ctx = WarmContext::deserialize(r)?;
        Ok(Checkpoint { detail_start, arch: EmuSnapshot { regs, memory, cursor, icount }, ctx })
    }
}

/// Every checkpoint of one (program, sampling-config) capture pass.
#[derive(Clone)]
pub struct CheckpointSet {
    /// Total instruction horizon the capture covered.
    pub horizon: u64,
    /// Warm-phase length per window, in instructions.
    pub warm_insts: u64,
    /// Detailed-window length, in instructions.
    pub window_insts: u64,
    /// The windows, in program order.
    pub checkpoints: Vec<Checkpoint>,
    /// Per-checkpoint snapshots of the continuously warmed structures,
    /// parallel to `checkpoints`. Empty after [`from_bytes`]
    /// (`CheckpointSet::from_bytes`) — regenerate with
    /// `CheckpointSet::rewarm` before replaying windows.
    pub warm: Vec<WarmState>,
}

/// Equality is over the *serialized* content (everything except the
/// regenerable [`warm`](CheckpointSet::warm) snapshots), so a decoded set
/// compares equal to the set it was encoded from.
impl PartialEq for CheckpointSet {
    fn eq(&self, other: &CheckpointSet) -> bool {
        self.horizon == other.horizon
            && self.warm_insts == other.warm_insts
            && self.window_insts == other.window_insts
            && self.checkpoints == other.checkpoints
    }
}

impl std::fmt::Debug for CheckpointSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSet")
            .field("horizon", &self.horizon)
            .field("warm_insts", &self.warm_insts)
            .field("window_insts", &self.window_insts)
            .field("checkpoints", &self.checkpoints)
            .field("warm", &format_args!("[{} snapshots]", self.warm.len()))
            .finish()
    }
}

impl CheckpointSet {
    /// Serializes the set to the in-tree byte format, sealed with a
    /// little-endian CRC32 trailer over every preceding byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(VERSION);
        w.put_u64(self.horizon);
        w.put_u64(self.warm_insts);
        w.put_u64(self.window_insts);
        w.put_u32(self.checkpoints.len() as u32);
        for cp in &self.checkpoints {
            cp.serialize(&mut w);
        }
        let mut bytes = w.into_bytes();
        let digest = crc32(&bytes);
        bytes.extend_from_slice(&digest.to_le_bytes());
        bytes
    }

    /// Decodes a set serialized by [`to_bytes`](Self::to_bytes).
    ///
    /// The magic and version are probed first (so a non-checkpoint file or
    /// an old format reports what it *is*), then the CRC32 trailer is
    /// verified over the whole prefix before any structure is decoded:
    /// corruption is rejected fail-closed with
    /// [`CodecError::BadChecksum`] rather than surfacing as an arbitrary
    /// downstream decode error — or worse, decoding cleanly into wrong
    /// state.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on truncated, mis-tagged, checksum-failing or
    /// structurally invalid input. Decoding is total: no input panics, and
    /// declared lengths are capped against the remaining input before any
    /// allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<CheckpointSet, CodecError> {
        if bytes.len() < 8 || bytes[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        if bytes.len() < 12 {
            return Err(CodecError::UnexpectedEof);
        }
        let (covered, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
        let computed = crc32(covered);
        if computed != stored {
            return Err(CodecError::BadChecksum { computed, stored });
        }
        let mut r = ByteReader::new(&covered[8..]);
        let horizon = r.get_u64()?;
        let warm_insts = r.get_u64()?;
        let window_insts = r.get_u64()?;
        // A serialized checkpoint is well over 64 bytes (registers alone
        // exceed that), so 64 is a safe per-element floor for the cap.
        let n = r.get_len(64)?;
        let mut checkpoints = Vec::with_capacity(n);
        for _ in 0..n {
            checkpoints.push(Checkpoint::deserialize(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes"));
        }
        Ok(CheckpointSet { horizon, warm_insts, window_insts, checkpoints, warm: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> CheckpointSet {
        let mut ctx = WarmContext::new(4, 8);
        ctx.cond_ghr = 0b1011;
        ctx.path_ghr = 0xfeed;
        ctx.history.push(phast_branch::DivergentEvent { indirect: false, taken: true, target: 7 });
        ctx.ras.push(BlockId(3));
        ctx.stores.push_back(StoreRec { seq: 9, pc: 0x40, addr: 0x2000, size: 8, div_count: 1 });
        let mut memory = SparseMemory::new();
        memory.write_byte(0x2000, 0x5a);
        memory.write_byte(0x99, 0x11);
        let arch = EmuSnapshot {
            regs: std::array::from_fn(|i| i as u64 * 3),
            memory,
            cursor: Some((BlockId(2), 1)),
            icount: 10,
        };
        CheckpointSet {
            horizon: 1000,
            warm_insts: 50,
            window_insts: 25,
            checkpoints: vec![Checkpoint { detail_start: 60, arch, ctx }],
            warm: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let set = sample_set();
        let bytes = set.to_bytes();
        let back = CheckpointSet::from_bytes(&bytes).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.to_bytes(), bytes, "re-serialization is byte-identical");
    }

    #[test]
    fn bad_magic_and_truncation_are_errors() {
        let mut bytes = sample_set().to_bytes();
        assert_eq!(CheckpointSet::from_bytes(&[]), Err(CodecError::BadMagic));
        // Any truncation shears the CRC trailer off its payload.
        let last = bytes.len() - 1;
        assert!(matches!(
            CheckpointSet::from_bytes(&bytes[..last]),
            Err(CodecError::BadChecksum { .. })
        ));
        bytes[0] = b'X';
        assert_eq!(CheckpointSet::from_bytes(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn version_is_checked() {
        let mut bytes = sample_set().to_bytes();
        bytes[4] = 99;
        assert_eq!(CheckpointSet::from_bytes(&bytes), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_set().to_bytes();
        bytes.push(0);
        assert!(matches!(
            CheckpointSet::from_bytes(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let clean = sample_set().to_bytes();
        // Flip one payload bit: rejected by the trailer, not by whatever
        // structural check the flipped field happens to land in.
        let mut bytes = clean.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            CheckpointSet::from_bytes(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
        // Flip a trailer bit: same rejection.
        let mut bytes = clean;
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            CheckpointSet::from_bytes(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
    }
}
