//! Microarchitectural warming during functional fast-forward.
//!
//! Two tiers, split by who can share them:
//!
//! * [`WarmContext`] (`checkpoint.rs`) and [`WarmState`] are
//!   **predictor-independent**, so the capture pass maintains them
//!   continuously across the whole horizon and snapshots them at every
//!   checkpoint: branch history registers, the divergent-history ring,
//!   the RAS and the sliding store window (`WarmContext`, cheap and
//!   serialized), plus the long-lived structures whose state at a window
//!   boundary reflects the *entire* preceding execution — the cache
//!   hierarchy with its prefetcher, the direction predictor and the
//!   indirect-target predictor (`WarmState`, cloned in memory and
//!   deterministically regenerable from the program, see
//!   `CheckpointSet::rewarm`). One capture serves every predictor in the
//!   sweep.
//! * The active MDP's training state is **predictor-specific**, so it is
//!   built cold per window and warmed through `phast_mdp::Warmable` over
//!   the window's bounded warm phase only ([`Warmer::warm_step`]).
//!
//! Every update rule here mirrors the front end / commit stage of
//! `phast-ooo` exactly (same GHR shift amounts, same push ordering, same
//! pre-update history values for training) so that a core booted from the
//! warmed state continues as if it had executed the prefix itself. The
//! one structural difference: warming trains on the *architectural* path,
//! so wrong-path pollution and in-flight timing races are absent — see
//! `docs/SAMPLING.md` for why this converges to the same steady state.

use crate::checkpoint::{StoreRec, WarmContext};
use phast_branch::{DirectionPredictor, DivergentEvent, Tage, TageConfig};
use phast_isa::{ranges_overlap, BlockId, ExecRecord, Op, Program};
use phast_mdp::{
    DepPrediction, LoadCommit, LoadQuery, MemDepPredictor, StoreQuery, Violation, Warmable,
};
use phast_mem::{AccessKind, Hierarchy};
use phast_ooo::{CoreConfig, IndirectPredictor};

impl WarmContext {
    /// Folds one architecturally retired instruction into the context.
    ///
    /// This is the cheap tier: GHR shifts, history pushes, RAS motion and
    /// the store window — exactly what `phast-ooo` does at fetch for the
    /// correct path, in the same order.
    pub fn observe(&mut self, program: &Program, rec: &ExecRecord) {
        let inst = program.inst(rec.block, rec.index);
        match &inst.op {
            Op::CondBranch { .. } => {
                let taken = rec.taken.expect("cond branch records taken");
                let target = rec.target_pc.expect("cond branch records target");
                self.history.push(DivergentEvent { indirect: false, taken, target });
                self.cond_ghr = (self.cond_ghr << 1) | u128::from(taken);
                self.path_ghr = (self.path_ghr << 1) | u128::from(taken);
            }
            Op::Call(_) => {
                let ret_to = rec.dst_value.expect("call writes its return block id");
                self.ras.push(BlockId(ret_to as u32));
            }
            Op::Ret => {
                let _ = self.ras.pop();
                let target = rec.target_pc.expect("ret records target");
                self.history.push(DivergentEvent { indirect: true, taken: true, target });
                self.path_ghr = (self.path_ghr << 5) | u128::from(target & 0x1f);
            }
            Op::IndirectJump(_) => {
                let target = rec.target_pc.expect("indirect jump records target");
                self.history.push(DivergentEvent { indirect: true, taken: true, target });
                self.path_ghr = (self.path_ghr << 5) | u128::from(target & 0x1f);
            }
            Op::Store(size) => {
                self.stores.push_back(StoreRec {
                    seq: rec.seq,
                    pc: rec.pc,
                    addr: rec.eff_addr.expect("store records address"),
                    size: size.bytes(),
                    div_count: self.history.count(),
                });
                if self.stores.len() > self.store_window {
                    self.stores.pop_front();
                }
            }
            _ => {}
        }
    }
}

/// The predictor-independent long-lived structures, warmed continuously
/// by the capture pass and snapshotted (cloned) into every checkpoint.
///
/// Not part of the serialized byte format — the snapshot is a pure
/// function of the program prefix, so a set loaded from bytes regenerates
/// it with one functional pass (`CheckpointSet::rewarm`).
#[derive(Clone)]
pub struct WarmState {
    /// Cache hierarchy + prefetcher, warmed stat-free.
    pub hierarchy: Hierarchy,
    /// Conditional-direction predictor (the default TAGE, as used by the
    /// `phast-ooo` runner entry points).
    pub direction: Tage,
    /// Indirect-target predictor of the configured flavour.
    pub indirect: IndirectPredictor,
}

impl WarmState {
    /// Cold structures sized exactly like `Core::new` builds them.
    pub fn new(cfg: &CoreConfig) -> WarmState {
        WarmState {
            hierarchy: Hierarchy::new(cfg.memory),
            direction: Tage::new(TageConfig::default()),
            indirect: IndirectPredictor::new(cfg.indirect_predictor),
        }
    }
}

/// Drives warming: the shared [`WarmState`] on every instruction of the
/// capture pass ([`warm_structures`](Warmer::warm_structures)), plus the
/// per-window MDP warm phase ([`warm_step`](Warmer::warm_step)).
pub struct Warmer {
    /// The structures being warmed; after a window's warm phase these
    /// move into a `phast_ooo::BootState`.
    pub state: WarmState,
    /// In-flight span approximation: stores further than this many
    /// instructions from a load could not coexist with it in the ROB.
    rob_window: u64,
    /// Cache line of the previous instruction fetch. Immediately
    /// consecutive fetches to the same line are L1I hits whose only
    /// effect is an LRU touch that the *next* access to that set would
    /// re-establish anyway, so they are skipped — exactly
    /// behavior-preserving, and fetch is the hottest warm path.
    last_fetch_line: Option<u64>,
}

impl Warmer {
    /// Creates cold structures sized exactly like `Core::new` builds them.
    pub fn new(cfg: &CoreConfig) -> Warmer {
        Warmer::from_state(WarmState::new(cfg), cfg)
    }

    /// Resumes warming from a checkpointed snapshot.
    pub fn from_state(state: WarmState, cfg: &CoreConfig) -> Warmer {
        Warmer { state, rob_window: cfg.rob_size as u64, last_fetch_line: None }
    }

    /// Warms the predictor-independent structures on one architecturally
    /// retired instruction. Does **not** touch `ctx` — the caller folds
    /// the instruction in afterwards (`ctx.observe`), because updates here
    /// must see the *pre-update* history values, exactly like branch
    /// resolution in the core.
    ///
    /// `next_block` is the block the emulator moved to after this
    /// instruction (its post-step cursor) — the resolved target that
    /// trains the indirect predictor.
    pub fn warm_structures(
        &mut self,
        ctx: &WarmContext,
        program: &Program,
        rec: &ExecRecord,
        next_block: Option<BlockId>,
    ) {
        let fetch_line = rec.pc >> 6;
        if self.last_fetch_line != Some(fetch_line) {
            self.state.hierarchy.warm(AccessKind::Fetch, rec.pc, rec.pc);
            self.last_fetch_line = Some(fetch_line);
        }
        let inst = program.inst(rec.block, rec.index);
        match &inst.op {
            Op::CondBranch { .. } => {
                let taken = rec.taken.expect("cond branch records taken");
                self.state.direction.update(rec.pc, ctx.cond_ghr, taken);
            }
            Op::IndirectJump(_) | Op::Ret => {
                if let Some(b) = next_block {
                    self.state.indirect.update(rec.pc, ctx.path_ghr, b);
                }
            }
            Op::Load(_) => {
                let addr = rec.eff_addr.expect("load records address");
                self.state.hierarchy.warm(AccessKind::Load, rec.pc, addr);
            }
            Op::Store(_) => {
                let addr = rec.eff_addr.expect("store records address");
                self.state.hierarchy.warm(AccessKind::Store, rec.pc, addr);
            }
            _ => {}
        }
    }

    /// Warms everything — shared structures *and* the window's MDP — on
    /// one retired instruction, then folds it into `ctx`. This is the
    /// per-window warm phase.
    pub fn warm_step(
        &mut self,
        ctx: &mut WarmContext,
        program: &Program,
        rec: &ExecRecord,
        next_block: Option<BlockId>,
        predictor: &mut dyn MemDepPredictor,
    ) {
        self.warm_structures(ctx, program, rec, next_block);
        let inst = program.inst(rec.block, rec.index);
        match &inst.op {
            Op::Load(size) => {
                let addr = rec.eff_addr.expect("load records address");
                self.warm_load(ctx, rec, addr, size.bytes(), predictor);
            }
            Op::Store(_) => {
                predictor.warm_store(&StoreQuery {
                    pc: rec.pc,
                    token: rec.seq,
                    history: &ctx.history,
                });
            }
            _ => {}
        }
        ctx.observe(program, rec);
    }

    /// MDP warming for one load: predict, detect the youngest overlapping
    /// in-ROB-range store, train an uncovered dependence as a violation,
    /// and close the loop with the commit notification.
    fn warm_load(
        &mut self,
        ctx: &WarmContext,
        rec: &ExecRecord,
        addr: u64,
        size: u64,
        predictor: &mut dyn MemDepPredictor,
    ) {
        let in_flight = ctx
            .stores
            .iter()
            .rev()
            .take_while(|s| rec.seq - s.seq <= self.rob_window)
            .count() as u32;
        let outcome = predictor.predict_load(&LoadQuery {
            pc: rec.pc,
            token: rec.seq,
            history: &ctx.history,
            arch_seq: rec.seq,
            older_stores: in_flight,
        });

        // Youngest overlapping store that could still be in flight — the
        // store the core would have forwarded from (or squashed on).
        let mut dep: Option<(StoreRec, u32)> = None;
        let len = ctx.stores.len();
        for (i, s) in ctx.stores.iter().enumerate().rev() {
            if rec.seq - s.seq > self.rob_window {
                break;
            }
            if ranges_overlap(addr, size, s.addr, s.size) {
                dep = Some((*s, (len - 1 - i) as u32));
                break;
            }
        }

        match dep {
            Some((store, distance)) => {
                let covered = match outcome.dep {
                    DepPrediction::None => false,
                    DepPrediction::Distance(d) => d == distance,
                    DepPrediction::StoreToken(t) => t == store.seq,
                    DepPrediction::DistanceMask(m) => {
                        distance < 128 && (m >> distance) & 1 == 1
                    }
                    DepPrediction::AllOlder => true,
                };
                if !covered {
                    predictor.warm_violation(&Violation {
                        load_pc: rec.pc,
                        store_pc: store.pc,
                        store_distance: distance,
                        history_len: (ctx.history.count() - store.div_count) as u32,
                        history: &ctx.history,
                        load_token: rec.seq,
                        store_token: store.seq,
                        prior: outcome,
                    });
                }
                predictor.warm_load(&LoadCommit {
                    pc: rec.pc,
                    prediction: outcome,
                    actual_distance: Some(distance),
                    waited_correct: covered && outcome.dep.is_dependence(),
                    history: &ctx.history,
                });
            }
            None => {
                predictor.warm_load(&LoadCommit {
                    pc: rec.pc,
                    prediction: outcome,
                    actual_distance: None,
                    waited_correct: false,
                    history: &ctx.history,
                });
            }
        }
    }
}
