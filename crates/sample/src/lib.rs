//! Sampled simulation: functional fast-forward, microarchitectural
//! warming, and checkpointed detailed windows.
//!
//! Full-detail sweeps pay cycle-accurate cost for every instruction even
//! though most of a run is steady state. This crate implements the
//! standard answer — statistical sampling with functional warming: divide
//! the horizon into equal strides, fast-forward functionally between
//! windows while keeping long-lived structures warm, and measure only a
//! short detailed window per stride through the `phast-ooo` core. The
//! per-window results aggregate into an IPC/MPKI point estimate with a
//! confidence interval ([`SampleEstimate`]).
//!
//! * [`capture`] makes one functional pass and emits a serializable
//!   [`CheckpointSet`] (architectural snapshot + warmed context per
//!   window; in-tree byte format, no external deps).
//! * [`run_window`] replays one window independently: restore → warm the
//!   caches/branch predictors/MDP over the warm phase → boot the core via
//!   `phast_ooo::BootState` → run the detailed window. Independence is
//!   what lets `phast-experiments` fan windows across its worker pool.
//! * [`estimate`] turns window runs into the point estimate and
//!   instruction accounting (measured vs warmed vs fast-forwarded).
//!
//! Methodology, warming rules and the documented error bound live in
//! `docs/SAMPLING.md`.

#![warn(missing_docs)]

mod checkpoint;
mod codec;
mod engine;
mod warm;

pub use checkpoint::{Checkpoint, CheckpointSet, StoreRec, WarmContext};
pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use engine::{
    capture, estimate, ipc_error_bound, run_sampled, run_window, run_window_within,
    sum_window_stats, SampleConfig, SampleEstimate, WindowRun,
};
pub use warm::{WarmState, Warmer};
