//! The sampling engine: capture, window replay, and estimation.
//!
//! A sampled run of a program over an instruction `horizon` proceeds in
//! two passes:
//!
//! 1. **Capture** ([`capture`]): one functional pass through the
//!    `phast-isa` emulator, maintaining the cheap [`WarmContext`] *and*
//!    the predictor-independent long-lived structures
//!    ([`WarmState`](crate::WarmState): caches + prefetcher, direction predictor,
//!    indirect-target predictor) continuously, and snapshotting both at
//!    the start of each window's warm phase. Windows are placed
//!    systematically (SMARTS style): the horizon is divided into
//!    `windows` equal strides and the detailed window sits at the
//!    *middle* of each stride, preceded by its warm phase. Mid-stride
//!    placement keeps every window fully warmed; the startup transient is
//!    deliberately not sampled — its weight in a full run vanishes as the
//!    horizon grows, whereas a cold window would overweight it by the
//!    stride-to-window ratio (see `docs/SAMPLING.md`).
//! 2. **Replay** ([`run_window`]): per window — and independently, so
//!    windows parallelize across workers — restore the emulator and the
//!    warmed structures from the checkpoint, warm the predictor-specific
//!    MDP training state over the warm phase (structures keep warming
//!    alongside), then boot a `phast-ooo` core from the warmed state and
//!    run the detailed window cycle-accurately.
//!
//! [`estimate`] aggregates per-window statistics into a point estimate
//! with a 95% confidence interval plus measured/warmed/fast-forwarded
//! instruction accounting.

use crate::checkpoint::{Checkpoint, CheckpointSet, WarmContext};
use crate::warm::Warmer;
use phast_isa::{EmuError, Emulator, Program};
use phast_mdp::MemDepPredictor;
use phast_ooo::{BootState, Core, CoreConfig, Deadline, SimError, SimStats};

/// Depth of the core's return-address stack (mirrors `Core::new`).
const RAS_DEPTH: usize = 32;

/// Sampling parameters: how many windows, and how long each warm phase
/// and detailed window run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleConfig {
    /// Number of detailed windows spread over the horizon.
    pub windows: usize,
    /// Instructions of microarchitectural warming before each window.
    pub warm_insts: u64,
    /// Instructions measured cycle-accurately per window.
    pub window_insts: u64,
}

impl Default for SampleConfig {
    /// Defaults tuned on the quick validation grid (see `docs/SAMPLING.md`
    /// for the error bound they achieve).
    fn default() -> SampleConfig {
        SampleConfig { windows: 8, warm_insts: 2_000, window_insts: 1_000 }
    }
}

impl SampleConfig {
    /// A config with explicit parameters.
    pub fn new(windows: usize, warm_insts: u64, window_insts: u64) -> SampleConfig {
        SampleConfig { windows, warm_insts, window_insts }
    }
}

/// Captures checkpoints for a sampled run of `program` over `horizon`
/// instructions.
///
/// One functional pass: fast-forwards the emulator, maintaining the cheap
/// warming context *and* the predictor-independent structures
/// ([`WarmState`](crate::WarmState)) continuously, and snapshots both at each window's
/// warm-phase start. If the program halts before the horizon, capture
/// stops early and returns the windows placed so far.
///
/// # Errors
///
/// Propagates an [`EmuError`] from the functional emulator (a workload
/// executing an invalid `Ret`).
pub fn capture(
    program: &Program,
    cfg: &CoreConfig,
    scfg: &SampleConfig,
    horizon: u64,
) -> Result<CheckpointSet, EmuError> {
    let windows = scfg.windows.max(1) as u64;
    let stride = (horizon / windows).max(scfg.window_insts.max(1));
    // Mid-stride placement: the measured region sits in the middle of
    // each stride, so every window (including the first) is preceded by
    // fast-forwarded execution and a warm phase.
    let offset = (stride - scfg.window_insts.min(stride)) / 2;
    let mut emu = Emulator::new(program);
    let mut ctx = WarmContext::new(cfg.sq_size, RAS_DEPTH);
    let mut warmer = Warmer::new(cfg);
    let mut checkpoints = Vec::with_capacity(windows as usize);
    let mut warm = Vec::with_capacity(windows as usize);
    'place: for w in 0..windows {
        let detail_start = w * stride + offset;
        let warm_start = detail_start.saturating_sub(scfg.warm_insts);
        while emu.retired() < warm_start {
            match emu.step()? {
                Some(rec) => {
                    let next_block = emu.cursor().map(|(b, _)| b);
                    warmer.warm_structures(&ctx, program, &rec, next_block);
                    ctx.observe(program, &rec);
                }
                None => break 'place,
            }
        }
        if emu.halted() {
            break;
        }
        checkpoints.push(Checkpoint { detail_start, arch: emu.snapshot(), ctx: ctx.clone() });
        warm.push(warmer.state.clone());
    }
    Ok(CheckpointSet {
        horizon,
        warm_insts: scfg.warm_insts,
        window_insts: scfg.window_insts,
        checkpoints,
        warm,
    })
}

impl CheckpointSet {
    /// Regenerates the in-memory [`WarmState`](crate::WarmState) snapshots after
    /// [`from_bytes`](CheckpointSet::from_bytes): one functional pass over
    /// the same prefix the original capture covered. The snapshots are a
    /// pure function of the program, so the regenerated states are
    /// identical to the ones the capture pass held.
    ///
    /// # Errors
    ///
    /// Propagates an [`EmuError`] from the functional emulator.
    pub fn rewarm(&mut self, program: &Program, cfg: &CoreConfig) -> Result<(), EmuError> {
        let mut emu = Emulator::new(program);
        let mut ctx = WarmContext::new(cfg.sq_size, RAS_DEPTH);
        let mut warmer = Warmer::new(cfg);
        let mut warm = Vec::with_capacity(self.checkpoints.len());
        for cp in &self.checkpoints {
            while emu.retired() < cp.arch.icount {
                match emu.step()? {
                    Some(rec) => {
                        let next_block = emu.cursor().map(|(b, _)| b);
                        warmer.warm_structures(&ctx, program, &rec, next_block);
                        ctx.observe(program, &rec);
                    }
                    None => break,
                }
            }
            warm.push(warmer.state.clone());
        }
        self.warm = warm;
        Ok(())
    }
}

/// Result of one detailed window.
#[derive(Clone, Debug)]
pub struct WindowRun {
    /// Statistics of the detailed window (default/empty if the program
    /// halted during the warm phase).
    pub stats: SimStats,
    /// Simulation failure, if the window degraded.
    pub failure: Option<SimError>,
    /// Instructions spent warming before this window.
    pub warmed: u64,
}

/// Replays window `w` of the set: restore, warm, run detailed.
///
/// Windows are independent — this function takes everything it needs by
/// shared reference to the capture artifacts, so callers can fan windows
/// out across worker threads. The predictor must be freshly built (cold):
/// its training state is warmed here, over the warm phase, through
/// `phast_mdp::Warmable`. The predictor-independent structures resume
/// from the checkpoint's [`WarmState`](crate::WarmState) snapshot, which reflects the
/// entire execution preceding the window.
///
/// # Panics
///
/// Panics if the set has no warm snapshot for window `w` — a set loaded
/// with `CheckpointSet::from_bytes` must be
/// [`rewarm`](CheckpointSet::rewarm)ed first.
pub fn run_window(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    set: &CheckpointSet,
    w: usize,
) -> WindowRun {
    run_window_within(program, cfg, predictor, set, w, &Deadline::none())
}

/// [`run_window`] under a cooperative [`Deadline`] watchdog: if the
/// window's wall-clock budget elapses mid-replay, the detailed run ends
/// with a degraded [`WindowRun`] carrying `SimError::Deadline` instead of
/// hanging its worker thread.
///
/// # Panics
///
/// As for [`run_window`].
pub fn run_window_within(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    set: &CheckpointSet,
    w: usize,
    deadline: &Deadline,
) -> WindowRun {
    let cp = &set.checkpoints[w];
    let state = set
        .warm
        .get(w)
        .expect("checkpoint set has no warm snapshots — call rewarm() after from_bytes()")
        .clone();
    let mut emu = Emulator::from_snapshot(program, &cp.arch);
    let mut ctx = cp.ctx.clone();
    let mut warmer = Warmer::from_state(state, cfg);
    while emu.retired() < cp.detail_start && !emu.halted() {
        let rec = emu
            .step()
            .expect("capture pass emulated this prefix")
            .expect("checked not halted");
        let next_block = emu.cursor().map(|(b, _)| b);
        warmer.warm_step(&mut ctx, program, &rec, next_block, predictor);
    }
    let warmed = emu.retired() - cp.arch.icount;
    // Warming traffic must not pollute the measured window's counters.
    predictor.reset_access_stats();
    if emu.halted() {
        return WindowRun { stats: SimStats::default(), failure: None, warmed };
    }
    let boot = BootState {
        arch: emu.snapshot(),
        cond_ghr: ctx.cond_ghr,
        path_ghr: ctx.path_ghr,
        history: ctx.history.clone(),
        ras: ctx.ras.clone(),
        hierarchy: warmer.state.hierarchy,
        indirect: warmer.state.indirect,
    };
    let mut core =
        Core::with_state(program, cfg.clone(), predictor, Box::new(warmer.state.direction), boot);
    // Detailed ramp: the core boots with an empty pipeline, so the first
    // ~ROB-size instructions commit below steady-state IPC while the
    // window fills. Run them cycle-accurately but *discard* them from the
    // measurement (SMARTS "detailed warming") — the window statistics are
    // the delta between the two resumable `try_run` calls.
    let ramp = cfg.rob_size as u64;
    let max_cycles = ((ramp + set.window_insts) * 20).max(1_000_000);
    let before = match core.try_run_within(ramp, max_cycles, deadline) {
        Ok(stats) => stats,
        Err(e) => return WindowRun { stats: SimStats::default(), failure: Some(e), warmed },
    };
    if before.halted {
        return WindowRun { stats: SimStats::default(), failure: None, warmed: warmed + before.committed };
    }
    match core.try_run_within(ramp + set.window_insts, max_cycles, deadline) {
        Ok(stats) => WindowRun {
            stats: diff_stats(&stats, &before),
            failure: None,
            warmed: warmed + before.committed,
        },
        Err(e) => WindowRun { stats: SimStats::default(), failure: Some(e), warmed: warmed + before.committed },
    }
}

/// Field-wise `after − before` of two cumulative statistics snapshots
/// from the same core (the measured window between two resumable
/// `try_run` calls). Flags (`halted`, `ceiling_hit`) come from `after`.
#[allow(clippy::field_reassign_with_default)] // one line per field beats a 25-field literal
fn diff_stats(after: &SimStats, before: &SimStats) -> SimStats {
    let mut out = SimStats::default();
    out.cycles = after.cycles - before.cycles;
    out.committed = after.committed - before.committed;
    out.committed_loads = after.committed_loads - before.committed_loads;
    out.committed_stores = after.committed_stores - before.committed_stores;
    out.committed_cond_branches = after.committed_cond_branches - before.committed_cond_branches;
    out.branch_mispredicts = after.branch_mispredicts - before.branch_mispredicts;
    out.indirect_mispredicts = after.indirect_mispredicts - before.indirect_mispredicts;
    out.violations = after.violations - before.violations;
    out.false_dependences = after.false_dependences - before.false_dependences;
    out.forwarded_loads = after.forwarded_loads - before.forwarded_loads;
    out.filtered_violations = after.filtered_violations - before.filtered_violations;
    out.squashed_uops = after.squashed_uops - before.squashed_uops;
    out.mdp_stalled_loads = after.mdp_stalled_loads - before.mdp_stalled_loads;
    out.predictor_accesses = phast_mdp::AccessStats {
        reads: after.predictor_accesses.reads - before.predictor_accesses.reads,
        writes: after.predictor_accesses.writes - before.predictor_accesses.writes,
    };
    out.memory.l1i = sub_cache(after.memory.l1i, before.memory.l1i);
    out.memory.l1d = sub_cache(after.memory.l1d, before.memory.l1d);
    out.memory.l2 = sub_cache(after.memory.l2, before.memory.l2);
    out.memory.l3 = sub_cache(after.memory.l3, before.memory.l3);
    out.memory.dram_accesses = after.memory.dram_accesses - before.memory.dram_accesses;
    out.halted = after.halted;
    out.ceiling_hit = after.ceiling_hit;
    out.checked_commits = after.checked_commits - before.checked_commits;
    out.injected_faults = after.injected_faults - before.injected_faults;
    out.invariant_audits = after.invariant_audits - before.invariant_audits;
    out
}

fn sub_cache(a: phast_mem::CacheStats, b: phast_mem::CacheStats) -> phast_mem::CacheStats {
    phast_mem::CacheStats {
        hits: a.hits - b.hits,
        misses: a.misses - b.misses,
        mshr_merges: a.mshr_merges - b.mshr_merges,
        mshr_stall_cycles: a.mshr_stall_cycles - b.mshr_stall_cycles,
        prefetch_fills: a.prefetch_fills - b.prefetch_fills,
    }
}

/// Point estimate with confidence interval over a set of window runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleEstimate {
    /// Windows that produced a measurement (non-degraded, non-empty).
    pub windows: usize,
    /// Ratio-of-sums IPC estimate: Σ committed / Σ cycles. This is the
    /// headline estimate compared against full-detail IPC.
    pub ipc: f64,
    /// Mean of the per-window IPCs.
    pub ipc_mean: f64,
    /// Half-width of the 95% confidence interval on `ipc_mean`
    /// (z·s/√n with z = 1.96; 0 when fewer than 2 windows).
    pub ipc_ci_half: f64,
    /// Violation MPKI over the measured instructions.
    pub violation_mpki: f64,
    /// False-dependence MPKI over the measured instructions.
    pub false_dep_mpki: f64,
    /// Instructions measured cycle-accurately.
    pub measured_insts: u64,
    /// Instructions spent in warm phases.
    pub warmed_insts: u64,
    /// Instructions covered only by functional fast-forward.
    pub fast_forwarded_insts: u64,
    /// Total horizon the capture covered.
    pub horizon: u64,
}

/// Aggregates per-window statistics into one estimate.
pub fn estimate(set: &CheckpointSet, runs: &[WindowRun]) -> SampleEstimate {
    let mut ipcs: Vec<f64> = Vec::with_capacity(runs.len());
    let mut committed = 0u64;
    let mut cycles = 0u64;
    let mut violations = 0u64;
    let mut false_deps = 0u64;
    let mut warmed = 0u64;
    for r in runs {
        warmed += r.warmed;
        if r.failure.is_some() || r.stats.cycles == 0 {
            continue;
        }
        ipcs.push(r.stats.ipc());
        committed += r.stats.committed;
        cycles += r.stats.cycles;
        violations += r.stats.violations;
        false_deps += r.stats.false_dependences;
    }
    let n = ipcs.len();
    let mean = if n == 0 { 0.0 } else { ipcs.iter().sum::<f64>() / n as f64 };
    let ci_half = if n < 2 {
        0.0
    } else {
        let var = ipcs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        1.96 * var.sqrt() / (n as f64).sqrt()
    };
    let per_kilo = |x: u64| if committed == 0 { 0.0 } else { 1000.0 * x as f64 / committed as f64 };
    SampleEstimate {
        windows: n,
        ipc: if cycles == 0 { 0.0 } else { committed as f64 / cycles as f64 },
        ipc_mean: mean,
        ipc_ci_half: ci_half,
        violation_mpki: per_kilo(violations),
        false_dep_mpki: per_kilo(false_deps),
        measured_insts: committed,
        warmed_insts: warmed,
        fast_forwarded_insts: set.horizon.saturating_sub(committed + warmed),
        horizon: set.horizon,
    }
}

/// The documented acceptance bound for a sampled IPC estimate against the
/// full-detail IPC of the same run (see `docs/SAMPLING.md`): the larger
/// of 12% of the full-detail IPC and twice the estimate's 95% confidence
/// half-width, floored at 0.05 IPC for near-zero-IPC runs.
pub fn ipc_error_bound(full_ipc: f64, ci_half: f64) -> f64 {
    (0.12 * full_ipc).max(2.0 * ci_half).max(0.05)
}

impl SampleEstimate {
    /// [`ipc_error_bound`] evaluated with this estimate's confidence
    /// half-width.
    pub fn ipc_error_bound(&self, full_ipc: f64) -> f64 {
        ipc_error_bound(full_ipc, self.ipc_ci_half)
    }
}

/// Sums window statistics into one `SimStats`-shaped record so sampled
/// runs flow through the same reporting paths as full-detail runs.
/// Per-window hierarchy and predictor-access counters are summed
/// field-wise; `halted` is true if any window observed the program halt.
pub fn sum_window_stats(runs: &[WindowRun]) -> SimStats {
    let mut out = SimStats::default();
    for r in runs {
        let s = &r.stats;
        out.cycles += s.cycles;
        out.committed += s.committed;
        out.committed_loads += s.committed_loads;
        out.committed_stores += s.committed_stores;
        out.committed_cond_branches += s.committed_cond_branches;
        out.branch_mispredicts += s.branch_mispredicts;
        out.indirect_mispredicts += s.indirect_mispredicts;
        out.violations += s.violations;
        out.false_dependences += s.false_dependences;
        out.forwarded_loads += s.forwarded_loads;
        out.filtered_violations += s.filtered_violations;
        out.squashed_uops += s.squashed_uops;
        out.mdp_stalled_loads += s.mdp_stalled_loads;
        out.predictor_accesses.add(s.predictor_accesses);
        out.memory.l1i = add_cache(out.memory.l1i, s.memory.l1i);
        out.memory.l1d = add_cache(out.memory.l1d, s.memory.l1d);
        out.memory.l2 = add_cache(out.memory.l2, s.memory.l2);
        out.memory.l3 = add_cache(out.memory.l3, s.memory.l3);
        out.memory.dram_accesses += s.memory.dram_accesses;
        out.halted |= s.halted;
        out.ceiling_hit |= s.ceiling_hit;
        out.checked_commits += s.checked_commits;
        out.injected_faults += s.injected_faults;
        out.invariant_audits += s.invariant_audits;
    }
    out
}

fn add_cache(a: phast_mem::CacheStats, b: phast_mem::CacheStats) -> phast_mem::CacheStats {
    phast_mem::CacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        mshr_merges: a.mshr_merges + b.mshr_merges,
        mshr_stall_cycles: a.mshr_stall_cycles + b.mshr_stall_cycles,
        prefetch_fills: a.prefetch_fills + b.prefetch_fills,
    }
}

/// Serial convenience: capture + replay every window + estimate, building
/// a fresh predictor per window via `build`. The parallel path lives in
/// `phast-experiments`, which fans [`run_window`] calls across its worker
/// pool; this entry point serves tests and single-run callers.
///
/// # Errors
///
/// Propagates an [`EmuError`] from the capture pass.
pub fn run_sampled(
    program: &Program,
    cfg: &CoreConfig,
    scfg: &SampleConfig,
    horizon: u64,
    build: &mut dyn FnMut() -> Box<dyn MemDepPredictor>,
) -> Result<(SampleEstimate, Vec<WindowRun>), EmuError> {
    let set = capture(program, cfg, scfg, horizon)?;
    let runs: Vec<WindowRun> = (0..set.checkpoints.len())
        .map(|w| {
            let mut predictor = build();
            run_window(program, cfg, predictor.as_mut(), &set, w)
        })
        .collect();
    Ok((estimate(&set, &runs), runs))
}
