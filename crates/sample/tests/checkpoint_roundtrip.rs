//! Checkpoint round-trip and window-replay properties.
//!
//! The satellite guarantee of the sampling subsystem: an emulator +
//! warmed-state checkpoint serializes and restores **bit-identically**
//! (same struct back, byte-identical re-serialization), and a restored
//! window behaves exactly like the capture-time execution would have.

use phast_baselines::{StoreSets, StoreSetsConfig};
use phast_isa::Emulator;
use phast_mdp::BlindSpeculation;
use phast_ooo::{CheckConfig, CoreConfig};
use phast_sample::{capture, run_sampled, run_window, CheckpointSet, SampleConfig};
use phast_workloads::all_workloads;
use proptest::prelude::*;

/// A core config with checking off so debug-profile tests stay fast; the
/// lockstep path is exercised separately by `seeded_core_passes_lockstep`.
fn fast_cfg() -> CoreConfig {
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig::off();
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Capture over a random workload prefix, then serialize → deserialize
    /// → re-serialize: the decoded set must equal the original and the
    /// bytes must be identical.
    #[test]
    fn checkpoint_serialization_roundtrips_bit_identically(
        workload_idx in 0usize..23,
        horizon in 2_000u64..20_000,
        windows in 1usize..5,
    ) {
        let w = &all_workloads()[workload_idx];
        let program = w.build(100_000);
        let scfg = SampleConfig::new(windows, 300, 200);
        let set = capture(&program, &fast_cfg(), &scfg, horizon).expect("workloads emulate cleanly");
        prop_assert!(!set.checkpoints.is_empty(), "{}: horizon places at least one window", w.name);

        let bytes = set.to_bytes();
        let decoded = CheckpointSet::from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(&decoded, &set, "decoded set must equal the captured set");
        prop_assert_eq!(decoded.to_bytes(), bytes, "re-serialization must be byte-identical");
    }

    /// An emulator restored from a checkpoint's architectural snapshot
    /// retires exactly the records the capture-time emulator retires next.
    #[test]
    fn restored_emulator_continues_identically(
        workload_idx in 0usize..23,
        prefix in 500u64..5_000,
    ) {
        let w = &all_workloads()[workload_idx];
        let program = w.build(100_000);
        let mut emu = Emulator::new(&program);
        emu.run(prefix).expect("workloads emulate cleanly");
        let snap = emu.snapshot();

        let bytes_before = snap.memory.lines_sorted().len();
        let mut resumed = Emulator::from_snapshot(&program, &snap);
        prop_assert_eq!(resumed.snapshot(), snap, "snapshot of a restore is the snapshot");
        for _ in 0..200 {
            let a = emu.step().expect("clean");
            let b = resumed.step().expect("clean");
            prop_assert_eq!(&a, &b, "{}: resumed stream diverged", w.name);
            if a.is_none() {
                break;
            }
        }
        let _ = bytes_before;
    }
}

/// Replaying the same window twice (fresh predictor each time) is
/// deterministic, and replaying from a decoded checkpoint set matches
/// replaying from the original.
#[test]
fn window_replay_is_deterministic_across_serialization() {
    let w = phast_workloads::by_name("mcf").expect("workload exists");
    let program = w.build(100_000);
    let cfg = fast_cfg();
    let scfg = SampleConfig::new(3, 800, 500);
    let set = capture(&program, &cfg, &scfg, 12_000).expect("clean");
    let mut decoded = CheckpointSet::from_bytes(&set.to_bytes()).expect("decodes");
    decoded.rewarm(&program, &cfg).expect("rewarm is a clean functional pass");
    for j in 0..set.checkpoints.len() {
        let mut p1 = StoreSets::new(StoreSetsConfig::paper());
        let mut p2 = StoreSets::new(StoreSetsConfig::paper());
        let a = run_window(&program, &cfg, &mut p1, &set, j);
        let b = run_window(&program, &cfg, &mut p2, &decoded, j);
        assert!(a.failure.is_none(), "window must not degrade");
        assert_eq!(a.stats.cycles, b.stats.cycles, "cycles must be deterministic");
        assert_eq!(a.stats.committed, b.stats.committed);
        assert_eq!(a.stats.violations, b.stats.violations);
        assert_eq!(a.warmed, b.warmed);
    }
}

/// A core booted from warmed state still passes lockstep co-simulation
/// against the reference emulator — the strongest evidence that the boot
/// state is architecturally exact.
#[test]
fn seeded_core_passes_lockstep() {
    let w = phast_workloads::by_name("gcc_1").expect("workload exists");
    let program = w.build(100_000);
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig::full();
    let scfg = SampleConfig::new(2, 500, 400);
    let set = capture(&program, &cfg, &scfg, 8_000).expect("clean");
    assert_eq!(set.checkpoints.len(), 2);
    for j in 0..set.checkpoints.len() {
        let mut predictor = BlindSpeculation;
        let run = run_window(&program, &cfg, &mut predictor, &set, j);
        assert!(run.failure.is_none(), "lockstep must hold from a warmed boot: {:?}", run.failure);
        assert_eq!(
            run.stats.checked_commits, run.stats.committed,
            "every windowed commit is cross-checked"
        );
        assert!(run.stats.committed > 0, "window measured something");
    }
}

/// End-to-end sanity: a sampled estimate lands in a plausible IPC range
/// and the instruction accounting covers the horizon.
#[test]
fn sampled_estimate_is_sane() {
    let w = phast_workloads::by_name("omnetpp").expect("workload exists");
    let program = w.build(200_000);
    let cfg = fast_cfg();
    let scfg = SampleConfig::new(4, 1_000, 600);
    let (est, runs) = run_sampled(&program, &cfg, &scfg, 20_000, &mut || {
        Box::new(StoreSets::new(StoreSetsConfig::paper()))
    })
    .expect("clean");
    assert_eq!(runs.len(), 4);
    assert_eq!(est.windows, 4);
    assert!(est.ipc > 0.1 && est.ipc < 12.0, "IPC {} out of range", est.ipc);
    assert!(est.measured_insts >= 4 * 600 - 100, "windows measured ~their length");
    assert!(est.warmed_insts >= 4 * 900, "warm phases ran");
    assert_eq!(est.horizon, 20_000);
    assert!(
        est.measured_insts + est.warmed_insts + est.fast_forwarded_insts <= 20_000 + 600,
        "accounting covers the horizon without double counting"
    );
}
