//! Fail-closed codec hardening: no corrupted checkpoint byte stream may
//! panic, allocate unboundedly, or decode into state.
//!
//! `CheckpointSet::from_bytes` is the trust boundary between on-disk
//! artifacts and the sampling engine. These properties pin the contract
//! down: every truncation and every single-bit flip is rejected with a
//! typed [`CodecError`]; declared length fields are capped against the
//! bytes actually present *before* any allocation, so a length-bomb (a
//! huge count with a freshly re-sealed CRC trailer) errors out quickly
//! instead of attempting an OOM-sized `Vec::with_capacity`.

use phast_branch::DivergentEvent;
use phast_isa::{BlockId, EmuSnapshot, SparseMemory};
use phast_sample::{crc32, Checkpoint, CheckpointSet, StoreRec, WarmContext};
use proptest::prelude::*;

/// A small but fully populated set: every serialized field class (GHRs,
/// history ring, RAS, store window, registers, memory lines, cursor) is
/// exercised so corruption can land anywhere in the format.
fn sample_set() -> CheckpointSet {
    let mut ctx = WarmContext::new(4, 8);
    ctx.cond_ghr = 0b1011_0110;
    ctx.path_ghr = 0xfeed_face;
    ctx.history.push(DivergentEvent { indirect: false, taken: true, target: 7 });
    ctx.history.push(DivergentEvent { indirect: true, taken: true, target: 19 });
    ctx.ras.push(BlockId(3));
    ctx.ras.push(BlockId(11));
    ctx.stores.push_back(StoreRec { seq: 9, pc: 0x40, addr: 0x2000, size: 8, div_count: 1 });
    ctx.stores.push_back(StoreRec { seq: 12, pc: 0x48, addr: 0x2010, size: 4, div_count: 2 });
    let mut memory = SparseMemory::new();
    memory.write_byte(0x2000, 0x5a);
    memory.write_byte(0x99, 0x11);
    memory.write_byte(0x4321, 0xc3);
    let arch = EmuSnapshot {
        regs: std::array::from_fn(|i| i as u64 * 7 + 1),
        memory,
        cursor: Some((BlockId(2), 1)),
        icount: 10,
    };
    CheckpointSet {
        horizon: 1000,
        warm_insts: 50,
        window_insts: 25,
        checkpoints: vec![Checkpoint { detail_start: 60, arch, ctx }],
        warm: Vec::new(),
    }
}

/// Replaces the last 4 bytes with a freshly computed CRC trailer, so the
/// mutation under test is reached *past* the integrity check — this is
/// what an attacker (or a very unlucky disk) would need to do to get
/// corrupt lengths in front of the allocator.
fn reseal(bytes: &mut [u8]) {
    let body_len = bytes.len() - 4;
    let digest = crc32(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&digest.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every proper prefix of a valid stream is rejected with a typed
    /// error — never a panic, never an `Ok`.
    #[test]
    fn every_truncation_is_rejected(cut in 0u32..10_000) {
        let bytes = sample_set().to_bytes();
        let len = (bytes.len() - 1) * cut as usize / 10_000;
        let decoded = CheckpointSet::from_bytes(&bytes[..len]);
        prop_assert!(decoded.is_err(), "truncation to {len}/{} bytes must fail", bytes.len());
    }

    /// Every single-bit flip anywhere in the stream is rejected: the CRC
    /// trailer covers the whole prefix and the trailer itself, so there is
    /// no byte whose corruption decodes cleanly.
    #[test]
    fn every_bit_flip_is_rejected(pos in 0u32..10_000, bit in 0u32..8) {
        let mut bytes = sample_set().to_bytes();
        let idx = (bytes.len() - 1) * pos as usize / 10_000;
        bytes[idx] ^= 1 << bit;
        let decoded = CheckpointSet::from_bytes(&bytes);
        prop_assert!(decoded.is_err(), "bit {bit} of byte {idx} flipped must fail");
    }

    /// Overwriting any aligned 32-bit word with an arbitrary value and
    /// re-sealing the CRC must still decode totally: `Ok` or a typed
    /// `Err`, but never a panic and never a huge allocation. This drives
    /// corrupt values through every structural check behind the checksum
    /// (length caps, range checks, flag bytes).
    #[test]
    fn resealed_word_corruption_decodes_totally(pos in 0u32..10_000, value in 0u64..u64::MAX) {
        let mut bytes = sample_set().to_bytes();
        let body_len = bytes.len() - 4;
        let words = body_len / 4;
        let idx = 4 * ((words - 1) * pos as usize / 10_000);
        bytes[idx..idx + 4].copy_from_slice(&(value as u32).to_le_bytes());
        reseal(&mut bytes);
        // Total decoding is the property; the result value is free.
        let _ = CheckpointSet::from_bytes(&bytes);
    }
}

/// A length bomb behind a valid checksum: each length-bearing field in
/// turn is overwritten with `u32::MAX` and the trailer re-sealed. The
/// loader must reject it with a typed error *before* allocating — this
/// test completing (quickly, without OOM) is the point.
#[test]
fn length_bombs_are_defused_before_allocation() {
    let clean = sample_set().to_bytes();
    // Offset 32..36 is the checkpoint count (after magic, version, and
    // three u64 header fields); interior length fields move around with
    // content, so bomb every aligned word and let the structural checks
    // sort out which is which.
    let mut offsets: Vec<usize> = vec![32];
    offsets.extend((8..clean.len() - 4).step_by(4));
    for off in offsets {
        let mut bytes = clean.clone();
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut bytes);
        let decoded = CheckpointSet::from_bytes(&bytes);
        assert!(
            decoded.is_err() || decoded.is_ok(),
            "decoding is total at offset {off}"
        );
        if off == 32 {
            assert!(decoded.is_err(), "a 4-billion checkpoint count must be rejected");
        }
    }
}

/// The hardened loader still accepts what the writer produces, and the
/// error taxonomy stays typed end to end.
#[test]
fn clean_roundtrip_survives_hardening() {
    let set = sample_set();
    let bytes = set.to_bytes();
    let decoded = CheckpointSet::from_bytes(&bytes).expect("clean stream decodes");
    assert_eq!(decoded, set);
    assert_eq!(decoded.to_bytes(), bytes, "re-serialization is byte-identical");
}
