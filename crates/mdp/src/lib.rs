//! Memory dependence prediction (MDP) framework.
//!
//! Defines the [`MemDepPredictor`] interface that the out-of-order core in
//! `phast-ooo` drives, the query/training context types, reference
//! predictors (the *ideal* oracle, blind speculation, and total ordering),
//! and shared building blocks (the set-associative prediction table and the
//! paper's PC hashes) reused by PHAST and the baselines.
//!
//! # Predictor lifecycle (one load)
//!
//! 1. At dispatch the core calls [`MemDepPredictor::predict_load`] with the
//!    decode-time divergent-branch history. The predictor answers with a
//!    [`DepPrediction`]: no dependence, a *store distance* (number of
//!    stores older than the load but younger than the conflicting store),
//!    a concrete store token (Store Sets), or "wait for all older stores".
//! 2. Stores call [`MemDepPredictor::store_dispatched`]; Store Sets uses
//!    this to serialize stores of a set and to update its LFST.
//! 3. When a memory-order violation is confirmed, the core calls
//!    [`MemDepPredictor::train_violation`] with the store distance and the
//!    store→load path information (history length N+1, §IV-A2).
//! 4. When a load commits, [`MemDepPredictor::load_committed`] lets the
//!    predictor maintain its confidence counters.

#![warn(missing_docs)]

mod oracle;
mod simple;
mod table;
mod types;

use phast_isa::Pc;

pub use oracle::{DepOracle, MultiStoreStats, OraclePredictor};
pub use simple::{BlindSpeculation, TotalOrder};
pub use table::{AssocTable, TableGeometry};
pub use types::{
    pc_index_hash, pc_tag_hash, AccessStats, DepPrediction, LoadCommit, LoadQuery,
    PredictionOutcome, StoreQuery, Violation, MAX_STORE_DISTANCE,
};

/// A memory dependence predictor, as driven by the out-of-order core.
///
/// `Send` is a supertrait: the sweep engine in `phast-experiments` moves
/// simulator cores (and their predictors) across worker threads, so every
/// predictor must be free of `Rc`/non-`Send` interior state.
pub trait MemDepPredictor: Send {
    /// A short, unique, human-readable name (appears in experiment output).
    ///
    /// Returns a borrowed string so hot callers (per-run logging, stat
    /// labelling) do not allocate; implementations with config-dependent
    /// names cache the formatted name at construction time.
    fn name(&self) -> &str;

    /// Predicts whether the load dispatching now depends on an older
    /// in-flight store.
    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome;

    /// Notifies the predictor that a store has dispatched. May return the
    /// token of an older store this store must wait for (Store Sets
    /// serializes the stores of a set through its LFST).
    fn store_dispatched(&mut self, _q: &StoreQuery<'_>) -> Option<u64> {
        None
    }

    /// Notifies the predictor that a store has executed (resolved its
    /// address and data). Store Sets invalidates its LFST entry here so
    /// later loads do not wait on an already-executed store.
    fn store_executed(&mut self, _pc: Pc, _token: u64) {}

    /// Trains the predictor on a confirmed memory-order violation.
    fn train_violation(&mut self, v: &Violation<'_>);

    /// Updates confidence state when a load commits.
    fn load_committed(&mut self, _c: &LoadCommit<'_>) {}

    /// Storage budget in bits (0 for unlimited/oracle predictors).
    fn storage_bits(&self) -> usize;

    /// Read/write access counters for the energy model.
    fn access_stats(&self) -> AccessStats;

    /// Number of distinct paths currently tracked. Meaningful for the
    /// unlimited predictors of the paper's Fig. 6b/9; table-based
    /// predictors report 0.
    fn num_paths(&self) -> u64 {
        0
    }

    /// Clears transient per-interval statistics (not learned state).
    fn reset_access_stats(&mut self) {}
}

/// Functional warming of a predictor's training state, used by the sampled
/// simulation engine (`phast-sample`) before each detailed window.
///
/// During fast-forward there is no pipeline, so the warming pass replays
/// the same training calls the core would issue — predict on every load,
/// dispatch/execute every store, train on every real (in-ROB-range)
/// store→load dependence the prediction did not cover — against the
/// architectural instruction stream. The blanket impl forwards to the
/// ordinary [`MemDepPredictor`] entry points, so all predictors warm with
/// no per-predictor code.
pub trait Warmable {
    /// Warms on a load: the prediction the predictor just made for this
    /// load plus the architecturally observed dependence outcome.
    fn warm_load(&mut self, c: &LoadCommit<'_>);

    /// Warms on an uncovered store→load dependence (what the core would
    /// have seen as a memory-order violation).
    fn warm_violation(&mut self, v: &Violation<'_>);

    /// Warms on a store: architecturally a store dispatches and executes
    /// at the same point, so both notifications fire back to back.
    fn warm_store(&mut self, q: &StoreQuery<'_>);
}

impl<T: MemDepPredictor + ?Sized> Warmable for T {
    fn warm_load(&mut self, c: &LoadCommit<'_>) {
        self.load_committed(c);
    }

    fn warm_violation(&mut self, v: &Violation<'_>) {
        self.train_violation(v);
    }

    fn warm_store(&mut self, q: &StoreQuery<'_>) {
        let (pc, token) = (q.pc, q.token);
        let _ = self.store_dispatched(q);
        self.store_executed(pc, token);
    }
}
