//! Context and result types exchanged between the core and predictors.

use phast_branch::DivergentHistory;
use phast_isa::Pc;

/// Maximum representable store distance (7-bit field, Table II: enough to
/// cover every in-flight store of a 114-entry store buffer).
pub const MAX_STORE_DISTANCE: u32 = 127;

/// The paper's index hash of a load PC: `PC ^ (PC >> 2) ^ (PC >> 5)`
/// (§IV-B). The low 2 bits are dropped first since instructions are
/// 4-byte aligned.
#[inline]
pub fn pc_index_hash(pc: Pc) -> u64 {
    let pc = pc >> 2;
    pc ^ (pc >> 2) ^ (pc >> 5)
}

/// The paper's tag hash of a load PC: the PC offset by 3 and 7 (§IV-B).
#[inline]
pub fn pc_tag_hash(pc: Pc) -> u64 {
    let pc = pc >> 2;
    pc ^ (pc >> 3) ^ (pc >> 7)
}

/// What a predictor believes about a dispatching load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepPrediction {
    /// The load may issue speculatively.
    None,
    /// The load depends on the store `distance` stores older than it,
    /// counting 0 as the youngest store older than the load.
    Distance(u32),
    /// The load depends on the specific in-flight store with this token
    /// (Store Sets resolves its LFST to a concrete store).
    StoreToken(u64),
    /// The load depends on every older store whose distance bit is set
    /// (Store Vectors). Bit `d` means "wait for the store `d` stores older
    /// than the load"; 128 bits cover any realistic store queue.
    DistanceMask(u128),
    /// The load must wait for every older store (CHT-style collision
    /// prediction, and the total-order reference predictor).
    AllOlder,
}

impl DepPrediction {
    /// True if this prediction makes the load wait on something.
    pub fn is_dependence(self) -> bool {
        !matches!(self, DepPrediction::None)
    }
}

/// A prediction plus an opaque hint the predictor wants echoed back in
/// [`LoadCommit`]/[`Violation`] (e.g. which history length provided it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictionOutcome {
    /// The dependence prediction.
    pub dep: DepPrediction,
    /// Opaque predictor-specific state (0 when unused).
    pub hint: u64,
}

impl PredictionOutcome {
    /// A "no dependence" outcome with no hint.
    pub fn none() -> PredictionOutcome {
        PredictionOutcome { dep: DepPrediction::None, hint: 0 }
    }
}

/// Read/write access counts of a predictor's tables, for the Cacti-style
/// energy model (paper Fig. 16 splits energy into reads and writes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Table reads (predictions and training lookups).
    pub reads: u64,
    /// Table writes (allocations and counter updates).
    pub writes: u64,
}

impl AccessStats {
    /// Accumulates another counter set.
    pub fn add(&mut self, other: AccessStats) {
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

/// Context for predicting a dispatching load.
#[derive(Clone, Copy)]
pub struct LoadQuery<'a> {
    /// PC of the load.
    pub pc: Pc,
    /// Unique, monotonically increasing token of this dynamic load.
    pub token: u64,
    /// Speculative decode-time divergent-branch history.
    pub history: &'a DivergentHistory,
    /// Estimated architectural sequence number of this dynamic instruction
    /// (exact on the correct path). Consumed by the oracle predictor.
    pub arch_seq: u64,
    /// Number of older stores currently in the store queue.
    pub older_stores: u32,
}

/// Context for a dispatching store.
#[derive(Clone, Copy)]
pub struct StoreQuery<'a> {
    /// PC of the store.
    pub pc: Pc,
    /// Unique token of this dynamic store.
    pub token: u64,
    /// Speculative decode-time divergent-branch history.
    pub history: &'a DivergentHistory,
}

/// A confirmed memory-order violation (the training event).
#[derive(Clone, Copy)]
pub struct Violation<'a> {
    /// PC of the violating load.
    pub load_pc: Pc,
    /// PC of the conflicting store (the youngest one, §III-A).
    pub store_pc: Pc,
    /// Store distance: stores older than the load but younger than the
    /// conflicting store.
    pub store_distance: u32,
    /// N: the number of divergent branches between the conflicting store
    /// and the load. Context-sensitive predictors collect N+1 history
    /// entries — the extra entry is the divergent branch previous to the
    /// store, whose destination disambiguates same-suffix paths
    /// (§IV-A2, Fig. 5).
    pub history_len: u32,
    /// Divergent-branch history at the training point (commit time under
    /// the paper's preferred policy).
    pub history: &'a DivergentHistory,
    /// Token of the load.
    pub load_token: u64,
    /// Token of the store.
    pub store_token: u64,
    /// What the predictor had said for this load at dispatch.
    pub prior: PredictionOutcome,
}

/// Commit-time feedback for a load.
#[derive(Clone, Copy)]
pub struct LoadCommit<'a> {
    /// PC of the load.
    pub pc: Pc,
    /// The prediction made at dispatch.
    pub prediction: PredictionOutcome,
    /// The actual store distance of the youngest conflicting older store
    /// still in flight at dispatch, if any.
    pub actual_distance: Option<u32>,
    /// True if the predicted wait targeted the correct store (the paper
    /// resets the confidence counter to maximum in this case, otherwise
    /// decrements it).
    pub waited_correct: bool,
    /// Commit-time divergent-branch history (identical content to the
    /// decode-time history for a committed load).
    pub history: &'a DivergentHistory,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_hashes_differ_and_are_stable() {
        let pc = 0x40_1234;
        assert_eq!(pc_index_hash(pc), pc_index_hash(pc));
        assert_ne!(pc_index_hash(pc), pc_tag_hash(pc));
        assert_ne!(pc_index_hash(pc), pc_index_hash(pc + 4));
    }

    #[test]
    fn prediction_classification() {
        assert!(!DepPrediction::None.is_dependence());
        assert!(DepPrediction::Distance(0).is_dependence());
        assert!(DepPrediction::StoreToken(3).is_dependence());
        assert!(DepPrediction::AllOlder.is_dependence());
    }

    #[test]
    fn access_stats_accumulate() {
        let mut a = AccessStats { reads: 1, writes: 2 };
        a.add(AccessStats { reads: 10, writes: 20 });
        assert_eq!(a, AccessStats { reads: 11, writes: 22 });
    }
}
