//! Degenerate reference predictors bounding the design space.

use crate::types::{AccessStats, DepPrediction, LoadQuery, PredictionOutcome, Violation};
use crate::MemDepPredictor;

/// Never predicts a dependence: every load issues speculatively and every
/// true conflict becomes a memory-order violation. This is the "no MDP"
/// lower bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlindSpeculation;

impl MemDepPredictor for BlindSpeculation {
    fn name(&self) -> &str {
        "blind-speculation"
    }

    fn predict_load(&mut self, _q: &LoadQuery<'_>) -> PredictionOutcome {
        PredictionOutcome::none()
    }

    fn train_violation(&mut self, _v: &Violation<'_>) {}

    fn storage_bits(&self) -> usize {
        0
    }

    fn access_stats(&self) -> AccessStats {
        AccessStats::default()
    }
}

/// Predicts a dependence on all older stores for every load: no violations
/// ever, maximal false dependencies. This is the in-order lower bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct TotalOrder;

impl MemDepPredictor for TotalOrder {
    fn name(&self) -> &str {
        "total-order"
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        if q.older_stores == 0 {
            PredictionOutcome::none()
        } else {
            PredictionOutcome { dep: DepPrediction::AllOlder, hint: 0 }
        }
    }

    fn train_violation(&mut self, _v: &Violation<'_>) {}

    fn storage_bits(&self) -> usize {
        0
    }

    fn access_stats(&self) -> AccessStats {
        AccessStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_branch::DivergentHistory;

    fn query(history: &DivergentHistory, older: u32) -> LoadQuery<'_> {
        LoadQuery { pc: 0x40_0000, token: 1, history, arch_seq: 0, older_stores: older }
    }

    #[test]
    fn blind_never_predicts() {
        let h = DivergentHistory::new();
        let mut p = BlindSpeculation;
        assert_eq!(p.predict_load(&query(&h, 5)).dep, DepPrediction::None);
        assert_eq!(p.storage_bits(), 0);
    }

    #[test]
    fn total_order_waits_when_stores_exist() {
        let h = DivergentHistory::new();
        let mut p = TotalOrder;
        assert_eq!(p.predict_load(&query(&h, 3)).dep, DepPrediction::AllOlder);
        assert_eq!(p.predict_load(&query(&h, 0)).dep, DepPrediction::None);
    }
}
