//! A generic set-associative prediction table with partial tags and LRU
//! replacement — the common substrate of the NoSQ predictor, MDP-TAGE-S and
//! PHAST (Table II all use "tag + payload + lru" caches).

/// Geometry of an associative prediction table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Partial tag width in bits (≤ 32).
    pub tag_bits: u32,
}

impl TableGeometry {
    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Bits needed for the LRU field per entry.
    pub fn lru_bits(&self) -> usize {
        usize::BITS as usize - (self.ways.max(2) - 1).leading_zeros() as usize
    }

    /// Index mask derived from `sets`.
    fn index_mask(&self) -> u64 {
        self.sets as u64 - 1
    }
}

#[derive(Clone, Debug)]
struct Slot<E> {
    tag: u32,
    lru: u32,
    payload: E,
}

/// Set-associative table mapping `(index, tag)` to a payload `E`.
///
/// The caller provides pre-hashed index and tag values; the table masks
/// them to its geometry. Lookups refresh LRU; insertion replaces the LRU
/// way unless the caller's `keep` predicate protects it.
///
/// Storage is one dense slab with `ways` contiguous slots per set — a
/// per-set `Vec` would put every probe two dependent pointer chases into
/// separately allocated sets, which dominates the wall clock of large
/// direct-mapped configurations like MDP-TAGE's 16K-entry layout. The
/// first `lens[set]` slots of a set are valid, in insertion order, so
/// probe order (and LRU tie-breaking) matches the nested-`Vec` layout
/// exactly.
#[derive(Clone, Debug)]
pub struct AssocTable<E> {
    geo: TableGeometry,
    slots: Vec<Option<Slot<E>>>,
    lens: Vec<u32>,
    lru_clock: u32,
}

impl<E> AssocTable<E> {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `ways` is zero, or
    /// `tag_bits > 32`.
    pub fn new(geo: TableGeometry) -> AssocTable<E> {
        assert!(geo.sets.is_power_of_two(), "sets must be a power of two");
        assert!(geo.ways >= 1, "need at least one way");
        assert!(geo.tag_bits <= 32, "tags are at most 32 bits");
        AssocTable {
            geo,
            slots: (0..geo.entries()).map(|_| None).collect(),
            lens: vec![0; geo.sets],
            lru_clock: 0,
        }
    }

    /// The table geometry.
    pub fn geometry(&self) -> TableGeometry {
        self.geo
    }

    #[inline]
    fn set_of(&self, index: u64) -> usize {
        (index & self.geo.index_mask()) as usize
    }

    #[inline]
    fn tag_of(&self, tag: u64) -> u32 {
        (tag & ((1u64 << self.geo.tag_bits) - 1)) as u32
    }

    /// The valid slots of a set, in insertion order.
    #[inline]
    fn ways(&self, set: usize) -> &[Option<Slot<E>>] {
        let base = set * self.geo.ways;
        &self.slots[base..base + self.lens[set] as usize]
    }

    /// The valid slots of a set, mutably, in insertion order.
    #[inline]
    fn ways_mut(&mut self, set: usize) -> &mut [Option<Slot<E>>] {
        let base = set * self.geo.ways;
        &mut self.slots[base..base + self.lens[set] as usize]
    }

    /// Looks up an entry, refreshing its LRU position on hit.
    pub fn lookup(&mut self, index: u64, tag: u64) -> Option<&mut E> {
        let set = self.set_of(index);
        let tag = self.tag_of(tag);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        self.ways_mut(set).iter_mut().flatten().find(|s| s.tag == tag).map(|s| {
            s.lru = clock;
            &mut s.payload
        })
    }

    /// Looks up an entry without disturbing LRU state.
    pub fn peek(&self, index: u64, tag: u64) -> Option<&E> {
        let set = self.set_of(index);
        let tag = self.tag_of(tag);
        self.ways(set).iter().flatten().find(|s| s.tag == tag).map(|s| &s.payload)
    }

    /// Inserts (or replaces) the entry for `(index, tag)`.
    ///
    /// On a conflict miss the least-recently-used way is evicted and
    /// returned.
    pub fn insert(&mut self, index: u64, tag: u64, payload: E) -> Option<E> {
        let set = self.set_of(index);
        let tag = self.tag_of(tag);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        if let Some(slot) = self.ways_mut(set).iter_mut().flatten().find(|s| s.tag == tag) {
            slot.lru = clock;
            return Some(std::mem::replace(&mut slot.payload, payload));
        }
        let len = self.lens[set] as usize;
        if len < self.geo.ways {
            self.slots[set * self.geo.ways + len] = Some(Slot { tag, lru: clock, payload });
            self.lens[set] += 1;
            return None;
        }
        let victim =
            self.ways_mut(set).iter_mut().flatten().min_by_key(|s| s.lru).expect("ways > 0");
        let old = std::mem::replace(victim, Slot { tag, lru: clock, payload });
        Some(old.payload)
    }

    /// True if the set for `index` has no free way left.
    pub fn set_full(&self, index: u64) -> bool {
        let set = self.set_of(index);
        self.lens[set] as usize >= self.geo.ways
    }

    /// The payload that [`insert`](Self::insert) would evict on a conflict
    /// miss at `index` (the LRU way), if the set is full.
    pub fn lru_victim_mut(&mut self, index: u64) -> Option<&mut E> {
        let set = self.set_of(index);
        if (self.lens[set] as usize) < self.geo.ways {
            return None;
        }
        self.ways_mut(set).iter_mut().flatten().min_by_key(|s| s.lru).map(|s| &mut s.payload)
    }

    /// Removes the entry for `(index, tag)` if present.
    pub fn remove(&mut self, index: u64, tag: u64) -> Option<E> {
        let set = self.set_of(index);
        let tag = self.tag_of(tag);
        let pos = self.ways(set).iter().flatten().position(|s| s.tag == tag)?;
        // Same shape as the old `Vec::swap_remove`: the last valid slot
        // moves into the vacated position.
        let base = set * self.geo.ways;
        let last = self.lens[set] as usize - 1;
        self.slots.swap(base + pos, base + last);
        self.lens[set] -= 1;
        self.slots[base + last].take().map(|s| s.payload)
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.lens.fill(0);
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Iterates over all valid payloads mutably (used for periodic resets).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut E> {
        let AssocTable { geo, slots, lens, .. } = self;
        slots
            .chunks_mut(geo.ways)
            .zip(lens.iter())
            .flat_map(|(chunk, &len)| chunk[..len as usize].iter_mut())
            .flatten()
            .map(|s| &mut s.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AssocTable<u32> {
        AssocTable::new(TableGeometry { sets: 4, ways: 2, tag_bits: 16 })
    }

    #[test]
    fn geometry_accounting() {
        let g = TableGeometry { sets: 128, ways: 4, tag_bits: 16 };
        assert_eq!(g.entries(), 512, "PHAST per-table entries (§IV-B)");
        assert_eq!(g.lru_bits(), 2);
    }

    #[test]
    fn insert_then_lookup() {
        let mut t = table();
        assert!(t.lookup(1, 0xaaaa).is_none());
        assert_eq!(t.insert(1, 0xaaaa, 7), None);
        assert_eq!(t.lookup(1, 0xaaaa), Some(&mut 7));
    }

    #[test]
    fn tags_are_masked() {
        let mut t = table();
        t.insert(0, 0x1_2345, 1); // tag truncated to 16 bits -> 0x2345
        assert!(t.peek(0, 0x2345).is_some(), "aliases at the partial tag width");
    }

    #[test]
    fn lru_eviction_prefers_stale() {
        let mut t = table();
        t.insert(2, 1, 10);
        t.insert(2, 2, 20);
        t.lookup(2, 1); // refresh tag 1
        let evicted = t.insert(2, 3, 30);
        assert_eq!(evicted, Some(20), "tag 2 was least recently used");
        assert!(t.peek(2, 1).is_some());
        assert!(t.peek(2, 3).is_some());
    }

    #[test]
    fn replace_same_tag_returns_old() {
        let mut t = table();
        t.insert(3, 9, 1);
        assert_eq!(t.insert(3, 9, 2), Some(1));
        assert_eq!(t.peek(3, 9), Some(&2));
        assert_eq!(t.occupancy(), 1, "same tag replaces, not duplicates");
    }

    #[test]
    fn remove_and_clear() {
        let mut t = table();
        t.insert(0, 1, 5);
        t.insert(1, 1, 6);
        assert_eq!(t.remove(0, 1), Some(5));
        assert_eq!(t.remove(0, 1), None);
        t.clear();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut t = table();
        t.insert(0, 7, 1);
        t.insert(1, 7, 2);
        assert_eq!(t.peek(0, 7), Some(&1));
        assert_eq!(t.peek(1, 7), Some(&2));
    }

    #[test]
    fn iter_mut_supports_global_updates() {
        let mut t = table();
        t.insert(0, 1, 1);
        t.insert(1, 2, 2);
        for v in t.iter_mut() {
            *v += 100;
        }
        assert_eq!(t.peek(0, 1), Some(&101));
        assert_eq!(t.peek(1, 2), Some(&102));
    }
}
