//! The ideal (oracle) memory dependence predictor.
//!
//! Built by pre-running the functional emulator over the same instruction
//! budget the timing simulation will execute. For every dynamic load the
//! oracle knows the *youngest* truly conflicting older store (§III-A: that
//! single store is all a predictor needs) and its store distance. The
//! timing core tags in-flight instructions with their architectural
//! sequence number, so the oracle answers exactly on the correct path; on
//! the wrong path its answers are meaningless, as they would be for any
//! predictor, and get squashed with the path.
//!
//! The build pass also measures the paper's Fig. 4 statistics: how many
//! loads take bytes from more than one older store, and how many of those
//! multi-store groups share a base register (the paper's proxy for
//! "execute in order").

use crate::types::{AccessStats, DepPrediction, LoadQuery, PredictionOutcome, Violation};
use crate::MemDepPredictor;
use phast_isa::{ranges_overlap, EmuError, Emulator, Op, Program, Reg};
use std::collections::VecDeque;
use std::sync::Arc;

/// Fig. 4 statistics gathered while building the oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MultiStoreStats {
    /// Total dynamic loads examined.
    pub loads: u64,
    /// Loads whose bytes are provided by one older in-window store.
    pub single_store_loads: u64,
    /// Loads whose bytes are provided by two or more older stores.
    pub multi_store_loads: u64,
    /// Multi-store loads whose providing stores all use the same base
    /// register (the paper's in-order proxy, ~70% on SPEC).
    pub multi_store_same_base: u64,
}

impl MultiStoreStats {
    /// Percentage of loads depending on multiple stores.
    pub fn multi_pct(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            100.0 * self.multi_store_loads as f64 / self.loads as f64
        }
    }

    /// Percentage of multi-store loads whose stores share a base register.
    pub fn same_base_pct(&self) -> f64 {
        if self.multi_store_loads == 0 {
            0.0
        } else {
            100.0 * self.multi_store_same_base as f64 / self.multi_store_loads as f64
        }
    }
}

#[derive(Clone, Copy)]
struct StoreRec {
    seq: u64,
    addr: u64,
    size: u64,
    base: Option<Reg>,
}

/// Precomputed perfect dependence information for one program execution.
#[derive(Clone, Debug)]
pub struct DepOracle {
    /// `(load arch-seq, (store distance, store arch-seq))` of the youngest
    /// conflicting older store within the tracking window, sorted by load
    /// sequence. Loads retire in ascending order during the build pass, so
    /// the vector is sorted by construction and [`lookup`](Self::lookup)
    /// is a dense binary search instead of a hash probe — the oracle is
    /// queried once per in-flight load on the simulator's fetch path.
    deps: Vec<(u64, (u32, u64))>,
    stats: MultiStoreStats,
}

impl DepOracle {
    /// Builds the oracle by running the emulator for up to `max_insts`
    /// instructions, tracking the youngest `window` stores (set this at
    /// least as large as the store buffer).
    ///
    /// # Errors
    ///
    /// Propagates emulator errors (e.g. a corrupt return target).
    pub fn build(program: &Program, max_insts: u64, window: usize) -> Result<DepOracle, EmuError> {
        let mut emu = Emulator::new(program);
        let mut recent: VecDeque<StoreRec> = VecDeque::with_capacity(window);
        let mut deps = Vec::new();
        let mut stats = MultiStoreStats::default();
        // Scratch for the per-load byte-provider analysis, reused across
        // the whole pass instead of allocated per load.
        let mut providers: Vec<(u64, Option<Reg>)> = Vec::new();

        while emu.retired() < max_insts {
            let Some((block, index)) = emu.cursor() else { break };
            // Only the memory-op kind and the base register are needed, so
            // borrow the instruction instead of cloning it (indirect jumps
            // carry a heap-allocated target list).
            let inst = program.inst(block, index);
            let (mem_size, src1) = match inst.op {
                Op::Store(size) => (Some((size.bytes(), true)), inst.src1),
                Op::Load(size) => (Some((size.bytes(), false)), inst.src1),
                _ => (None, None),
            };
            let Some(rec) = emu.step()? else { break };
            match mem_size {
                Some((size, true)) => {
                    if recent.len() == window {
                        recent.pop_front();
                    }
                    recent.push_back(StoreRec {
                        seq: rec.seq,
                        addr: rec.eff_addr.expect("store has address"),
                        size,
                        base: src1,
                    });
                }
                Some((bytes, false)) => {
                    stats.loads += 1;
                    let addr = rec.eff_addr.expect("load has address");
                    // Youngest conflicting store: first overlap scanning
                    // from the youngest end.
                    let mut youngest: Option<(u32, u64)> = None;
                    for (dist, st) in recent.iter().rev().enumerate() {
                        if ranges_overlap(addr, bytes, st.addr, st.size) {
                            youngest = Some((dist as u32, st.seq));
                            break;
                        }
                    }
                    if let Some(found) = youngest {
                        debug_assert!(
                            deps.last().is_none_or(|&(s, _)| s < rec.seq),
                            "loads retire in ascending sequence order"
                        );
                        deps.push((rec.seq, found));
                    }
                    // Byte-provider analysis for Fig. 4.
                    providers.clear();
                    for b in 0..bytes {
                        let byte_addr = addr.wrapping_add(b);
                        if let Some(st) = recent
                            .iter()
                            .rev()
                            .find(|st| ranges_overlap(byte_addr, 1, st.addr, st.size))
                        {
                            if !providers.iter().any(|&(seq, _)| seq == st.seq) {
                                providers.push((st.seq, st.base));
                            }
                        }
                    }
                    match providers.len() {
                        0 => {}
                        1 => stats.single_store_loads += 1,
                        _ => {
                            stats.multi_store_loads += 1;
                            let base0 = providers[0].1;
                            if providers.iter().all(|&(_, b)| b == base0 && base0.is_some()) {
                                stats.multi_store_same_base += 1;
                            }
                        }
                    }
                }
                None => {}
            }
        }
        Ok(DepOracle { deps, stats })
    }

    /// The dependence of the dynamic load with architectural sequence
    /// number `load_seq`: `(store distance, store seq)`.
    pub fn lookup(&self, load_seq: u64) -> Option<(u32, u64)> {
        self.deps
            .binary_search_by_key(&load_seq, |&(seq, _)| seq)
            .ok()
            .map(|i| self.deps[i].1)
    }

    /// Number of loads with at least one in-window dependence.
    pub fn dependent_loads(&self) -> usize {
        self.deps.len()
    }

    /// Fig. 4 statistics.
    pub fn multi_store_stats(&self) -> MultiStoreStats {
        self.stats
    }
}

/// The ideal predictor: answers every load query from a [`DepOracle`].
///
/// A dependence is reported only when the conflicting store is still among
/// the load's older in-flight stores; otherwise the data is already in the
/// cache (or forwardable) and no stall is needed.
///
/// The oracle is shared via [`Arc`] (not `Rc`) so predictors can be built
/// and run on worker threads — the sweep engine in `phast-experiments`
/// fans (workload, predictor) runs across a thread pool.
#[derive(Clone)]
pub struct OraclePredictor {
    oracle: Arc<DepOracle>,
}

impl OraclePredictor {
    /// Creates an ideal predictor over a prebuilt oracle.
    pub fn new(oracle: Arc<DepOracle>) -> OraclePredictor {
        OraclePredictor { oracle }
    }
}

impl MemDepPredictor for OraclePredictor {
    fn name(&self) -> &str {
        "ideal"
    }

    fn predict_load(&mut self, q: &LoadQuery<'_>) -> PredictionOutcome {
        match self.oracle.lookup(q.arch_seq) {
            Some((dist, _)) if dist < q.older_stores => {
                PredictionOutcome { dep: DepPrediction::Distance(dist), hint: 0 }
            }
            _ => PredictionOutcome::none(),
        }
    }

    fn train_violation(&mut self, _v: &Violation<'_>) {}

    fn storage_bits(&self) -> usize {
        0
    }

    fn access_stats(&self) -> AccessStats {
        AccessStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_isa::{MemSize, ProgramBuilder};

    /// store [r1], r2 ; load r3, [r1]  — distance 0 dependence.
    fn dep_program() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e)
            .li(Reg(1), 0x1000)
            .li(Reg(2), 42)
            .store(Reg(1), 0, Reg(2), MemSize::B8)
            .load(Reg(3), Reg(1), 0, MemSize::B8)
            .halt();
        b.set_entry(e);
        b.build().unwrap()
    }

    #[test]
    fn finds_distance_zero_dependence() {
        let p = dep_program();
        let o = DepOracle::build(&p, 100, 128).unwrap();
        assert_eq!(o.dependent_loads(), 1);
        // The load is dynamic instruction 3.
        assert_eq!(o.lookup(3), Some((0, 2)));
    }

    #[test]
    fn distance_counts_intervening_stores() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e)
            .li(Reg(1), 0x1000)
            .li(Reg(2), 1)
            .store(Reg(1), 0, Reg(2), MemSize::B8) // conflicting (seq 2)
            .store(Reg(1), 64, Reg(2), MemSize::B8) // unrelated
            .store(Reg(1), 128, Reg(2), MemSize::B8) // unrelated
            .load(Reg(3), Reg(1), 0, MemSize::B8) // seq 5
            .halt();
        b.set_entry(e);
        let p = b.build().unwrap();
        let o = DepOracle::build(&p, 100, 128).unwrap();
        assert_eq!(o.lookup(5), Some((2, 2)), "two younger stores in between");
    }

    #[test]
    fn youngest_store_wins() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e)
            .li(Reg(1), 0x1000)
            .li(Reg(2), 1)
            .store(Reg(1), 0, Reg(2), MemSize::B8) // older store, same addr
            .store(Reg(1), 0, Reg(2), MemSize::B8) // youngest conflicting
            .load(Reg(3), Reg(1), 0, MemSize::B8)
            .halt();
        b.set_entry(e);
        let p = b.build().unwrap();
        let o = DepOracle::build(&p, 100, 128).unwrap();
        assert_eq!(o.lookup(4), Some((0, 3)), "§III-A: only the youngest matters");
    }

    #[test]
    fn multi_store_detection() {
        // Two 4-byte stores composing an 8-byte load (the 525.x264 pattern).
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e)
            .li(Reg(1), 0x1000)
            .li(Reg(2), 7)
            .store(Reg(1), 0, Reg(2), MemSize::B4)
            .store(Reg(1), 4, Reg(2), MemSize::B4)
            .load(Reg(3), Reg(1), 0, MemSize::B8)
            .halt();
        b.set_entry(e);
        let p = b.build().unwrap();
        let o = DepOracle::build(&p, 100, 128).unwrap();
        let s = o.multi_store_stats();
        assert_eq!(s.multi_store_loads, 1);
        assert_eq!(s.multi_store_same_base, 1, "both stores use r1 as base");
        assert!(s.multi_pct() > 0.0);
    }

    #[test]
    fn oracle_predictor_respects_flight_window() {
        let p = dep_program();
        let o = Arc::new(DepOracle::build(&p, 100, 128).unwrap());
        let mut pred = OraclePredictor::new(o);
        let h = phast_branch::DivergentHistory::new();
        let q = LoadQuery { pc: 0, token: 0, history: &h, arch_seq: 3, older_stores: 1 };
        assert_eq!(pred.predict_load(&q).dep, DepPrediction::Distance(0));
        // If the store already left the SQ, no dependence is reported.
        let q2 = LoadQuery { pc: 0, token: 0, history: &h, arch_seq: 3, older_stores: 0 };
        assert_eq!(pred.predict_load(&q2).dep, DepPrediction::None);
    }

    #[test]
    fn window_limits_visibility() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let mut c = b.at(e);
        c.li(Reg(1), 0x1000).li(Reg(2), 1);
        c.store(Reg(1), 0, Reg(2), MemSize::B8); // seq 2, conflicting
        for i in 0..4 {
            c.store(Reg(1), 64 * (i + 1), Reg(2), MemSize::B8);
        }
        c.load(Reg(3), Reg(1), 0, MemSize::B8); // seq 7
        c.halt();
        b.set_entry(e);
        let p = b.build().unwrap();
        let o = DepOracle::build(&p, 100, 2).unwrap();
        assert_eq!(o.lookup(7), None, "conflicting store fell out of the window");
    }
}
