//! Property-based tests for the shared associative table and the oracle.

use phast_mdp::{AssocTable, TableGeometry};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64, u32),
    Lookup(u64, u64),
    Remove(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..16, 0u64..8, any::<u32>()).prop_map(|(i, t, v)| Op::Insert(i, t, v)),
        (0u64..16, 0u64..8).prop_map(|(i, t)| Op::Lookup(i, t)),
        (0u64..16, 0u64..8).prop_map(|(i, t)| Op::Remove(i, t)),
    ]
}

proptest! {
    /// Model-based test: with at most `ways` distinct tags per set, the
    /// table behaves exactly like a hash map (no capacity evictions can
    /// occur, so contents must match a reference model).
    #[test]
    fn table_matches_hashmap_when_within_capacity(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let geo = TableGeometry { sets: 16, ways: 8, tag_bits: 8 };
        let mut table: AssocTable<u32> = AssocTable::new(geo);
        let mut model: HashMap<(u64, u64), u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(i, t, v) => {
                    table.insert(i, t, v);
                    model.insert((i % 16, t % 256), v);
                }
                Op::Lookup(i, t) => {
                    let got = table.lookup(i, t).copied();
                    let want = model.get(&(i % 16, t % 256)).copied();
                    prop_assert_eq!(got, want);
                }
                Op::Remove(i, t) => {
                    let got = table.remove(i, t);
                    let want = model.remove(&(i % 16, t % 256));
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(table.occupancy(), model.len());
    }

    /// Occupancy never exceeds the structural capacity, whatever happens.
    #[test]
    fn occupancy_is_bounded(ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u32>()), 0..500)) {
        let geo = TableGeometry { sets: 8, ways: 2, tag_bits: 16 };
        let mut table: AssocTable<u32> = AssocTable::new(geo);
        for (i, t, v) in ops {
            table.insert(i, t, v);
            prop_assert!(table.occupancy() <= geo.entries());
        }
    }

    /// The most recently inserted entry is always findable (LRU never
    /// evicts the newest entry).
    #[test]
    fn newest_insert_survives(ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u32>()), 1..200)) {
        let geo = TableGeometry { sets: 4, ways: 2, tag_bits: 12 };
        let mut table: AssocTable<u32> = AssocTable::new(geo);
        for (i, t, v) in &ops {
            table.insert(*i, *t, *v);
            prop_assert_eq!(table.peek(*i, *t), Some(v));
        }
    }
}

mod oracle_props {
    use super::*;
    use phast_isa::{MemSize, ProgramBuilder, Reg};
    use phast_mdp::DepOracle;

    proptest! {
        /// For a straight line of stores followed by one load at a random
        /// position in the store stream, the oracle's distance is exactly
        /// the number of younger stores after the matching one.
        #[test]
        fn oracle_distance_is_exact(n_stores in 1usize..20, target in 0usize..20) {
            let target = target % n_stores;
            let mut b = ProgramBuilder::new();
            let e = b.block();
            let mut c = b.at(e);
            c.li(Reg(1), 0x1000).li(Reg(2), 5);
            for i in 0..n_stores {
                c.store(Reg(1), 64 * i as i64, Reg(2), MemSize::B8);
            }
            c.load(Reg(3), Reg(1), 64 * target as i64, MemSize::B8).halt();
            b.set_entry(e);
            let p = b.build().unwrap();
            let oracle = DepOracle::build(&p, 1000, 64).unwrap();
            let load_seq = 2 + n_stores as u64;
            let (dist, store_seq) = oracle.lookup(load_seq).expect("dependence exists");
            prop_assert_eq!(dist as usize, n_stores - 1 - target);
            prop_assert_eq!(store_seq, 2 + target as u64);
        }
    }
}
