//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member provides the (small) `rand` API subset the workspace actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen`] for primitive
//! types. The generator is xoshiro256++ seeded through SplitMix64 — the
//! same construction the real `SmallRng` uses on 64-bit targets — so the
//! statistical quality matches even though the exact streams differ.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose full state is derived from `seed` via
    /// SplitMix64 (never all-zero).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `low < high` is the caller's
    /// responsibility (checked by `gen_range`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Debiased uniform draw from `[0, span)` (Lemire's method).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with an empty range");
        T::sample_in(self, range.start, range.end)
    }

    /// Uniform draw over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 random mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let s = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw reaches every bucket");
    }

    #[test]
    fn bools_are_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
