//! Crash-resilience contract of the journaled sweep: kill a sweep halfway
//! (simulated by truncating `journal.jsonl` to a prefix plus a torn final
//! line), resume it, and the merged `BENCH_*.json` must be byte-identical
//! to the uninterrupted artifact modulo wall-clock and attempt metadata.
//! Corruption anywhere *inside* the journal, or a fingerprint from a
//! different sweep shape, must refuse the resume fail-closed.

use phast_experiments::{
    ArtifactError, Budget, Journal, JournalError, PredictorKind, Sweep, SweepArtifact,
};
use phast_ooo::CoreConfig;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn budget() -> Budget {
    Budget { insts: 5_000, workload_iters: 30_000, max_workloads: Some(3) }
}

const FINGERPRINT: &str = "kill-and-resume test sweep";

/// A fresh scratch directory under the target-adjacent temp root; unique
/// per call so parallel test binaries cannot collide.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("phast-kill-and-resume-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the reference grid through `sweep` and writes `BENCH_grid.json`
/// into `dir`, returning the artifact text.
fn run_grid_to(sweep: &Sweep, dir: &Path) -> String {
    let budget = budget();
    let kinds = [PredictorKind::Blind, PredictorKind::StoreSets];
    sweep.run_grid(&kinds, &CoreConfig::alder_lake(), &budget);
    let artifact = sweep.artifact("grid", &budget, Duration::ZERO);
    let path = artifact.write_to(dir).expect("artifact written");
    SweepArtifact::verify_file(&path).expect("fresh artifact passes its own digest");
    std::fs::read_to_string(&path).expect("artifact readable")
}

/// Strips the fields where an interrupted-and-resumed sweep may legally
/// differ from an uninterrupted one: wall-clock, derived throughput, and
/// attempt metadata (and the digest, which covers them).
fn normalized(artifact: &str) -> String {
    artifact
        .lines()
        .filter(|l| {
            !["\"wall_s\"", "\"mips\"", "\"simulated_mips\"", "\"attempts\"", "\"digest\""]
                .iter()
                .any(|f| l.contains(f))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn killed_and_resumed_sweep_reproduces_the_artifact() {
    // Uninterrupted reference sweep, journaled.
    let ref_dir = scratch("ref");
    let journal_path = ref_dir.join("journal.jsonl");
    let journal = Journal::create(&journal_path, FINGERPRINT).expect("journal created");
    let sweep = Sweep::serial().with_journal(journal.scope("grid"));
    let reference = run_grid_to(&sweep, &ref_dir);

    // Simulate a mid-sweep kill: keep the header, every start line, and
    // the first half of the done lines — then tear the final line in two,
    // as a crash mid-write would.
    let text = std::fs::read_to_string(&journal_path).expect("journal readable");
    let done_total = text.lines().filter(|l| l.contains("\"kind\":\"done\"")).count();
    assert_eq!(done_total, 2 * 3, "one done line per grid cell");
    let mut kept = String::new();
    let mut done_kept = 0;
    for line in text.lines() {
        if line.contains("\"kind\":\"done\"") {
            done_kept += 1;
            if done_kept > done_total / 2 {
                // The torn final line: half a record, no newline, and
                // nothing after it — the process died here.
                kept.push_str(&line[..line.len() / 2]);
                break;
            }
        }
        kept.push_str(line);
        kept.push('\n');
    }
    let cut_dir = scratch("cut");
    let cut_path = cut_dir.join("journal.jsonl");
    std::fs::write(&cut_path, &kept).expect("truncated journal written");

    // Resume: half the cells replay from the journal, half re-execute.
    let resumed = Journal::resume(&cut_path, FINGERPRINT).expect("torn final line is tolerated");
    assert_eq!(resumed.completed_runs(), done_total / 2, "exactly the kept cells replay");
    let sweep = Sweep::serial().with_journal(resumed.scope("grid"));
    let merged = run_grid_to(&sweep, &cut_dir);

    assert_eq!(
        normalized(&reference),
        normalized(&merged),
        "resumed artifact must match the uninterrupted sweep byte for byte \
         modulo wall-clock/attempt metadata"
    );
}

#[test]
fn interior_journal_corruption_refuses_the_resume() {
    let dir = scratch("corrupt");
    let journal_path = dir.join("journal.jsonl");
    let journal = Journal::create(&journal_path, FINGERPRINT).expect("journal created");
    let sweep = Sweep::serial().with_journal(journal.scope("grid"));
    run_grid_to(&sweep, &dir);

    // Flip one digit inside a *non-final* record: the recomputed record
    // digest no longer matches and the journal is rejected as corrupt —
    // only a torn FINAL line is recoverable.
    let text = std::fs::read_to_string(&journal_path).expect("journal readable");
    let corrupted = text.replacen("\"cycles\":", "\"cycles\":9", 1);
    assert_ne!(text, corrupted, "a done record was altered");
    std::fs::write(&journal_path, corrupted).expect("corrupted journal written");

    match Journal::resume(&journal_path, FINGERPRINT) {
        Err(JournalError::Corrupt { line, reason }) => {
            assert!(line >= 2, "corruption is past the header, got line {line}");
            assert!(reason.contains("digest"), "names the digest mismatch: {reason}");
        }
        other => panic!("corrupted journal must be refused, got {other:?}"),
    }
}

#[test]
fn foreign_fingerprint_refuses_the_resume() {
    let dir = scratch("fingerprint");
    let journal_path = dir.join("journal.jsonl");
    Journal::create(&journal_path, FINGERPRINT).expect("journal created");

    match Journal::resume(&journal_path, "a different sweep shape") {
        Err(JournalError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, "a different sweep shape");
            assert_eq!(found, FINGERPRINT);
        }
        other => panic!("foreign journal must be refused, got {other:?}"),
    }
}

#[test]
fn artifact_digest_catches_on_disk_corruption() {
    let dir = scratch("digest");
    let sweep = Sweep::serial();
    let text = run_grid_to(&sweep, &dir);
    let path = dir.join("BENCH_grid.json");

    // A single injected digit anywhere in the payload — still perfectly
    // well-formed JSON — fails verification.
    let corrupted = text.replacen("\"cycles\": ", "\"cycles\": 9", 1);
    assert_ne!(text, corrupted);
    std::fs::write(&path, corrupted).expect("corrupted artifact written");
    match SweepArtifact::verify_file(&path) {
        Err(ArtifactError::DigestMismatch { computed, stored }) => {
            assert_ne!(computed, stored);
        }
        other => panic!("corrupted artifact must fail verification, got {other:?}"),
    }

    // Stripping the digest entirely is just as fatal — absence of
    // evidence is treated as corruption, fail-closed.
    let digestless: String =
        text.lines().filter(|l| !l.contains("\"digest\"")).collect::<Vec<_>>().join("\n");
    std::fs::write(&path, fix_trailing_comma(&digestless)).expect("digestless artifact written");
    assert!(
        SweepArtifact::verify_file(&path).is_err(),
        "artifact without a digest must not verify"
    );
}

/// Removing the last `"digest"` line leaves a trailing comma on the
/// previous line; patch it so the *only* defect is the missing digest.
fn fix_trailing_comma(text: &str) -> String {
    match text.rfind("],\n}") {
        Some(i) => format!("{}]\n{}", &text[..i], &text[i + 3..]),
        None => text.to_string(),
    }
}
