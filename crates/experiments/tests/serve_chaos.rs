//! End-to-end chaos tests for the `phast-serve` daemon: scripted worker
//! kills and heartbeat loss on a live TCP server, torn client
//! connections, graceful drain, and the journal's write-ahead record of
//! reclaimed-then-retried attempts.
//!
//! The acceptance bar (mirrored in the CI `service` job): a chaotic
//! daemon sweep's artifact is byte-identical — modulo wall-clock and
//! attempt metadata — to an unperturbed serial run's, and a graceful
//! drain loses no journaled work.

use phast_experiments::serve::{
    ChaosPlan, Client, Event, LeaseConfig, Request, SchedConfig, Scheduler, ServeConfig, Server,
    SweepSpec,
};
use phast_experiments::{exit_code, Budget, Journal, PredictorKind, Sweep, SweepArtifact};
use phast_ooo::{CheckConfig, CoreConfig, FaultPlan};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A scheduler tuned for tests: fast housekeeping, a heartbeat window
/// short enough that scripted stalls reclaim within milliseconds but
/// long enough that a genuinely-progressing debug-mode simulation (which
/// ticks every 2048 cycles) never trips it spuriously.
fn fast_sched(workers: usize, chaos: ChaosPlan) -> SchedConfig {
    SchedConfig {
        workers,
        lanes: 1,
        lease: LeaseConfig {
            heartbeat: Duration::from_millis(250),
            max_age: Duration::from_secs(120),
        },
        max_attempts: 3,
        housekeep_every: Duration::from_millis(5),
        chaos,
    }
}

/// Strips the per-execution metadata the resilience docs carve out of
/// byte-identity: wall-clock, throughput, attempts, worker count, git
/// state, and the digest (which covers them).
fn normalize(body: &str) -> String {
    body.lines()
        .filter(|l| {
            ![
                "\"wall_s\"",
                "\"mips\"",
                "\"simulated_mips\"",
                "\"attempts\"",
                "\"digest\"",
                "\"git\"",
                "\"workers\"",
            ]
            .iter()
            .any(|k| l.trim_start().starts_with(k))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phast-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn chaotic_daemon_sweep_matches_an_unperturbed_serial_reference() {
    // Scripted fault: kill whichever worker picks up job 1's first
    // attempt — the job is reclaimed from the dead worker's lease and
    // retried, and the worker is respawned. (Heartbeat-loss chaos needs
    // a cell that outlasts the heartbeat window; that path is covered by
    // `reclaimed_job_journals_both_attempts_with_distinct_reseeds`.)
    let chaos = ChaosPlan { kill_at: Some((1, 1)), ..ChaosPlan::none() };
    let server = Server::start(ServeConfig {
        sched: fast_sched(3, chaos),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.local_addr().to_string();

    let mut client = Client::connect_with_patience(&addr, Duration::from_secs(5)).expect("connects");
    match client.submit_watch("chaotic", &["blind", "store-sets"], "bench").expect("submits") {
        Event::Accepted { cells, replayed, .. } => {
            assert_eq!(cells, 4);
            assert_eq!(replayed, 0);
        }
        other => panic!("expected acceptance, got {other:?}"),
    }
    let events = client.stream_to_done().expect("streams to done");
    let Some(Event::Done { digest, runs, degraded, exit, .. }) = events.last() else {
        panic!("missing done event: {events:?}");
    };
    assert_eq!(*runs, 4);
    assert_eq!(*degraded, 0, "every chaos-hit cell recovered via retry");
    assert_eq!(*exit, exit_code::OK as u64);
    let body = client.fetch(digest).expect("artifact served by digest");
    SweepArtifact::verify_json(&body).expect("served artifact verifies");

    // The lease machinery actually fired: the scripted kill was
    // reclaimed (spurious reclaims on a loaded machine only add to it).
    match client.request(&Request::Status).expect("status") {
        Event::Status(s) => {
            assert!(s.reclaimed >= 1, "the scripted kill was reclaimed (got {})", s.reclaimed);
            assert_eq!(s.lost, 0, "no job exhausted its attempt budget");
        }
        other => panic!("expected status, got {other:?}"),
    }

    // The unperturbed serial reference: same grid through the batch
    // harness, one worker, no service layer at all.
    let kinds = vec![PredictorKind::Blind, PredictorKind::StoreSets];
    let budget = Budget::bench();
    let serial = Sweep::serial();
    let t = Instant::now();
    serial.run_grid(&kinds, &CoreConfig::alder_lake(), &budget);
    let reference = serial.artifact("chaotic", &budget, t.elapsed()).to_json();
    assert_eq!(
        normalize(&body),
        normalize(&reference),
        "chaotic daemon artifact diverges from the unperturbed serial reference"
    );

    server.shutdown();
    assert_eq!(server.join(), exit_code::OK);
}

#[test]
fn torn_watch_client_downgrades_to_fire_and_forget() {
    let server = Server::start(ServeConfig {
        sched: fast_sched(2, ChaosPlan::none()),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.local_addr().to_string();

    let mut watcher =
        Client::connect_with_patience(&addr, Duration::from_secs(5)).expect("connects");
    match watcher.submit_watch("torn", &["blind"], "bench").expect("submits") {
        Event::Accepted { cells, .. } => assert_eq!(cells, 2),
        other => panic!("expected acceptance, got {other:?}"),
    }
    // Tear the connection mid-stream (a client dying while watching).
    drop(watcher.into_stream());

    // The sweep must finish anyway; a second client finds the artifact
    // in the index and fetches it by digest.
    let mut poller =
        Client::connect_with_patience(&addr, Duration::from_secs(5)).expect("connects");
    let deadline = Instant::now() + Duration::from_secs(120);
    let digest = loop {
        match poller.request(&Request::Status).expect("status") {
            Event::Status(s) => {
                if let Some((_, digest)) = s.artifacts.iter().find(|(id, _)| id == "torn") {
                    break digest.clone();
                }
            }
            other => panic!("expected status, got {other:?}"),
        }
        assert!(Instant::now() < deadline, "torn sweep never produced its artifact");
        std::thread::sleep(Duration::from_millis(20));
    };
    let body = poller.fetch(&digest).expect("artifact served after the client died");
    SweepArtifact::verify_json(&body).expect("served artifact verifies");
    assert!(body.contains("\"id\": \"torn\""), "fetched the right artifact");

    server.shutdown();
    assert_eq!(server.join(), exit_code::OK);
}

#[test]
fn graceful_drain_loses_no_journaled_work() {
    let dir = scratch("drain");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let journal_path = dir.join("journal.jsonl");
    let journal = Journal::create(&journal_path, "phast-serve-v1").expect("journal");
    let server = Server::start(ServeConfig {
        sched: fast_sched(2, ChaosPlan::none()),
        json_dir: Some(dir.clone()),
        journal: Some(journal),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.local_addr().to_string();

    // Fire-and-forget submission, then an immediate drain request — the
    // SIGTERM path. The admitted sweep must finish, journal every cell,
    // and flush its artifact before the process would exit.
    let mut client = Client::connect_with_patience(&addr, Duration::from_secs(5)).expect("connects");
    match client
        .request(&Request::Submit {
            id: "drain".to_string(),
            kinds: vec!["blind".to_string()],
            budget: "bench".to_string(),
            watch: false,
        })
        .expect("submits")
    {
        Event::Accepted { cells, .. } => assert_eq!(cells, 2),
        other => panic!("expected acceptance, got {other:?}"),
    }
    server.shutdown();
    assert_eq!(server.join(), exit_code::OK, "drain finished the in-flight sweep cleanly");

    // Nothing was lost: the artifact is on disk, sealed and intact, and
    // the journal resumes with every cell complete.
    let artifact_path = dir.join("BENCH_drain.json");
    SweepArtifact::verify_file(&artifact_path).expect("flushed artifact verifies");
    let resumed = Journal::resume(&journal_path, "phast-serve-v1").expect("journal resumes");
    assert_eq!(resumed.completed_runs(), 2, "every admitted cell was journaled as done");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reclaimed_job_journals_both_attempts_with_distinct_reseeds() {
    let dir = scratch("reseed");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let journal_path = dir.join("journal.jsonl");
    let journal = Journal::create(&journal_path, "phast-serve-v1").expect("journal");

    // Drop job 1's heartbeat on its first attempt: the attempt *runs*
    // (journaling its write-ahead `start`), but the lease table watches
    // a decoy progress cell, reclaims after the heartbeat window, and
    // requeues — the retry journals a second `start`. The cell's budget
    // is sized to comfortably outlast the window in a debug build, and
    // the reclaimed attempt stops at its next cancellation poll. A
    // zero-rate fault plan is armed so the per-attempt reseed policy has
    // a seed to perturb without injecting any actual faults (the
    // simulation stays deterministic).
    let plan = FaultPlan {
        seed: 77,
        drop_prediction: 0,
        flip_distance: 0,
        spurious_violation: 0,
        corrupt_training: 0,
    };
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig { faults: Some(plan), ..CheckConfig::default() };
    let chaos = ChaosPlan { stall_at: Some((1, 1)), ..ChaosPlan::none() };
    let sched = Scheduler::start(SchedConfig {
        workers: 2,
        lanes: 1,
        lease: LeaseConfig {
            heartbeat: Duration::from_millis(300),
            max_age: Duration::from_secs(120),
        },
        max_attempts: 5,
        housekeep_every: Duration::from_millis(5),
        chaos,
    });
    let spec = SweepSpec {
        id: "retry".to_string(),
        kinds: vec![PredictorKind::Blind],
        budget: Budget { insts: 500_000, workload_iters: 30_000, max_workloads: Some(1) },
        cfg,
        run_timeout: None,
    };
    let run = phast_experiments::serve::submit_sweep(spec, &sched, Some(journal.scope("retry")))
        .expect("admitted");
    let outcome = run.finish(sched.workers(), None);
    assert_eq!(outcome.exit, exit_code::OK, "degraded: {:?}", outcome.degraded);
    assert!(
        outcome.artifact.runs[0].attempts >= 2,
        "the stalled cell was retried (attempts = {})",
        outcome.artifact.runs[0].attempts
    );
    sched.drain();
    drop(journal);

    // The journal holds the write-ahead truth: two `start` lines for the
    // killed cell — attempts 1 and 2, with *different* fault seeds (the
    // retry explores a different fault schedule) — and exactly one
    // `done`.
    let text = std::fs::read_to_string(&journal_path).expect("journal readable");
    let field = |line: &str, key: &str| -> Option<String> {
        let tail = line.split(&format!("\"{key}\":")).nth(1)?;
        Some(tail.trim_start().trim_start_matches('"').chars().take_while(|c| c.is_ascii_digit()).collect())
    };
    let starts: Vec<(String, u64, u64)> = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"start\""))
        .map(|l| {
            let key = l.split("\"key\":\"").nth(1).and_then(|t| t.split('"').next()).unwrap();
            let attempt: u64 = field(l, "attempt").unwrap().parse().unwrap();
            let seed: u64 = field(l, "seed").unwrap().parse().unwrap();
            (key.to_string(), attempt, seed)
        })
        .collect();
    let retried_key = starts
        .iter()
        .find(|(_, attempt, _)| *attempt == 2)
        .map(|(k, _, _)| k.clone())
        .expect("one cell recorded a second attempt");
    let attempts: Vec<&(String, u64, u64)> =
        starts.iter().filter(|(k, _, _)| *k == retried_key).collect();
    // A loaded machine can add spurious reclaims (and thus attempts)
    // beyond the scripted one; the write-ahead contract is that *every*
    // attempt appears, in order, each with its own reseed.
    assert!(attempts.len() >= 2, "both attempts journaled write-ahead");
    for (i, (_, attempt, _)) in attempts.iter().enumerate() {
        assert_eq!(*attempt, i as u64 + 1, "attempts journal in order");
    }
    assert_eq!(attempts[0].2, 77, "attempt 1 runs the configured fault seed");
    assert_ne!(attempts[0].2, attempts[1].2, "the retry reseeds the fault plan");
    let mut seeds: Vec<u64> = attempts.iter().map(|(_, _, s)| *s).collect();
    seeds.dedup();
    assert_eq!(seeds.len(), attempts.len(), "every attempt draws a distinct fault seed");
    let done_lines = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"done\"") && l.contains(&retried_key))
        .count();
    assert_eq!(done_lines, 1, "only the delivered attempt journals done");
    let _ = std::fs::remove_dir_all(&dir);
}
