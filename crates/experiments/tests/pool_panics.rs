//! Panic isolation and watchdog contract of the sweep engine: a job that
//! panics or hangs degrades *its own* cell — with kind `"panicked"` or
//! `"deadline"` in the registry — and every other cell of the matrix
//! still completes with results identical to an undisturbed sweep.

use phast_experiments::harness::simulate_run;
use phast_experiments::{exit_code, Budget, PredictorKind, RunResult, Sweep};
use phast_ooo::CoreConfig;
use std::time::Duration;

fn budget() -> Budget {
    Budget { insts: 5_000, workload_iters: 30_000, max_workloads: Some(3) }
}

/// One clean full-detail run of workload `w` under the Blind predictor.
fn clean_run(w: usize, budget: &Budget) -> RunResult {
    let workload = budget.workloads()[w];
    let cfg = CoreConfig::alder_lake();
    let program = workload.build(budget.workload_iters);
    let mut predictor = PredictorKind::Blind.build(&program, budget.insts);
    simulate_run(workload.name, "blind", &program, &cfg, predictor.as_mut(), budget.insts)
}

#[test]
fn panicking_jobs_never_abort_the_sweep() {
    let budget = budget();
    let items: Vec<usize> = (0..6).collect();
    let exploding = |i: usize| i % 3 == 1;

    for workers in [1, 4] {
        let sweep = Sweep::with_workers(workers);
        let runs = sweep.run_jobs(
            &items,
            |_, &i| (format!("job{i}"), "blind".to_string()),
            |_, &i| {
                assert!(!exploding(i), "job {i} exploded");
                clean_run(i % 3, &budget)
            },
        );
        assert_eq!(runs.len(), items.len(), "every slot filled at {workers} workers");

        for (i, run) in runs.iter().enumerate() {
            if exploding(i) {
                let failure = run.failure.as_ref().expect("panicking job is degraded");
                assert_eq!(failure.kind(), "panicked");
                assert!(
                    failure.to_string().contains(&format!("job {i} exploded")),
                    "payload survives: {failure}"
                );
                assert_eq!(run.workload, format!("job{i}"));
            } else {
                // Clean neighbours are bit-identical to an undisturbed run.
                let reference = clean_run(i % 3, &budget);
                assert!(run.failure.is_none(), "clean job {i} unaffected");
                assert_eq!(run.stats.ipc().to_bits(), reference.stats.ipc().to_bits());
                assert_eq!(run.stats.cycles, reference.stats.cycles);
                assert_eq!(run.stats.committed, reference.stats.committed);
            }
        }

        let degraded = sweep.take_degraded();
        assert_eq!(degraded.len(), 2, "exactly the exploding jobs degrade");
        for d in &degraded {
            assert!(d.contains("panicked"), "registry names the panic: {d}");
        }
    }
}

#[test]
fn expired_watchdog_degrades_the_run_as_deadline() {
    let budget = budget();
    let workload = budget.workloads()[0];
    let sweep = Sweep::serial().with_run_timeout(Duration::ZERO);

    let run = sweep.run_one(&workload, &PredictorKind::Blind, &CoreConfig::alder_lake(), &budget);
    let failure = run.failure.as_ref().expect("zero budget expires immediately");
    assert_eq!(failure.kind(), "deadline");
    assert_eq!(sweep.deadline_count(), 1, "watchdog expiry is counted");
    assert_eq!(sweep.take_degraded().len(), 1);

    // The process-level taxonomy: deadline outranks plain degradation.
    assert_eq!(exit_code::for_outcome(true, true), exit_code::DEADLINE);
    assert_eq!(exit_code::for_outcome(true, false), exit_code::DEGRADED);
    assert_eq!(exit_code::for_outcome(false, false), exit_code::OK);
}

#[test]
fn retry_policy_caps_attempts_and_keeps_clean_runs_single_shot() {
    let budget = budget();
    let workload = budget.workloads()[0];

    // A clean run never burns extra attempts, however many are allowed.
    let sweep = Sweep::serial().with_retries(3);
    let run = sweep.run_one(&workload, &PredictorKind::Blind, &CoreConfig::alder_lake(), &budget);
    assert!(run.failure.is_none());
    assert_eq!(run.attempts, 1, "first attempt succeeded, no retries spent");

    // A deterministically failing run exhausts exactly the cap.
    let mut poisoned = CoreConfig::alder_lake();
    poisoned.deadlock_cycles = 2;
    let sweep = Sweep::serial().with_retries(2);
    let run = sweep.run_one(&workload, &PredictorKind::Blind, &poisoned, &budget);
    assert!(run.failure.is_some(), "poisoned config still fails");
    assert_eq!(run.attempts, 2, "capped at --retries attempts");
    assert_eq!(sweep.take_degraded().len(), 1, "recorded once, not once per attempt");
}
