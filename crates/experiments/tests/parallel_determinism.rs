//! Determinism contract of the parallel sweep engine: a quick-budget
//! Fig. 15 sweep must produce identical `RunResult`s — IPC, MPKI,
//! degraded list — and a byte-identical rendered report at 1 worker and
//! at N workers. Results are collected by matrix index and every run
//! builds its program and predictor from per-run seeds, so worker count
//! must never be observable in the output.

use phast_experiments::figures::fig15;
use phast_experiments::harness::{Budget, RunResult, Sweep};
use phast_experiments::PredictorKind;
use phast_ooo::CoreConfig;

/// Quick-budget shape trimmed to keep the debug-mode (checked) run fast;
/// still several workloads × the full headline matrix.
fn budget() -> Budget {
    Budget { insts: 10_000, workload_iters: 60_000, max_workloads: Some(4) }
}

fn assert_identical(a: &RunResult, b: &RunResult) {
    let pair = format!("{} × {}", a.workload, a.predictor);
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.predictor, b.predictor);
    // Bit-exact, not approximate: parallel and serial sweeps run the very
    // same deterministic simulations, so even f64s must match to the bit.
    assert_eq!(a.stats.ipc().to_bits(), b.stats.ipc().to_bits(), "IPC differs for {pair}");
    assert_eq!(
        a.stats.violation_mpki().to_bits(),
        b.stats.violation_mpki().to_bits(),
        "violation MPKI differs for {pair}"
    );
    assert_eq!(
        a.stats.false_dep_mpki().to_bits(),
        b.stats.false_dep_mpki().to_bits(),
        "false-dep MPKI differs for {pair}"
    );
    assert_eq!(a.stats.cycles, b.stats.cycles, "cycles differ for {pair}");
    assert_eq!(a.stats.committed, b.stats.committed, "committed differs for {pair}");
    assert_eq!(a.num_paths, b.num_paths, "paths differ for {pair}");
    assert_eq!(a.ok(), b.ok(), "failure status differs for {pair}");
}

#[test]
fn fig15_sweep_is_identical_at_1_and_n_workers() {
    let budget = budget();
    let serial = Sweep::serial();
    let parallel = Sweep::with_workers(4);
    assert_eq!(serial.workers(), 1);
    assert_eq!(parallel.workers(), 4);

    let s = fig15::run(&serial, &budget);
    let p = fig15::run(&parallel, &budget);

    // Byte-identical rendered table, including geomeans and speedups.
    assert_eq!(s.report, p.report, "parallel report must match serial byte-for-byte");

    // Identical structured RunResults, in identical (matrix) order.
    assert_eq!(s.runs.len(), p.runs.len());
    for (srow, prow) in s.runs.iter().zip(&p.runs) {
        assert_eq!(srow.len(), prow.len());
        for (a, b) in srow.iter().zip(prow) {
            assert_identical(a, b);
        }
    }

    // Identical (here: empty) degraded lists, scoped per sweep.
    assert_eq!(serial.take_degraded(), parallel.take_degraded());
}

#[test]
fn degraded_runs_keep_matrix_order_under_parallelism() {
    // Poison the core so *every* run degrades; the registry must still
    // come back in matrix order (kind-major, workload-minor), regardless
    // of which worker finished first.
    let budget = Budget { insts: 5_000, workload_iters: 30_000, max_workloads: Some(3) };
    let mut poisoned = CoreConfig::alder_lake();
    poisoned.deadlock_cycles = 2;
    let kinds = [PredictorKind::Blind, PredictorKind::TotalOrder];

    let serial = Sweep::serial();
    serial.run_grid(&kinds, &poisoned, &budget);
    let expected = serial.take_degraded();
    assert_eq!(expected.len(), 2 * 3, "every run must degrade under the poisoned config");

    let parallel = Sweep::with_workers(4);
    parallel.run_grid(&kinds, &poisoned, &budget);
    assert_eq!(parallel.take_degraded(), expected, "degraded registry order must be deterministic");
}
