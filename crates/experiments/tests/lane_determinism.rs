//! Determinism contract of lane-batched sweeps: the same grid must
//! produce a bit-identical merged `BENCH` artifact at `--lanes=1`, at
//! `--lanes=8`, and under every other (worker, lane) packing — modulo
//! the established wall-clock/attempt metadata carve-out — and degraded
//! cells must land in the registry in the same deterministic matrix
//! order whatever the packing. Per-cell determinism is what guarantees
//! this: a cell's program, predictor, and seeds depend only on the cell,
//! never on which wave or chunk happened to execute it.

use phast_experiments::harness::{Budget, Sweep};
use phast_experiments::PredictorKind;
use phast_ooo::CoreConfig;
use std::time::Duration;

/// Quick-budget shape trimmed to keep the debug-mode (checked) run fast.
fn budget() -> Budget {
    Budget { insts: 10_000, workload_iters: 60_000, max_workloads: Some(4) }
}

/// Strips the per-execution metadata the resilience docs carve out of
/// byte-identity: wall-clock, throughput, attempts, and the digest
/// (which covers them).
fn normalize(body: &str) -> String {
    body.lines()
        .filter(|l| {
            ![
                "\"wall_s\"",
                "\"mips\"",
                "\"simulated_mips\"",
                "\"attempts\"",
                "\"digest\"",
                "\"git\"",
                "\"workers\"",
            ]
            .iter()
            .any(|k| l.trim_start().starts_with(k))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn artifacts_are_identical_at_any_lane_count_and_packing() {
    let kinds =
        [PredictorKind::Blind, PredictorKind::Phast, PredictorKind::StoreSets];
    let cfg = CoreConfig::alder_lake();
    let budget = budget();

    // The solo reference: --lanes=1 takes the original per-cell path.
    let serial = Sweep::serial();
    serial.run_grid(&kinds, &cfg, &budget);
    let reference = serial.artifact("lanes", &budget, Duration::ZERO).to_json();
    assert!(serial.take_degraded().is_empty(), "reference grid must run clean");

    // Every packing reshapes chunks and waves; none may be observable.
    for (workers, lanes) in [(1, 8), (2, 3), (4, 2)] {
        let sweep = Sweep::with_workers(workers).with_lanes(lanes);
        sweep.run_grid(&kinds, &cfg, &budget);
        let body = sweep.artifact("lanes", &budget, Duration::ZERO).to_json();
        assert_eq!(
            normalize(&reference),
            normalize(&body),
            "artifact diverges from the solo reference at workers={workers} lanes={lanes}"
        );
        assert!(sweep.take_degraded().is_empty(), "workers={workers} lanes={lanes} ran clean");
    }
}

#[test]
fn degraded_cells_keep_matrix_order_under_lane_batching() {
    // Poison the core so every cell degrades (tiny deadlock threshold);
    // the registry must still come back in matrix order — kind-major,
    // workload-minor — whatever the lane packing, and each cell's failure
    // must be its own (lane isolation: a degraded lane never takes its
    // wave-mates down).
    let budget = Budget { insts: 5_000, workload_iters: 30_000, max_workloads: Some(3) };
    let mut poisoned = CoreConfig::alder_lake();
    poisoned.deadlock_cycles = 2;
    let kinds = [PredictorKind::Blind, PredictorKind::TotalOrder];

    let serial = Sweep::serial();
    serial.run_grid(&kinds, &poisoned, &budget);
    let expected = serial.take_degraded();
    assert_eq!(expected.len(), 2 * 3, "every cell degrades under the poisoned config");

    for (workers, lanes) in [(1, 8), (2, 3)] {
        let laned = Sweep::with_workers(workers).with_lanes(lanes);
        laned.run_grid(&kinds, &poisoned, &budget);
        assert_eq!(
            laned.take_degraded(),
            expected,
            "degraded registry diverges at workers={workers} lanes={lanes}"
        );
    }
}
