//! Factory for every memory dependence predictor the experiments use.

use phast::{Phast, PhastConfig, UnlimitedPhast};
use phast_baselines::{
    Cht, ChtConfig, MdpTage, MdpTageConfig, NoSqConfig, NoSqPredictor, StoreSets, StoreSetsConfig,
    StoreVector, StoreVectorConfig, UnlimitedMdpTage, UnlimitedNoSq,
};
use phast_isa::Program;
use phast_mdp::{BlindSpeculation, DepOracle, MemDepPredictor, OraclePredictor, TotalOrder};
use phast_ooo::TrainPoint;
use std::sync::Arc;

/// Identifies a predictor configuration used by the experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// Perfect oracle (upper bound for every figure).
    Ideal,
    /// No prediction at all: every load speculates.
    Blind,
    /// Every load waits for all older stores.
    TotalOrder,
    /// PHAST at the paper's 14.5 KB configuration.
    Phast,
    /// PHAST scaled to `sets` sets per table (Fig. 13 sweep).
    PhastSets(usize),
    /// UnlimitedPHAST, optionally capped at a maximum history length.
    UnlimitedPhast(Option<u32>),
    /// NoSQ at the paper's 19 KB configuration.
    NoSq,
    /// NoSQ scaled to `sets` sets per table.
    NoSqSets(usize),
    /// UnlimitedNoSQ at a fixed history length (Fig. 6 x-axis).
    UnlimitedNoSq(u32),
    /// Store Sets at the paper's 18.5 KB configuration.
    StoreSets,
    /// Store Sets with explicit SSIT/LFST entry counts.
    StoreSetsSized(usize, usize),
    /// Store Vectors.
    StoreVector,
    /// CHT collision predictor.
    Cht,
    /// MDP-TAGE at the paper's 38.625 KB configuration.
    MdpTage,
    /// MDP-TAGE with all component set counts scaled by `num/den`.
    MdpTageScaled(usize, usize),
    /// MDP-TAGE-S (PHAST table layout, 13 KB).
    MdpTageS,
    /// UnlimitedMDPTAGE.
    UnlimitedMdpTage,
}

impl PredictorKind {
    /// Short display name used in experiment output.
    pub fn label(&self) -> String {
        match self {
            PredictorKind::Ideal => "ideal".into(),
            PredictorKind::Blind => "blind".into(),
            PredictorKind::TotalOrder => "total-order".into(),
            PredictorKind::Phast => "phast".into(),
            PredictorKind::PhastSets(s) => format!("phast-{s}s"),
            PredictorKind::UnlimitedPhast(None) => "unl-phast".into(),
            PredictorKind::UnlimitedPhast(Some(m)) => format!("unl-phast-{m}"),
            PredictorKind::NoSq => "nosq".into(),
            PredictorKind::NoSqSets(s) => format!("nosq-{s}s"),
            PredictorKind::UnlimitedNoSq(h) => format!("unl-nosq-{h}"),
            PredictorKind::StoreSets => "store-sets".into(),
            PredictorKind::StoreSetsSized(a, b) => format!("store-sets-{a}-{b}"),
            PredictorKind::StoreVector => "store-vector".into(),
            PredictorKind::Cht => "cht".into(),
            PredictorKind::MdpTage => "mdp-tage".into(),
            PredictorKind::MdpTageScaled(n, d) => format!("mdp-tage-{n}of{d}"),
            PredictorKind::MdpTageS => "mdp-tage-s".into(),
            PredictorKind::UnlimitedMdpTage => "unl-mdp-tage".into(),
        }
    }

    /// Inverse of [`label`](Self::label): parses a predictor name as it
    /// appears in experiment output, artifacts, and `phast-serve` submit
    /// requests. Total over arbitrary input — unknown or malformed labels
    /// are `None`, never a panic (this sits on a protocol boundary).
    pub fn from_label(label: &str) -> Option<PredictorKind> {
        // Fixed names first; the longest-prefix parameterized forms after,
        // so "mdp-tage-s" is not misread as a scaled MDP-TAGE.
        match label {
            "ideal" => return Some(PredictorKind::Ideal),
            "blind" => return Some(PredictorKind::Blind),
            "total-order" => return Some(PredictorKind::TotalOrder),
            "phast" => return Some(PredictorKind::Phast),
            "unl-phast" => return Some(PredictorKind::UnlimitedPhast(None)),
            "nosq" => return Some(PredictorKind::NoSq),
            "store-sets" => return Some(PredictorKind::StoreSets),
            "store-vector" => return Some(PredictorKind::StoreVector),
            "cht" => return Some(PredictorKind::Cht),
            "mdp-tage" => return Some(PredictorKind::MdpTage),
            "mdp-tage-s" => return Some(PredictorKind::MdpTageS),
            "unl-mdp-tage" => return Some(PredictorKind::UnlimitedMdpTage),
            _ => {}
        }
        let num = |s: &str| s.parse::<usize>().ok().filter(|n| *n > 0);
        if let Some(rest) = label.strip_prefix("phast-").and_then(|r| r.strip_suffix('s')) {
            return Some(PredictorKind::PhastSets(num(rest)?));
        }
        if let Some(rest) = label.strip_prefix("unl-phast-") {
            return Some(PredictorKind::UnlimitedPhast(Some(rest.parse().ok()?)));
        }
        if let Some(rest) = label.strip_prefix("nosq-").and_then(|r| r.strip_suffix('s')) {
            return Some(PredictorKind::NoSqSets(num(rest)?));
        }
        if let Some(rest) = label.strip_prefix("unl-nosq-") {
            return Some(PredictorKind::UnlimitedNoSq(rest.parse().ok()?));
        }
        if let Some(rest) = label.strip_prefix("store-sets-") {
            let (a, b) = rest.split_once('-')?;
            return Some(PredictorKind::StoreSetsSized(num(a)?, num(b)?));
        }
        if let Some(rest) = label.strip_prefix("mdp-tage-") {
            let (n, d) = rest.split_once("of")?;
            return Some(PredictorKind::MdpTageScaled(num(n)?, num(d)?));
        }
        None
    }

    /// The five limited predictors of the headline comparison
    /// (Figs. 13–16), in the paper's order.
    pub fn headline() -> Vec<PredictorKind> {
        vec![
            PredictorKind::StoreSets,
            PredictorKind::NoSq,
            PredictorKind::MdpTage,
            PredictorKind::MdpTageS,
            PredictorKind::Phast,
        ]
    }

    /// When the out-of-order core should train this predictor: PHAST
    /// variants at commit, everything else at detection (§IV-A1 and §V).
    pub fn train_point(&self) -> TrainPoint {
        match self {
            PredictorKind::Phast
            | PredictorKind::PhastSets(_)
            | PredictorKind::UnlimitedPhast(_) => TrainPoint::Commit,
            _ => TrainPoint::Detect,
        }
    }

    /// Builds the predictor. The oracle needs the program (and budget) to
    /// precompute perfect dependences.
    pub fn build(&self, program: &Program, max_insts: u64) -> Box<dyn MemDepPredictor> {
        match self {
            PredictorKind::Ideal => {
                // The pipeline commits up to a commit-group beyond the
                // budget and fetches further still, so the oracle covers a
                // comfortable margin past `max_insts`.
                let oracle = DepOracle::build(program, max_insts + 50_000, 512)
                    .expect("workloads emulate cleanly");
                Box::new(OraclePredictor::new(Arc::new(oracle)))
            }
            PredictorKind::Blind => Box::new(BlindSpeculation),
            PredictorKind::TotalOrder => Box::new(TotalOrder),
            PredictorKind::Phast => Box::new(Phast::new(PhastConfig::paper())),
            PredictorKind::PhastSets(s) => Box::new(Phast::new(PhastConfig::with_sets(*s))),
            PredictorKind::UnlimitedPhast(max) => Box::new(UnlimitedPhast::with_max_length(*max)),
            PredictorKind::NoSq => Box::new(NoSqPredictor::new(NoSqConfig::paper())),
            PredictorKind::NoSqSets(s) => Box::new(NoSqPredictor::new(NoSqConfig::with_sets(*s))),
            PredictorKind::UnlimitedNoSq(h) => Box::new(UnlimitedNoSq::new(*h)),
            PredictorKind::StoreSets => Box::new(StoreSets::new(StoreSetsConfig::paper())),
            PredictorKind::StoreSetsSized(ssit, lfst) => {
                Box::new(StoreSets::new(StoreSetsConfig::with_entries(*ssit, *lfst)))
            }
            PredictorKind::StoreVector => Box::new(StoreVector::new(StoreVectorConfig::paper())),
            PredictorKind::Cht => Box::new(Cht::new(ChtConfig::paper())),
            PredictorKind::MdpTage => Box::new(MdpTage::new(MdpTageConfig::paper())),
            PredictorKind::MdpTageScaled(n, d) => {
                Box::new(MdpTage::new(MdpTageConfig::paper_scaled(*n, *d)))
            }
            PredictorKind::MdpTageS => Box::new(MdpTage::new(MdpTageConfig::short())),
            PredictorKind::UnlimitedMdpTage => Box::new(UnlimitedMdpTage::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_isa::{ProgramBuilder, Reg};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e).li(Reg(1), 1).halt();
        b.set_entry(e);
        b.build().unwrap()
    }

    #[test]
    fn every_kind_builds() {
        let p = tiny_program();
        let kinds = vec![
            PredictorKind::Ideal,
            PredictorKind::Blind,
            PredictorKind::TotalOrder,
            PredictorKind::Phast,
            PredictorKind::PhastSets(64),
            PredictorKind::UnlimitedPhast(None),
            PredictorKind::UnlimitedPhast(Some(16)),
            PredictorKind::NoSq,
            PredictorKind::NoSqSets(256),
            PredictorKind::UnlimitedNoSq(8),
            PredictorKind::StoreSets,
            PredictorKind::StoreSetsSized(4096, 2048),
            PredictorKind::StoreVector,
            PredictorKind::Cht,
            PredictorKind::MdpTage,
            PredictorKind::MdpTageScaled(1, 2),
            PredictorKind::MdpTageS,
            PredictorKind::UnlimitedMdpTage,
        ];
        for k in kinds {
            let pred = k.build(&p, 100);
            assert!(!pred.name().is_empty(), "{:?}", k);
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn phast_trains_at_commit_baselines_at_detect() {
        assert_eq!(PredictorKind::Phast.train_point(), TrainPoint::Commit);
        assert_eq!(PredictorKind::UnlimitedPhast(None).train_point(), TrainPoint::Commit);
        assert_eq!(PredictorKind::NoSq.train_point(), TrainPoint::Detect);
        assert_eq!(PredictorKind::StoreSets.train_point(), TrainPoint::Detect);
    }

    #[test]
    fn headline_has_five_predictors() {
        assert_eq!(PredictorKind::headline().len(), 5);
    }

    #[test]
    fn from_label_inverts_label_for_every_kind() {
        let kinds = vec![
            PredictorKind::Ideal,
            PredictorKind::Blind,
            PredictorKind::TotalOrder,
            PredictorKind::Phast,
            PredictorKind::PhastSets(64),
            PredictorKind::UnlimitedPhast(None),
            PredictorKind::UnlimitedPhast(Some(12)),
            PredictorKind::NoSq,
            PredictorKind::NoSqSets(256),
            PredictorKind::UnlimitedNoSq(8),
            PredictorKind::StoreSets,
            PredictorKind::StoreSetsSized(4096, 2048),
            PredictorKind::StoreVector,
            PredictorKind::Cht,
            PredictorKind::MdpTage,
            PredictorKind::MdpTageScaled(1, 2),
            PredictorKind::MdpTageS,
            PredictorKind::UnlimitedMdpTage,
        ];
        for kind in kinds {
            let label = kind.label();
            assert_eq!(PredictorKind::from_label(&label), Some(kind), "{label}");
        }
    }

    #[test]
    fn from_label_rejects_garbage_without_panicking() {
        for bad in ["", "phastx", "phast-s", "phast-0s", "nosq-s", "store-sets-4096",
                    "mdp-tage-0of2", "unl-nosq-", "unl-phast-x", "PHAST", "blind "] {
            assert_eq!(PredictorKind::from_label(bad), None, "{bad}");
        }
    }

    #[test]
    fn paper_storage_budgets_match_table_2() {
        let p = tiny_program();
        let kb = |k: &PredictorKind| k.build(&p, 10).storage_bits() as f64 / 8192.0;
        assert_eq!(kb(&PredictorKind::StoreSets), 18.5);
        assert_eq!(kb(&PredictorKind::NoSq), 19.0);
        assert_eq!(kb(&PredictorKind::MdpTage), 38.625);
        assert_eq!(kb(&PredictorKind::MdpTageS), 13.0);
        assert_eq!(kb(&PredictorKind::Phast), 14.5);
    }
}
