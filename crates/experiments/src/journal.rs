//! Write-ahead run journal: crash-resilient sweep state on disk.
//!
//! A sweep writes one JSONL line to `journal.jsonl` *before* it starts
//! each run (`start`) and one as each run finishes (`done`), flushed
//! immediately — so after a crash, a kill, or a power cut, the journal
//! holds the exact set of completed runs. `--resume <dir>` replays it:
//! runs journaled as `ok` are skipped and their embedded [`RunRecord`]s
//! flow into the aggregate verbatim, so a resumed sweep's `BENCH_*.json`
//! is byte-identical to an uninterrupted one (modulo wall-clock and
//! attempt metadata, which are properties of *this* execution).
//!
//! Integrity is fail-closed: every `done` line carries a CRC32 digest of
//! its embedded record; a digest mismatch or an unparseable line in the
//! *interior* of the journal is a typed [`JournalError`] (the journal is
//! evidence — if it cannot be trusted, resuming from it silently would
//! corrupt the aggregate). The one tolerated defect is a torn **final**
//! line, which is exactly what a crash mid-write produces.
//!
//! Line shapes (all compact JSON, one per line):
//!
//! ```text
//! {"kind":"header","version":1,"fingerprint":"insts=...,..."}
//! {"kind":"start","key":"fig15|mcf|phast|1a2b3c4d|300000","attempt":1,"seed":7}
//! {"kind":"done","key":"...","status":"ok","attempts":1,"digest":"crc32:...","record":{...}}
//! ```
//!
//! The `fingerprint` pins the sweep shape (budget, workload count,
//! sampling mode); resuming under a different configuration is refused —
//! mixing records from differently-shaped sweeps would produce an
//! aggregate no single configuration ever ran.

use crate::artifact::{JsonValue, RunRecord};
use crate::jsonio;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Journal format version.
const VERSION: u64 = 1;

/// Why a journal could not be created or resumed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem failure.
    Io(String),
    /// A line in the journal's interior is unparseable, mistyped, or
    /// fails its record digest. `line` is 1-based.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal was written by a sweep with a different shape.
    FingerprintMismatch {
        /// Fingerprint of the sweep trying to resume.
        expected: String,
        /// Fingerprint stored in the journal.
        found: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O failure: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal belongs to a differently-configured sweep: \
                 expected fingerprint '{expected}', found '{found}'"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// One completed (`status == "ok"`) run recovered from the journal.
#[derive(Clone, Debug)]
pub struct CompletedRun {
    /// Attempts the original execution took.
    pub attempts: u64,
    /// The run's record, exactly as the original sweep would have
    /// aggregated it.
    pub record: RunRecord,
}

struct JournalInner {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    completed: HashMap<String, CompletedRun>,
}

/// A shared handle to the sweep's run journal. Cheap to clone; writes are
/// serialized through an internal lock and flushed per line (write-ahead:
/// a line is on disk before the work it describes is trusted).
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.inner.path)
            .field("completed", &self.inner.completed.len())
            .finish()
    }
}

impl Journal {
    /// Creates (truncating) `journal.jsonl` at `path` and writes the
    /// header line.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, fingerprint: &str) -> Result<Journal, JournalError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(path, &e))?;
            }
        }
        let mut file = std::fs::File::create(path).map_err(|e| io_err(path, &e))?;
        let header = JsonValue::obj(vec![
            ("kind", JsonValue::Str("header".to_string())),
            ("version", JsonValue::UInt(VERSION)),
            ("fingerprint", JsonValue::Str(fingerprint.to_string())),
        ]);
        write_line(&mut file, &header).map_err(|e| io_err(path, &e))?;
        Ok(Journal {
            inner: Arc::new(JournalInner {
                file: Mutex::new(file),
                path: path.to_path_buf(),
                completed: HashMap::new(),
            }),
        })
    }

    /// Opens an existing journal for resumption: validates every line,
    /// recovers the completed-run map, and reopens the file for
    /// appending. A torn final line (crash mid-write) is tolerated and
    /// overwritten by subsequent appends' ordering — everything before it
    /// must be intact.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file is unreadable,
    /// [`JournalError::FingerprintMismatch`] if it belongs to a sweep
    /// with a different shape, [`JournalError::Corrupt`] on any interior
    /// defect — fail closed; a journal that cannot be trusted end to end
    /// is not resumed from.
    pub fn resume(path: &Path, fingerprint: &str) -> Result<Journal, JournalError> {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        let last_idx = lines.len().saturating_sub(1);
        let mut completed = HashMap::new();
        let mut saw_header = false;
        for (pos, (line_no, line)) in lines.iter().enumerate() {
            let torn_tail_ok = pos == last_idx && pos > 0;
            let v = match jsonio::parse(line) {
                Ok(v) => v,
                Err(e) if torn_tail_ok => {
                    // A crash mid-append leaves exactly one torn final
                    // line; everything it described was never trusted.
                    let _ = e;
                    continue;
                }
                Err(e) => {
                    return Err(JournalError::Corrupt { line: *line_no, reason: e.to_string() })
                }
            };
            let corrupt = |reason: String| JournalError::Corrupt { line: *line_no, reason };
            let kind = v
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| corrupt("missing 'kind'".to_string()))?
                .to_string();
            if pos == 0 {
                if kind != "header" {
                    return Err(corrupt("first line is not a header".to_string()));
                }
                let version = v.get("version").and_then(JsonValue::as_u64);
                if version != Some(VERSION) {
                    return Err(corrupt(format!("unsupported journal version {version:?}")));
                }
                let found = v
                    .get("fingerprint")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| corrupt("header missing 'fingerprint'".to_string()))?;
                if found != fingerprint {
                    return Err(JournalError::FingerprintMismatch {
                        expected: fingerprint.to_string(),
                        found: found.to_string(),
                    });
                }
                saw_header = true;
                continue;
            }
            match kind.as_str() {
                "start" => {
                    // Start lines witness that an attempt began; only done
                    // lines carry results, so nothing to recover here.
                }
                "done" => {
                    let key = v
                        .get("key")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| corrupt("done line missing 'key'".to_string()))?
                        .to_string();
                    let status = v
                        .get("status")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| corrupt("done line missing 'status'".to_string()))?
                        .to_string();
                    let attempts = v
                        .get("attempts")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| corrupt("done line missing 'attempts'".to_string()))?;
                    let stored = v
                        .get("digest")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| corrupt("done line missing 'digest'".to_string()))?
                        .to_string();
                    let record_v = v
                        .get("record")
                        .ok_or_else(|| corrupt("done line missing 'record'".to_string()))?;
                    let computed = record_digest(record_v);
                    if computed != stored {
                        return Err(corrupt(format!(
                            "record digest mismatch: recomputed {computed} != stored {stored}"
                        )));
                    }
                    if status == "ok" {
                        let record = RunRecord::from_json(record_v)
                            .map_err(|e| corrupt(format!("bad record: {e}")))?;
                        completed.insert(key, CompletedRun { attempts, record });
                    }
                    // Degraded runs are deterministic to re-execute and may
                    // succeed under a retry policy — never skip them.
                }
                other => return Err(corrupt(format!("unknown line kind '{other}'"))),
            }
        }
        if !saw_header {
            return Err(JournalError::Corrupt {
                line: 1,
                reason: "journal has no header line".to_string(),
            });
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        Ok(Journal {
            inner: Arc::new(JournalInner {
                file: Mutex::new(file),
                path: path.to_path_buf(),
                completed,
            }),
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Completed (`ok`) runs recovered at [`resume`](Self::resume) time.
    pub fn completed_runs(&self) -> usize {
        self.inner.completed.len()
    }

    /// A scope that prefixes every key with the experiment id, so the
    /// same (workload, predictor) pair journals distinctly across
    /// experiments sharing one journal file.
    pub fn scope(&self, exp: &str) -> JournalScope {
        JournalScope { journal: self.clone(), exp: exp.to_string() }
    }

    fn append(&self, v: &JsonValue) {
        let mut file = self.inner.file.lock().expect("journal file lock");
        // A journal write failure must not take down the sweep it exists
        // to protect; the warning names the path so the operator knows
        // resume coverage stops here.
        if let Err(e) = write_line(&mut file, v) {
            eprintln!("warning: journal write failed ({}): {e}", self.inner.path.display());
        }
    }
}

/// The per-record digest stored on `done` lines: CRC32 of the record's
/// compact rendering.
fn record_digest(record: &JsonValue) -> String {
    format!("crc32:{:08x}", phast_sample::crc32(record.render_compact().as_bytes()))
}

fn io_err(path: &Path, e: &dyn std::fmt::Display) -> JournalError {
    JournalError::Io(format!("{}: {e}", path.display()))
}

fn write_line(file: &mut std::fs::File, v: &JsonValue) -> std::io::Result<()> {
    let mut line = v.render_compact();
    line.push('\n');
    file.write_all(line.as_bytes())?;
    file.flush()
}

/// A [`Journal`] handle scoped to one experiment id.
#[derive(Clone, Debug)]
pub struct JournalScope {
    journal: Journal,
    exp: String,
}

impl JournalScope {
    /// The journaled key for a cell key within this scope.
    fn full_key(&self, key: &str) -> String {
        format!("{}|{key}", self.exp)
    }

    /// The completed run for `key`, if the journal has one — the caller
    /// replays its record instead of re-simulating.
    pub fn lookup(&self, key: &str) -> Option<CompletedRun> {
        self.journal.inner.completed.get(&self.full_key(key)).cloned()
    }

    /// Journals that attempt `attempt` of `key` is about to run with
    /// fault seed `seed` (write-ahead: on disk before the run starts).
    pub fn log_start(&self, key: &str, attempt: u64, seed: u64) {
        self.journal.append(&JsonValue::obj(vec![
            ("kind", JsonValue::Str("start".to_string())),
            ("key", JsonValue::Str(self.full_key(key))),
            ("attempt", JsonValue::UInt(attempt)),
            ("seed", JsonValue::UInt(seed)),
        ]));
    }

    /// Journals that `key` finished with `status` (`"ok"` or a failure
    /// kind) after `attempts` attempts, embedding the record and its
    /// digest.
    pub fn log_done(&self, key: &str, record: &RunRecord, status: &str, attempts: u64) {
        let record_v = record.to_json();
        let digest = record_digest(&record_v);
        self.journal.append(&JsonValue::obj(vec![
            ("kind", JsonValue::Str("done".to_string())),
            ("key", JsonValue::Str(self.full_key(key))),
            ("status", JsonValue::Str(status.to_string())),
            ("attempts", JsonValue::UInt(attempts)),
            ("digest", JsonValue::Str(digest)),
            ("record", record_v),
        ]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, ipc: f64) -> RunRecord {
        RunRecord {
            workload: workload.into(),
            predictor: "phast".into(),
            ipc,
            violation_mpki: 0.5,
            false_dep_mpki: 0.25,
            cycles: 1000,
            committed: 3250,
            num_paths: 0,
            wall_s: 0.125,
            mips: 26.0,
            attempts: 1,
            degraded: None,
            sampling: None,
        }
    }

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("phast-journal-tests");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn create_log_resume_roundtrip() {
        let path = temp_journal("roundtrip");
        let j = Journal::create(&path, "fp-1").expect("creates");
        let scope = j.scope("fig15");
        scope.log_start("mcf|phast|deadbeef|300000", 1, 7);
        scope.log_done("mcf|phast|deadbeef|300000", &record("mcf", 3.25), "ok", 1);
        scope.log_start("gcc|phast|deadbeef|300000", 1, 7);
        scope.log_done("gcc|phast|deadbeef|300000", &record("gcc", 2.0), "deadlock", 2);
        drop(j);

        let r = Journal::resume(&path, "fp-1").expect("resumes");
        assert_eq!(r.completed_runs(), 1, "only ok runs are recovered");
        let scope = r.scope("fig15");
        let hit = scope.lookup("mcf|phast|deadbeef|300000").expect("ok run recovered");
        assert_eq!(hit.attempts, 1);
        assert_eq!(hit.record.workload, "mcf");
        assert_eq!(hit.record.ipc, 3.25);
        assert!(scope.lookup("gcc|phast|deadbeef|300000").is_none(), "degraded runs re-run");
        assert!(r.scope("fig2").lookup("mcf|phast|deadbeef|300000").is_none(), "scoped by exp");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let path = temp_journal("torn");
        let j = Journal::create(&path, "fp-1").expect("creates");
        j.scope("e").log_done("k1", &record("mcf", 3.0), "ok", 1);
        drop(j);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"done\",\"key\":\"k2\",\"status");
        std::fs::write(&path, &text).unwrap();

        let r = Journal::resume(&path, "fp-1").expect("torn tail tolerated");
        assert_eq!(r.completed_runs(), 1);
        // The journal stays appendable after resume.
        r.scope("e").log_done("k2", &record("gcc", 2.0), "ok", 1);
        drop(r);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_fails_closed() {
        let path = temp_journal("interior");
        let j = Journal::create(&path, "fp-1").expect("creates");
        j.scope("e").log_done("k1", &record("mcf", 3.0), "ok", 1);
        j.scope("e").log_done("k2", &record("gcc", 2.0), "ok", 1);
        drop(j);

        // Flip a byte inside the *first* done record: its digest breaks,
        // and because it is interior the journal must be refused.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"ipc\":3", "\"ipc\":9", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, &tampered).unwrap();
        let err = Journal::resume(&path, "fp-1").expect_err("tampered journal refused");
        assert!(
            matches!(err, JournalError::Corrupt { line: 2, ref reason } if reason.contains("digest")),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = temp_journal("fingerprint");
        drop(Journal::create(&path, "fp-A").expect("creates"));
        let err = Journal::resume(&path, "fp-B").expect_err("mismatch refused");
        assert!(matches!(err, JournalError::FingerprintMismatch { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_and_empty_journals_are_errors() {
        let missing = temp_journal("missing-nonexistent");
        let _ = std::fs::remove_file(&missing);
        assert!(matches!(Journal::resume(&missing, "fp"), Err(JournalError::Io(_))));

        let empty = temp_journal("empty");
        std::fs::write(&empty, "").unwrap();
        assert!(matches!(Journal::resume(&empty, "fp"), Err(JournalError::Corrupt { .. })));
        let _ = std::fs::remove_file(&empty);
    }
}
