//! The sweep engine: budgets, per-run results, aggregation, parallel
//! execution, and graceful degradation.
//!
//! A [`Sweep`] owns everything one experiment needs:
//!
//! * a **worker pool** ([`crate::pool`]) that fans the (workload,
//!   predictor, config) run matrix across threads while keeping output
//!   deterministic — results are collected by matrix index and recorded in
//!   matrix order, and every run builds its program and predictor from
//!   per-run seeds, so a parallel sweep produces byte-identical tables to
//!   a serial one;
//! * a **scoped degraded-run registry** — a run that fails with a
//!   [`SimError`] is recorded (with its partial statistics) and reported
//!   at the end of the experiment instead of aborting the remaining
//!   pairs. The registry lives on the `Sweep`, not in a process-global
//!   static, so concurrent sweeps (e.g. parallel tests) cannot steal each
//!   other's reports;
//! * a **run log** of [`RunRecord`]s feeding the machine-readable
//!   `BENCH_<id>.json` artifacts ([`crate::artifact`]).
//!
//! Budget tiers: [`Budget::full`] (the paper's evaluation, used by the
//! `phast-experiments` binary), [`Budget::quick`] (smoke tests and CI),
//! and [`Budget::bench`] (the Criterion benches in `phast-bench`).

use crate::artifact::{git_describe, RunRecord, SamplingMeta, SweepArtifact};
use crate::journal::{CompletedRun, JournalScope};
use crate::pool::{self, JobPanic};
use crate::predictors::PredictorKind;
use phast_isa::Program;
use phast_mdp::MemDepPredictor;
use phast_ooo::{
    try_simulate_within, CoreConfig, Deadline, LaneBatch, LaneJob, LaneOutcome, LaneReport,
    SimError, SimStats,
};
use phast_sample::{
    capture, estimate, run_window_within, sum_window_stats, CheckpointSet, SampleConfig, WindowRun,
};
use phast_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Process exit codes of the experiment binary — the machine-readable
/// summary of how resilient execution went. Documented in `--help` and
/// `docs/RESILIENCE.md`.
pub mod exit_code {
    /// Every run completed cleanly.
    pub const OK: i32 = 0;
    /// The sweep completed, but at least one run degraded (simulation
    /// error or panic) — results are present but partial.
    pub const DEGRADED: i32 = 1;
    /// Bad command line.
    pub const USAGE: i32 = 2;
    /// An artifact or journal failed integrity verification — outputs
    /// must not be trusted.
    pub const INTEGRITY: i32 = 3;
    /// At least one run was cut off by its wall-clock watchdog.
    pub const DEADLINE: i32 = 4;

    /// The exit code for a sweep that *completed*: deadline overruns
    /// outrank plain degradation (a hang is operationally worse than a
    /// caught simulation error), integrity failures are raised at the
    /// point of detection and never reach here.
    pub fn for_outcome(degraded: bool, deadline: bool) -> i32 {
        if deadline {
            DEADLINE
        } else if degraded {
            DEGRADED
        } else {
            OK
        }
    }
}

/// Why a run failed: a structured simulation error, or a panic caught at
/// the job boundary. Both degrade the run — recorded, reported, never
/// aborting the sweep.
#[derive(Clone, Debug)]
pub enum RunFailure {
    /// The simulator returned a structured error.
    Sim(SimError),
    /// The job panicked; the payload message survives.
    Panicked(String),
    /// The job was lost without delivering a result: its `phast-serve`
    /// lease expired (worker death, heartbeat loss) and the retry budget
    /// ran out before any attempt completed.
    Lost(String),
}

impl RunFailure {
    /// Stable failure-kind tag: [`SimError::kind`] for simulation errors,
    /// `"panicked"` for caught panics, `"lost"` for jobs whose lease
    /// expired with no result. This is the `status` a journal `done` line
    /// carries for a failed run.
    pub fn kind(&self) -> &'static str {
        match self {
            RunFailure::Sim(e) => e.kind(),
            RunFailure::Panicked(_) => "panicked",
            RunFailure::Lost(_) => "lost",
        }
    }
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Sim(e) => e.fmt(f),
            RunFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            RunFailure::Lost(msg) => write!(f, "lost: {msg}"),
        }
    }
}

impl From<SimError> for RunFailure {
    fn from(e: SimError) -> RunFailure {
        RunFailure::Sim(e)
    }
}

/// How much work an experiment may do. The binary runs at
/// [`Budget::full`]; tests and CI use [`Budget::quick`]; the Criterion
/// benches use [`Budget::bench`].
#[derive(Clone, Debug)]
pub struct Budget {
    /// Instructions simulated per (workload, predictor) pair.
    pub insts: u64,
    /// Outer-loop iterations the workloads are built with.
    pub workload_iters: u64,
    /// Restrict to the first `n` workloads (None = all 23).
    pub max_workloads: Option<usize>,
}

impl Budget {
    /// The full budget used by `cargo run -p phast-experiments`.
    pub fn full() -> Budget {
        Budget { insts: 300_000, workload_iters: 1_000_000, max_workloads: None }
    }

    /// A reduced budget for smoke tests and the CI quick sweep.
    pub fn quick() -> Budget {
        Budget { insts: 40_000, workload_iters: 200_000, max_workloads: Some(6) }
    }

    /// The smallest tier, used by the `phast-bench` Criterion benches
    /// (benches measure harness cost, not paper numbers).
    pub fn bench() -> Budget {
        Budget { insts: 10_000, workload_iters: 60_000, max_workloads: Some(2) }
    }

    /// The sampled tier: a much longer horizon than [`Budget::full`],
    /// affordable because a sweep with [`Sweep::with_sampling`] measures
    /// only the detailed windows cycle-accurately and covers the rest
    /// with functional fast-forward (see `phast-sample` and
    /// `docs/SAMPLING.md`).
    pub fn sampled() -> Budget {
        Budget { insts: 2_000_000, workload_iters: 10_000_000, max_workloads: None }
    }

    /// The sampling parameters matched to this budget's horizon: enough
    /// windows for a tight confidence interval at [`Budget::sampled`]
    /// scale, the `phast-sample` defaults below [`Budget::full`] scale.
    pub fn default_sampling(&self) -> SampleConfig {
        if self.insts > Budget::full().insts {
            SampleConfig::new(16, 4_000, 2_000)
        } else {
            SampleConfig::default()
        }
    }

    /// The workloads this budget covers.
    pub fn workloads(&self) -> Vec<Workload> {
        let mut all = phast_workloads::all_workloads();
        if let Some(n) = self.max_workloads {
            all.truncate(n);
        }
        all
    }
}

/// Result of simulating one (workload, predictor, core config) triple.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Predictor label.
    pub predictor: String,
    /// Full simulator statistics (partial if `failure` is set).
    pub stats: SimStats,
    /// Paths tracked by unlimited predictors (0 for table-based ones).
    pub num_paths: u64,
    /// The failure that ended the run early, if it could not finish
    /// cleanly.
    pub failure: Option<RunFailure>,
    /// Host wall-clock time the simulation took.
    pub wall: Duration,
    /// Attempts this run took (1 = first try succeeded or no retry
    /// policy; >1 = the retry policy re-ran it).
    pub attempts: u64,
    /// Sampling metadata when the statistics were estimated from detailed
    /// windows (`None` for a full-detail run).
    pub sampling: Option<SamplingMeta>,
    /// When this result was replayed from a resume journal rather than
    /// simulated, the journaled record to emit verbatim — so a resumed
    /// sweep's artifact is byte-identical to an uninterrupted one.
    pub(crate) replay: Option<RunRecord>,
}

impl RunResult {
    /// True if the run finished cleanly (statistics are a full sample).
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// The degraded-run registry entry for this run, if it failed.
    pub(crate) fn degraded_entry(&self) -> Option<String> {
        self.failure.as_ref().map(|e| format!("{} × {}: {e}", self.workload, self.predictor))
    }

    /// The artifact row for this run.
    pub(crate) fn to_record(&self) -> RunRecord {
        RunRecord {
            workload: self.workload.clone(),
            predictor: self.predictor.clone(),
            ipc: self.stats.ipc(),
            violation_mpki: self.stats.violation_mpki(),
            false_dep_mpki: self.stats.false_dep_mpki(),
            cycles: self.stats.cycles,
            committed: self.stats.committed,
            num_paths: self.num_paths,
            wall_s: self.wall.as_secs_f64(),
            mips: {
                let wall_s = self.wall.as_secs_f64();
                if wall_s > 0.0 { self.stats.committed as f64 / wall_s / 1e6 } else { 0.0 }
            },
            attempts: self.attempts,
            degraded: self.degraded_entry(),
            sampling: self.sampling.clone(),
        }
    }
}

/// Simulates an already-built predictor on an already-built program,
/// degrading gracefully: a failed run yields its partial statistics plus
/// the [`SimError`] instead of aborting.
///
/// This is the **pure** execution primitive: it records nothing. Use the
/// [`Sweep`] methods (or [`Sweep::record_all`] after a custom parallel
/// map) so degraded runs reach the registry and the artifact log.
pub fn simulate_run(
    workload: &str,
    label: &str,
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    insts: u64,
) -> RunResult {
    simulate_run_within(workload, label, program, cfg, predictor, insts, &Deadline::none())
}

/// [`simulate_run`] under a cooperative [`Deadline`] watchdog: a run
/// whose wall-clock budget elapses degrades with `SimError::Deadline`
/// instead of hanging its worker thread.
pub fn simulate_run_within(
    workload: &str,
    label: &str,
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    insts: u64,
    deadline: &Deadline,
) -> RunResult {
    let start = Instant::now();
    let (stats, failure) = match try_simulate_within(program, cfg, predictor, insts, deadline) {
        Ok(stats) => (stats, None),
        Err(e) => (e.partial_stats().clone(), Some(RunFailure::Sim(e))),
    };
    RunResult {
        workload: workload.to_string(),
        predictor: label.to_string(),
        stats,
        num_paths: predictor.num_paths(),
        failure,
        wall: start.elapsed(),
        attempts: 1,
        sampling: None,
        replay: None,
    }
}

/// A degraded [`RunResult`] for a job whose panic was caught at the pool
/// boundary: empty statistics, failure [`RunFailure::Panicked`].
fn panicked_result(workload: &str, label: &str, panic: JobPanic) -> RunResult {
    failed_result(workload, label, RunFailure::Panicked(panic.message))
}

/// A degraded [`RunResult`] carrying `failure` and empty statistics — for
/// jobs that never produced partial state: caught panics, and
/// `phast-serve` jobs whose lease expired with no surviving attempt
/// ([`RunFailure::Lost`]).
pub fn failed_result(workload: &str, label: &str, failure: RunFailure) -> RunResult {
    RunResult {
        workload: workload.to_string(),
        predictor: label.to_string(),
        stats: SimStats::default(),
        num_paths: 0,
        failure: Some(failure),
        wall: Duration::ZERO,
        attempts: 1,
        sampling: None,
        replay: None,
    }
}

#[allow(clippy::field_reassign_with_default)] // only four fields are recoverable
/// Reconstructs a [`RunResult`] from a journaled completed run, for
/// resume: the embedded record is carried verbatim (so the artifact is
/// byte-identical to an uninterrupted sweep's), and the statistics the
/// figures consume are inverted from the record exactly — `ipc`,
/// `violation_mpki` and `false_dep_mpki` recompute to the identical
/// values because they were derived from these integers in the first
/// place.
pub(crate) fn replayed_result(done: CompletedRun) -> RunResult {
    let r = &done.record;
    let per_kilo_inverse =
        |mpki: f64| -> u64 { (mpki * r.committed as f64 / 1000.0).round() as u64 };
    let mut stats = SimStats::default();
    stats.cycles = r.cycles;
    stats.committed = r.committed;
    stats.violations = per_kilo_inverse(r.violation_mpki);
    stats.false_dependences = per_kilo_inverse(r.false_dep_mpki);
    RunResult {
        workload: r.workload.clone(),
        predictor: r.predictor.clone(),
        stats,
        num_paths: r.num_paths,
        failure: None,
        wall: Duration::from_secs_f64(r.wall_s.max(0.0)),
        attempts: done.attempts,
        sampling: r.sampling.clone(),
        replay: Some(done.record),
    }
}

/// Builds and simulates one (workload, predictor kind) pair without
/// touching any registry — the unit of work the pool distributes,
/// under a cooperative deadline ([`Deadline::none`] disarms it).
fn execute_one_within(
    workload: &Workload,
    kind: &PredictorKind,
    cfg: &CoreConfig,
    budget: &Budget,
    deadline: &Deadline,
) -> RunResult {
    let program = workload.build(budget.workload_iters);
    let mut core_cfg = cfg.clone();
    core_cfg.train_point = kind.train_point();
    let mut predictor = kind.build(&program, budget.insts);
    simulate_run_within(
        workload.name,
        &kind.label(),
        &program,
        &core_cfg,
        predictor.as_mut(),
        budget.insts,
        deadline,
    )
}

/// Builds the [`LaneJob`] for one full-detail cell — the lane-batched
/// counterpart of [`execute_one_within`]'s build phase, producing exactly
/// the program/config/predictor triple the solo path would simulate.
pub(crate) fn build_lane_job(
    workload: &Workload,
    kind: &PredictorKind,
    cfg: &CoreConfig,
    budget: &Budget,
    deadline: Deadline,
) -> LaneJob {
    let program = workload.build(budget.workload_iters);
    let mut core_cfg = cfg.clone();
    core_cfg.train_point = kind.train_point();
    let predictor = kind.build(&program, budget.insts);
    LaneJob::new(program, core_cfg, predictor, budget.insts, deadline)
}

/// Converts one [`LaneReport`] into the [`RunResult`]
/// [`simulate_run_within`] would have produced for the same cell: same
/// statistics and failure taxonomy (lane batching is byte-identical to
/// solo execution), with `wall` the host time attributed to this lane
/// alone. A panicked lane maps to [`RunFailure::Panicked`] with zero
/// wall, matching what the pool's catch boundary reports for solo cells.
pub(crate) fn lane_run_result(workload: &str, label: &str, report: LaneReport) -> RunResult {
    let (stats, failure) = match report.outcome {
        LaneOutcome::Finished(stats) => (stats, None),
        LaneOutcome::Failed(e) => (e.partial_stats().clone(), Some(RunFailure::Sim(e))),
        LaneOutcome::Panicked(msg) => {
            return failed_result(workload, label, RunFailure::Panicked(msg));
        }
    };
    RunResult {
        workload: workload.to_string(),
        predictor: label.to_string(),
        stats,
        num_paths: report.job.predictor().num_paths(),
        failure,
        wall: report.wall,
        attempts: 1,
        sampling: None,
        replay: None,
    }
}

/// One *attempt* at a full-detail sweep cell, with panic isolation but no
/// retry loop, journaling, or registry — the execution primitive shared
/// by [`Sweep::execute_cell`]'s retry loop and the `phast-serve`
/// scheduler, whose retries are driven externally by lease reclamation.
/// A panic inside the cell degrades it to [`RunFailure::Panicked`]; the
/// cooperative `deadline` carries the service layer's cancellation flag
/// and progress counter when called from a leased worker.
pub fn execute_cell_once(
    workload: &Workload,
    kind: &PredictorKind,
    cfg: &CoreConfig,
    budget: &Budget,
    deadline: &Deadline,
) -> RunResult {
    match pool::catch_job(|| execute_one_within(workload, kind, cfg, budget, deadline)) {
        Ok(run) => run,
        Err(p) => panicked_result(workload.name, &kind.label(), p),
    }
}

/// The journal key of one sweep cell. Workload and predictor label alone
/// do not identify a run — Fig. 2 sweeps core generations and Fig. 12
/// re-runs pairs under a different forwarding filter — so the key also
/// carries a fingerprint of the core configuration (CRC32 of its `Debug`
/// form, which is deterministic), the instruction budget, and the
/// sampling shape when in sampled mode. Public because the `phast-serve`
/// job queue journals cells under exactly the same keys, so a daemon
/// journal and a batch journal are mutually intelligible.
pub fn cell_key(
    workload: &str,
    label: &str,
    cfg: &CoreConfig,
    budget: &Budget,
    sampling: Option<&SampleConfig>,
) -> String {
    let cfg_fp = phast_sample::crc32(format!("{cfg:?}").as_bytes());
    let mut key = format!("{workload}|{label}|{cfg_fp:08x}|{}", budget.insts);
    if let Some(s) = sampling {
        key.push_str(&format!("|s{}:{}:{}", s.windows, s.warm_insts, s.window_insts));
    }
    key
}

/// The additive reseeding constant for retried fault-injected runs
/// (the 64-bit golden ratio, scaled per attempt) — retries explore a
/// different fault schedule rather than deterministically replaying the
/// same injected failure.
const RESEED_GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derives the attempt-specific core configuration for a retried cell:
/// attempt 1 is the configuration as given; later attempts reseed the
/// fault plan (when one is armed) so each retry explores a different
/// fault schedule. Returns the configuration and the effective fault
/// seed (0 when fault injection is off) — the seed journaled on the
/// attempt's `start` line. Shared by the [`Sweep`] retry loop and the
/// `phast-serve` lease-reclaim requeue path, which must journal the same
/// reseeding a batch sweep would.
pub fn reseed_for_attempt(cfg: &CoreConfig, attempt: u64) -> (CoreConfig, u64) {
    let mut cfg_attempt = cfg.clone();
    if attempt > 1 {
        if let Some(f) = &mut cfg_attempt.check.faults {
            f.seed ^= RESEED_GOLDEN.wrapping_mul(attempt);
        }
    }
    let seed = cfg_attempt.check.faults.as_ref().map_or(0, |f| f.seed);
    (cfg_attempt, seed)
}

/// Assembles the per-window runs of one (workload, predictor) cell into a
/// [`RunResult`]: statistics are the window sums (so the cell's IPC is
/// the ratio-of-sums estimate), `sampling` carries the estimate metadata,
/// and the first window failure (if any) degrades the cell.
fn assemble_sampled(
    workload: &str,
    label: &str,
    set: &CheckpointSet,
    windows: Vec<(WindowRun, u64, Duration)>,
    capture_wall: Duration,
) -> RunResult {
    let num_paths = windows.iter().map(|(_, p, _)| *p).max().unwrap_or(0);
    let wall = capture_wall + windows.iter().map(|(_, _, d)| *d).sum::<Duration>();
    let runs: Vec<WindowRun> = windows.into_iter().map(|(r, _, _)| r).collect();
    let failure = runs.iter().find_map(|r| r.failure.clone().map(RunFailure::Sim));
    let est = estimate(set, &runs);
    RunResult {
        workload: workload.to_string(),
        predictor: label.to_string(),
        stats: sum_window_stats(&runs),
        num_paths,
        failure,
        wall,
        sampling: Some(SamplingMeta {
            windows: est.windows,
            window_insts: set.window_insts,
            warm_insts: set.warm_insts,
            measured_insts: est.measured_insts,
            warmed_insts: est.warmed_insts,
            fast_forwarded_insts: est.fast_forwarded_insts,
            horizon: est.horizon,
            ipc_ci_half: est.ipc_ci_half,
            full_ipc: None,
            ipc_error: None,
        }),
        attempts: 1,
        replay: None,
    }
}

/// Builds and samples one (workload, predictor kind) pair serially:
/// capture, then every window in checkpoint order. The grid path
/// ([`Sweep::run_grid`] on a sampling sweep) instead captures once per
/// workload and fans windows across the pool.
pub(crate) fn execute_sampled(
    workload: &Workload,
    kind: &PredictorKind,
    cfg: &CoreConfig,
    budget: &Budget,
    scfg: &SampleConfig,
) -> RunResult {
    let start = Instant::now();
    let program = workload.build(budget.workload_iters);
    let set = capture(&program, cfg, scfg, budget.insts).expect("workloads emulate cleanly");
    let capture_wall = start.elapsed();
    let mut core_cfg = cfg.clone();
    core_cfg.train_point = kind.train_point();
    let windows: Vec<(WindowRun, u64, Duration)> = (0..set.checkpoints.len())
        .map(|j| {
            let t = Instant::now();
            let mut predictor = kind.build(&program, budget.insts);
            let run =
                run_window_within(&program, &core_cfg, predictor.as_mut(), &set, j, &Deadline::none());
            (run, predictor.num_paths(), t.elapsed())
        })
        .collect();
    assemble_sampled(workload.name, &kind.label(), &set, windows, capture_wall)
}

/// A sweep: a worker pool plus the scoped degraded-run registry and run
/// log for one experiment.
///
/// Create one per experiment ([`Sweep::parallel`] in binaries,
/// [`Sweep::serial`] where determinism is being *checked* against the
/// parallel path), run the matrix through it, then drain
/// [`Sweep::take_degraded`] and/or [`Sweep::artifact`].
#[derive(Debug, Default)]
pub struct Sweep {
    workers: usize,
    /// Lanes per worker thread for full-detail grid sweeps; `<= 1` runs
    /// every cell solo (the serial reference path).
    lanes: usize,
    sampling: Option<SampleConfig>,
    degraded: Mutex<Vec<String>>,
    records: Mutex<Vec<RunRecord>>,
    run_timeout: Option<Duration>,
    max_attempts: u64,
    journal: Option<JournalScope>,
    deadline_runs: AtomicUsize,
}

impl Sweep {
    /// A sweep with an explicit worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Sweep {
        Sweep { workers: workers.max(1), ..Sweep::default() }
    }

    /// Arms a per-run wall-clock watchdog: any single run (or sampled
    /// window) exceeding `timeout` is cut off cooperatively and degrades
    /// with `SimError::Deadline` instead of hanging its worker thread.
    pub fn with_run_timeout(mut self, timeout: Duration) -> Sweep {
        self.run_timeout = Some(timeout);
        self
    }

    /// Enables the retry policy: a run that fails is re-executed up to
    /// `max_attempts` total attempts. Fault-injected runs are reseeded
    /// per attempt so a retry explores a different fault schedule; a
    /// deterministic failure simply fails `max_attempts` times and
    /// degrades with its final error.
    pub fn with_retries(mut self, max_attempts: u64) -> Sweep {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Attaches a run journal scope: every cell logs `start`/`done`
    /// lines write-ahead, and cells the journal already holds as `ok`
    /// are replayed from their journaled records instead of re-simulated.
    pub fn with_journal(mut self, scope: JournalScope) -> Sweep {
        self.journal = Some(scope);
        self
    }

    /// Runs cut off by the wall-clock watchdog so far (feeds the
    /// process exit-code taxonomy).
    pub fn deadline_count(&self) -> usize {
        self.deadline_runs.load(Ordering::Relaxed)
    }

    /// A fresh per-run deadline from this sweep's watchdog setting.
    fn deadline(&self) -> Deadline {
        match self.run_timeout {
            Some(t) => Deadline::after(t),
            None => Deadline::none(),
        }
    }

    /// Sets the lane count: full-detail grid sweeps ([`Sweep::run_all`],
    /// [`Sweep::run_grid`]) advance up to `lanes` cells per worker thread
    /// through one interleaved [`LaneBatch`] cycle loop, recycling cache
    /// hierarchies across waves. Statistics are byte-identical to the
    /// solo path at any lane count (`--lanes=1` forces solo execution for
    /// A/B debugging); journal records and the retry policy behave
    /// identically too. Sampled sweeps ignore the lane count — their
    /// unit of work is the (predictor, window) pair, already finer than
    /// a cell.
    pub fn with_lanes(mut self, lanes: usize) -> Sweep {
        self.lanes = lanes.max(1);
        self
    }

    /// The lane count grid sweeps batch cells at (1 = solo execution).
    pub fn lanes(&self) -> usize {
        self.lanes.max(1)
    }

    /// Switches this sweep to sampled mode: the run methods
    /// ([`Sweep::run_one`], [`Sweep::run_all`], [`Sweep::run_grid`])
    /// estimate each (workload, predictor) cell from detailed windows
    /// via `phast-sample` instead of simulating the whole budget
    /// cycle-accurately. [`Sweep::run_custom`] and [`Sweep::map`] are
    /// unaffected.
    pub fn with_sampling(mut self, scfg: SampleConfig) -> Sweep {
        self.sampling = Some(scfg);
        self
    }

    /// The sampling configuration, if this sweep runs in sampled mode.
    pub fn sampling(&self) -> Option<SampleConfig> {
        self.sampling
    }

    /// A serial sweep (one worker, no threads spawned).
    pub fn serial() -> Sweep {
        Sweep::with_workers(1)
    }

    /// A parallel sweep sized to the host
    /// (`std::thread::available_parallelism()`, overridable with the
    /// `PHAST_WORKERS` environment variable).
    pub fn parallel() -> Sweep {
        Sweep::with_workers(pool::default_workers())
    }

    /// The worker count this sweep fans runs across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Fans `f` over `items` on this sweep's worker pool; results come
    /// back **in item order**. For work that is not a plain (workload,
    /// predictor) pair — oracle builds, direction-predictor studies,
    /// custom predictor variants.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        pool::run_matrix(self.workers, items, f)
    }

    /// Records results in the order given: degraded runs go to this
    /// sweep's registry (and stderr), every run goes to the artifact log
    /// — results replayed from a resume journal emit their journaled
    /// record verbatim, so the artifact is byte-identical to an
    /// uninterrupted sweep's. Deadline-cut runs bump the counter behind
    /// [`Sweep::deadline_count`]. The [`Sweep`] run methods call this
    /// internally; call it yourself only after producing [`RunResult`]s
    /// via [`simulate_run`] in a custom [`Sweep::map`].
    pub fn record_all(&self, runs: &[RunResult]) {
        let mut degraded = self.degraded.lock().expect("degraded-run registry");
        let mut records = self.records.lock().expect("run log");
        for run in runs {
            if let Some(entry) = run.degraded_entry() {
                eprintln!("warning: degraded run — {entry}");
                degraded.push(entry);
            }
            if run.failure.as_ref().is_some_and(|f| f.kind() == "deadline") {
                self.deadline_runs.fetch_add(1, Ordering::Relaxed);
            }
            match &run.replay {
                Some(record) => records.push(record.clone()),
                None => records.push(run.to_record()),
            }
        }
    }

    /// Executes one full-detail cell with the resilience machinery:
    /// journal replay (a cell the journal holds as `ok` is not
    /// re-simulated), write-ahead `start`/`done` logging, panic
    /// isolation, the per-run deadline watchdog, and the capped retry
    /// policy with per-attempt fault reseeding.
    fn execute_cell(
        &self,
        workload: &Workload,
        kind: &PredictorKind,
        cfg: &CoreConfig,
        budget: &Budget,
    ) -> RunResult {
        let key = cell_key(workload.name, &kind.label(), cfg, budget, None);
        if let Some(done) = self.journal.as_ref().and_then(|j| j.lookup(&key)) {
            return replayed_result(done);
        }
        let max_attempts = self.max_attempts.max(1);
        let mut attempt = 0u64;
        loop {
            attempt += 1;
            let (cfg_attempt, seed) = reseed_for_attempt(cfg, attempt);
            if let Some(j) = &self.journal {
                j.log_start(&key, attempt, seed);
            }
            let deadline = self.deadline();
            let mut run = execute_cell_once(workload, kind, &cfg_attempt, budget, &deadline);
            run.attempts = attempt;
            if run.ok() || attempt >= max_attempts {
                if let Some(j) = &self.journal {
                    let status = run.failure.as_ref().map_or("ok", RunFailure::kind);
                    j.log_done(&key, &run.to_record(), status, attempt);
                }
                return run;
            }
        }
    }

    /// The retry/journal tail shared by the solo and lane-batched cell
    /// paths: given the attempt-1 result, retries solo (with per-attempt
    /// fault reseeding and write-ahead `start` lines) until the run
    /// succeeds or the attempt budget runs out, then logs the `done`
    /// line. Produces exactly the journal record sequence
    /// [`Sweep::execute_cell`] does.
    fn finish_cell(
        &self,
        workload: &Workload,
        kind: &PredictorKind,
        cfg: &CoreConfig,
        budget: &Budget,
        key: &str,
        mut run: RunResult,
    ) -> RunResult {
        let max_attempts = self.max_attempts.max(1);
        let mut attempt = 1u64;
        while !run.ok() && attempt < max_attempts {
            attempt += 1;
            let (cfg_attempt, seed) = reseed_for_attempt(cfg, attempt);
            if let Some(j) = &self.journal {
                j.log_start(key, attempt, seed);
            }
            let deadline = self.deadline();
            run = execute_cell_once(workload, kind, &cfg_attempt, budget, &deadline);
            run.attempts = attempt;
        }
        if let Some(j) = &self.journal {
            let status = run.failure.as_ref().map_or("ok", RunFailure::kind);
            j.log_done(key, &run.to_record(), status, attempt);
        }
        run
    }

    /// Runs one contiguous chunk of live grid cells as a single
    /// [`LaneBatch`]: write-ahead `start` lines for every cell first
    /// (the whole chunk is in flight at once), then the interleaved
    /// batch, then the per-cell retry/`done` tail. Build panics are
    /// caught per cell, so a cell whose program or predictor
    /// construction panics degrades alone — the same boundary
    /// [`execute_cell_once`] gives solo cells.
    fn run_lane_chunk(
        &self,
        kinds: &[PredictorKind],
        workloads: &[Workload],
        cells: &[(usize, usize)],
        idxs: &[usize],
        cfg: &CoreConfig,
        budget: &Budget,
    ) -> Vec<RunResult> {
        let mut results: Vec<Option<RunResult>> = (0..idxs.len()).map(|_| None).collect();
        let mut jobs: Vec<LaneJob> = Vec::with_capacity(idxs.len());
        let mut job_slots: Vec<usize> = Vec::with_capacity(idxs.len());
        for (slot, &i) in idxs.iter().enumerate() {
            let (k, w) = cells[i];
            let (workload, kind) = (&workloads[w], &kinds[k]);
            let key = cell_key(workload.name, &kind.label(), cfg, budget, None);
            let (cfg_attempt, seed) = reseed_for_attempt(cfg, 1);
            if let Some(j) = &self.journal {
                j.log_start(&key, 1, seed);
            }
            match pool::catch_job(|| {
                build_lane_job(workload, kind, &cfg_attempt, budget, self.deadline())
            }) {
                Ok(job) => {
                    jobs.push(job);
                    job_slots.push(slot);
                }
                Err(p) => {
                    results[slot] = Some(panicked_result(workload.name, &kind.label(), p));
                }
            }
        }
        let reports = LaneBatch::new(self.lanes()).run(jobs);
        for (slot, report) in job_slots.into_iter().zip(reports) {
            let (k, w) = cells[idxs[slot]];
            results[slot] =
                Some(lane_run_result(workloads[w].name, &kinds[k].label(), report));
        }
        idxs.iter()
            .zip(results)
            .map(|(&i, run)| {
                let (k, w) = cells[i];
                let (workload, kind) = (&workloads[w], &kinds[k]);
                let key = cell_key(workload.name, &kind.label(), cfg, budget, None);
                self.finish_cell(workload, kind, cfg, budget, &key, run.expect("cell resolved"))
            })
            .collect()
    }

    /// The lane-batched full-detail grid path: journal replay first,
    /// then the live cells split into one contiguous chunk per worker,
    /// each chunk advancing as an interleaved [`LaneBatch`] (waves of
    /// [`Sweep::lanes`] cells, hierarchies recycled between waves).
    /// Results come back in cell order; statistics are byte-identical
    /// to the solo path.
    fn run_cells_lanes(
        &self,
        kinds: &[PredictorKind],
        workloads: &[Workload],
        cells: &[(usize, usize)],
        cfg: &CoreConfig,
        budget: &Budget,
    ) -> Vec<RunResult> {
        let mut results: Vec<Option<RunResult>> = cells
            .iter()
            .map(|&(k, w)| {
                let key = cell_key(workloads[w].name, &kinds[k].label(), cfg, budget, None);
                self.journal.as_ref().and_then(|j| j.lookup(&key)).map(replayed_result)
            })
            .collect();
        let live: Vec<usize> = (0..cells.len()).filter(|&i| results[i].is_none()).collect();
        if !live.is_empty() {
            let per_chunk = live.len().div_ceil(self.workers.max(1)).max(1);
            let chunks: Vec<&[usize]> = live.chunks(per_chunk).collect();
            let chunk_runs = self.map(&chunks, |_, idxs| {
                self.run_lane_chunk(kinds, workloads, cells, idxs, cfg, budget)
            });
            for (idxs, runs) in chunks.iter().zip(chunk_runs) {
                for (&i, run) in idxs.iter().zip(runs) {
                    results[i] = Some(run);
                }
            }
        }
        results.into_iter().map(|r| r.expect("every cell resolved")).collect()
    }

    /// Fans arbitrary run-producing jobs across the pool with **panic
    /// isolation** and records every result: a job that panics yields a
    /// degraded [`RunResult`] (failure kind `"panicked"`, labelled via
    /// `label`) while every other job completes normally. This is the
    /// resilient counterpart of [`Sweep::map`] + [`Sweep::record_all`]
    /// for custom work that is not a plain (workload, predictor) cell.
    pub fn run_jobs<T>(
        &self,
        items: &[T],
        label: impl Fn(usize, &T) -> (String, String) + Sync,
        exec: impl Fn(usize, &T) -> RunResult + Sync,
    ) -> Vec<RunResult>
    where
        T: Sync,
    {
        let runs: Vec<RunResult> = pool::run_matrix_isolated(self.workers, items, &exec)
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Ok(run) => run,
                Err(p) => {
                    let (workload, predictor) = label(i, &items[i]);
                    panicked_result(&workload, &predictor, p)
                }
            })
            .collect();
        self.record_all(&runs);
        runs
    }

    /// Runs an already-built predictor on an already-built program and
    /// records the outcome on this sweep.
    pub fn run_custom(
        &self,
        workload: &str,
        label: &str,
        program: &Program,
        cfg: &CoreConfig,
        predictor: &mut dyn MemDepPredictor,
        insts: u64,
    ) -> RunResult {
        let run = simulate_run(workload, label, program, cfg, predictor, insts);
        self.record_all(std::slice::from_ref(&run));
        run
    }

    /// Runs one workload under one predictor on the given core.
    pub fn run_one(
        &self,
        workload: &Workload,
        kind: &PredictorKind,
        cfg: &CoreConfig,
        budget: &Budget,
    ) -> RunResult {
        let run = match &self.sampling {
            Some(scfg) => execute_sampled(workload, kind, cfg, budget, scfg),
            None => self.execute_cell(workload, kind, cfg, budget),
        };
        self.record_all(std::slice::from_ref(&run));
        run
    }

    /// Runs every budgeted workload under one predictor, fanned across
    /// the pool; returns per-workload results in registry order.
    pub fn run_all(&self, kind: &PredictorKind, cfg: &CoreConfig, budget: &Budget) -> Vec<RunResult> {
        if self.sampling.is_some() || self.lanes() > 1 {
            return self
                .run_grid(std::slice::from_ref(kind), cfg, budget)
                .pop()
                .expect("one row per kind");
        }
        let workloads = budget.workloads();
        let runs = self.map(&workloads, |_, w| self.execute_cell(w, kind, cfg, budget));
        self.record_all(&runs);
        runs
    }

    /// Runs the full (predictor kind × workload) grid as **one** flat
    /// matrix across the pool — the shape most figures have. Returns one
    /// row of per-workload results (registry order) per kind, in kind
    /// order; equivalent to mapping [`Sweep::run_all`] over `kinds`, but
    /// with maximal parallelism across the whole grid.
    pub fn run_grid(
        &self,
        kinds: &[PredictorKind],
        cfg: &CoreConfig,
        budget: &Budget,
    ) -> Vec<Vec<RunResult>> {
        if let Some(scfg) = self.sampling {
            return self.run_grid_sampled(kinds, cfg, budget, scfg);
        }
        let workloads = budget.workloads();
        let cells: Vec<(usize, usize)> = (0..kinds.len())
            .flat_map(|k| (0..workloads.len()).map(move |w| (k, w)))
            .collect();
        let flat = if self.lanes() > 1 {
            self.run_cells_lanes(kinds, &workloads, &cells, cfg, budget)
        } else {
            self.map(&cells, |_, &(k, w)| {
                self.execute_cell(&workloads[w], &kinds[k], cfg, budget)
            })
        };
        self.record_all(&flat);
        let mut rows: Vec<Vec<RunResult>> = Vec::with_capacity(kinds.len());
        let mut flat = flat.into_iter();
        for _ in kinds {
            rows.push(flat.by_ref().take(workloads.len()).collect());
        }
        rows
    }

    /// The sampled grid: **capture once per workload**, then fan every
    /// (kind, workload, window) triple across the pool — windows replay
    /// independently from their checkpoints, so the grid parallelizes at
    /// window granularity rather than cell granularity. Results regroup
    /// into the same `rows[kind][workload]` shape as the full-detail
    /// grid; the capture wall-clock is attributed once per workload (to
    /// the first kind's cell) so summed walls reflect real cost.
    fn run_grid_sampled(
        &self,
        kinds: &[PredictorKind],
        cfg: &CoreConfig,
        budget: &Budget,
        scfg: SampleConfig,
    ) -> Vec<Vec<RunResult>> {
        let rows = self.sampled_grid(kinds, cfg, budget, scfg);
        let all: Vec<RunResult> = rows.iter().flatten().cloned().collect();
        self.record_all(&all);
        rows
    }

    /// [`run_grid_sampled`](Self::run_grid_sampled) without the run-log
    /// recording — for callers (the `sampled` validation experiment) that
    /// annotate the results before recording them.
    pub(crate) fn sampled_grid(
        &self,
        kinds: &[PredictorKind],
        cfg: &CoreConfig,
        budget: &Budget,
        scfg: SampleConfig,
    ) -> Vec<Vec<RunResult>> {
        let workloads = budget.workloads();
        // Journal replay at cell granularity: a (kind, workload) cell the
        // journal holds as `ok` is emitted verbatim; a workload none of
        // whose cells are live skips its capture pass entirely.
        let replays: Vec<Vec<Option<CompletedRun>>> = kinds
            .iter()
            .map(|kind| {
                workloads
                    .iter()
                    .map(|w| {
                        self.journal.as_ref().and_then(|j| {
                            j.lookup(&cell_key(w.name, &kind.label(), cfg, budget, Some(&scfg)))
                        })
                    })
                    .collect()
            })
            .collect();
        let live: Vec<bool> = (0..workloads.len())
            .map(|w| (0..kinds.len()).any(|k| replays[k][w].is_none()))
            .collect();
        let capture_idx: Vec<usize> = (0..workloads.len()).collect();
        let captures: Vec<Option<(Program, CheckpointSet, Duration)>> =
            self.map(&capture_idx, |_, &w| {
                if !live[w] {
                    return None;
                }
                let t = Instant::now();
                let program = workloads[w].build(budget.workload_iters);
                let set = capture(&program, cfg, &scfg, budget.insts)
                    .expect("workloads emulate cleanly");
                let wall = t.elapsed();
                Some((program, set, wall))
            });
        let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
        for (k, kind) in kinds.iter().enumerate() {
            for (w, capture) in captures.iter().enumerate() {
                if replays[k][w].is_some() {
                    continue;
                }
                let set = &capture.as_ref().expect("live workload was captured").1;
                // Write-ahead: the start line lands before the cell's
                // windows enter the pool.
                if let Some(j) = &self.journal {
                    j.log_start(
                        &cell_key(workloads[w].name, &kind.label(), cfg, budget, Some(&scfg)),
                        1,
                        0,
                    );
                }
                for j in 0..set.checkpoints.len() {
                    tasks.push((k, w, j));
                }
            }
        }
        // Windows run under panic isolation and a per-window deadline: a
        // single poisoned or hung window degrades its cell, not the grid.
        let flat = self.map(&tasks, |_, &(k, w, j)| {
            pool::catch_job(|| {
                let (program, set, _) = captures[w].as_ref().expect("live workload was captured");
                let t = Instant::now();
                let mut core_cfg = cfg.clone();
                core_cfg.train_point = kinds[k].train_point();
                let mut predictor = kinds[k].build(program, budget.insts);
                let deadline = self.deadline();
                let run = run_window_within(program, &core_cfg, predictor.as_mut(), set, j, &deadline);
                (run, predictor.num_paths(), t.elapsed())
            })
        });
        let mut flat = flat.into_iter();
        let mut rows: Vec<Vec<RunResult>> = Vec::with_capacity(kinds.len());
        for (k, kind) in kinds.iter().enumerate() {
            let mut row = Vec::with_capacity(workloads.len());
            for (w, workload) in workloads.iter().enumerate() {
                if let Some(done) = &replays[k][w] {
                    row.push(replayed_result(done.clone()));
                    continue;
                }
                let (_, set, capture_wall) =
                    captures[w].as_ref().expect("live workload was captured");
                let n = set.checkpoints.len();
                let mut windows = Vec::with_capacity(n);
                let mut panic: Option<JobPanic> = None;
                for r in flat.by_ref().take(n) {
                    match r {
                        Ok(win) => windows.push(win),
                        Err(p) => panic = Some(p),
                    }
                }
                let first_live = (0..kinds.len()).find(|&kk| replays[kk][w].is_none());
                let capture_share =
                    if first_live == Some(k) { *capture_wall } else { Duration::ZERO };
                let mut cell = match panic {
                    Some(p) => panicked_result(workload.name, &kind.label(), p),
                    None => {
                        assemble_sampled(workload.name, &kind.label(), set, windows, capture_share)
                    }
                };
                cell.attempts = 1;
                if let Some(jn) = &self.journal {
                    let status = cell.failure.as_ref().map_or("ok", RunFailure::kind);
                    jn.log_done(
                        &cell_key(workload.name, &kind.label(), cfg, budget, Some(&scfg)),
                        &cell.to_record(),
                        status,
                        1,
                    );
                }
                row.push(cell);
            }
            rows.push(row);
        }
        rows
    }

    /// Flags a failure that is not a single run's [`SimError`] — e.g. a
    /// sampled estimate landing outside its documented error bound — so
    /// it reaches the degraded-run registry (and the binary's non-zero
    /// exit) like any other degradation.
    pub fn flag_degraded(&self, entry: String) {
        eprintln!("warning: degraded run — {entry}");
        self.degraded.lock().expect("degraded-run registry").push(entry);
    }

    /// Drains the recorded degraded-run descriptions (the experiment
    /// binary reports them once all experiments have run).
    pub fn take_degraded(&self) -> Vec<String> {
        std::mem::take(&mut *self.degraded.lock().expect("degraded-run registry"))
    }

    /// Snapshots this sweep's state into a machine-readable
    /// [`SweepArtifact`] (the run log and degraded registry are copied,
    /// not drained).
    pub fn artifact(&self, id: &str, budget: &Budget, wall: Duration) -> SweepArtifact {
        SweepArtifact {
            id: id.to_string(),
            git: git_describe(),
            workers: self.workers,
            budget_insts: budget.insts,
            budget_iters: budget.workload_iters,
            workloads: budget.workloads().len(),
            wall_s: wall.as_secs_f64(),
            runs: self.records.lock().expect("run log").clone(),
            degraded: self.degraded.lock().expect("degraded-run registry").clone(),
        }
    }
}

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Normalized IPC of `runs` against matching `ideal` runs (same order).
pub fn normalized_ipc(runs: &[RunResult], ideal: &[RunResult]) -> Vec<f64> {
    runs.iter()
        .zip(ideal)
        .map(|(r, i)| {
            debug_assert_eq!(r.workload, i.workload);
            r.stats.ipc() / i.stats.ipc()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_cover_workloads() {
        assert_eq!(Budget::full().workloads().len(), 23);
        assert_eq!(Budget::quick().workloads().len(), 6);
        assert_eq!(Budget::bench().workloads().len(), 2);
        assert_eq!(Budget::sampled().workloads().len(), 23);
    }

    #[test]
    fn sampling_defaults_scale_with_the_tier() {
        assert_eq!(Budget::quick().default_sampling(), SampleConfig::default());
        assert_eq!(Budget::full().default_sampling(), SampleConfig::default());
        let deep = Budget::sampled().default_sampling();
        assert!(deep.windows > SampleConfig::default().windows);
    }

    #[test]
    fn sampled_sweep_estimates_cells() {
        let budget = Budget { insts: 12_000, workload_iters: 100_000, max_workloads: Some(2) };
        let cfg = CoreConfig::alder_lake();
        let scfg = SampleConfig::new(3, 600, 400);
        let sweep = Sweep::with_workers(4).with_sampling(scfg);
        let kinds = [PredictorKind::StoreSets, PredictorKind::Blind];
        let grid = sweep.run_grid(&kinds, &cfg, &budget);
        assert_eq!(grid.len(), 2);
        for row in &grid {
            assert_eq!(row.len(), 2);
            for r in row {
                assert!(r.ok(), "{} × {} degraded", r.workload, r.predictor);
                let meta = r.sampling.as_ref().expect("sampled metadata");
                assert_eq!(meta.horizon, 12_000);
                assert!(meta.windows >= 1);
                assert!(meta.measured_insts > 0);
                assert!(r.stats.ipc() > 0.0);
            }
        }
        assert!(sweep.take_degraded().is_empty());

        // The window-parallel grid and the serial per-cell path agree:
        // capture and replay are deterministic.
        let serial = Sweep::serial().with_sampling(scfg);
        let w = budget.workloads();
        let one = serial.run_one(&w[0], &kinds[0], &cfg, &budget);
        assert_eq!(one.stats.cycles, grid[0][0].stats.cycles);
        assert_eq!(one.stats.committed, grid[0][0].stats.committed);
        assert_eq!(one.stats.violations, grid[0][0].stats.violations);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn run_one_produces_stats() {
        let w = phast_workloads::by_name("exchange2").unwrap();
        let budget = Budget { insts: 5_000, workload_iters: 50_000, max_workloads: None };
        let sweep = Sweep::serial();
        let r = sweep.run_one(&w, &PredictorKind::Blind, &CoreConfig::alder_lake(), &budget);
        assert_eq!(r.workload, "exchange2");
        assert!(r.stats.committed >= 5_000);
        assert!(r.stats.ipc() > 0.0);
        assert!(sweep.take_degraded().is_empty());
    }

    #[test]
    fn degraded_registries_are_scoped_per_sweep() {
        let w = phast_workloads::by_name("exchange2").unwrap();
        let budget = Budget { insts: 5_000, workload_iters: 50_000, max_workloads: None };
        let mut poisoned = CoreConfig::alder_lake();
        poisoned.deadlock_cycles = 2;

        let bad_sweep = Sweep::serial();
        let clean_sweep = Sweep::serial();
        let bad = bad_sweep.run_one(&w, &PredictorKind::Blind, &poisoned, &budget);
        let good =
            clean_sweep.run_one(&w, &PredictorKind::Blind, &CoreConfig::alder_lake(), &budget);
        assert!(!bad.ok());
        assert!(good.ok());

        // Each sweep saw only its own runs.
        assert_eq!(bad_sweep.take_degraded().len(), 1);
        assert!(clean_sweep.take_degraded().is_empty());
    }

    #[test]
    fn artifact_reflects_the_run_log() {
        let w = phast_workloads::by_name("exchange2").unwrap();
        let budget = Budget { insts: 5_000, workload_iters: 50_000, max_workloads: Some(1) };
        let sweep = Sweep::serial();
        sweep.run_one(&w, &PredictorKind::Blind, &CoreConfig::alder_lake(), &budget);
        let a = sweep.artifact("smoke", &budget, Duration::from_millis(10));
        assert_eq!(a.id, "smoke");
        assert_eq!(a.workers, 1);
        assert_eq!(a.runs.len(), 1);
        assert_eq!(a.runs[0].workload, "exchange2");
        assert!(a.runs[0].degraded.is_none());
        assert!(a.degraded.is_empty());
    }

    #[test]
    fn grid_matches_per_kind_runs() {
        let budget = Budget { insts: 3_000, workload_iters: 20_000, max_workloads: Some(2) };
        let cfg = CoreConfig::alder_lake();
        let kinds = [PredictorKind::Blind, PredictorKind::TotalOrder];
        let grid = Sweep::with_workers(4).run_grid(&kinds, &cfg, &budget);
        assert_eq!(grid.len(), 2);
        let serial = Sweep::serial();
        for (kind, row) in kinds.iter().zip(&grid) {
            let expect = serial.run_all(kind, &cfg, &budget);
            assert_eq!(row.len(), expect.len());
            for (a, b) in row.iter().zip(&expect) {
                assert_eq!(a.workload, b.workload);
                assert_eq!(a.stats.cycles, b.stats.cycles, "{} × {}", a.workload, a.predictor);
                assert_eq!(a.stats.committed, b.stats.committed);
            }
        }
    }
}
