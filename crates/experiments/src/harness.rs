//! Shared simulation harness: budgets, per-run results, aggregation, and
//! graceful degradation — a run that fails with a [`SimError`] is recorded
//! (with its partial statistics) and reported at the end of the experiment
//! binary instead of aborting every remaining (workload, predictor) pair.

use crate::predictors::PredictorKind;
use phast_isa::Program;
use phast_mdp::MemDepPredictor;
use phast_ooo::{try_simulate, CoreConfig, SimError, SimStats};
use phast_workloads::Workload;
use std::sync::Mutex;

/// Degraded runs recorded since the last [`take_degraded`], newest last.
static DEGRADED: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Drains the recorded degraded-run descriptions (the experiment binary
/// reports them once all experiments have run).
pub fn take_degraded() -> Vec<String> {
    std::mem::take(&mut *DEGRADED.lock().expect("degraded-run registry"))
}

/// How much work an experiment may do. The binary runs at
/// [`Budget::full`]; the Criterion benches and tests use
/// [`Budget::quick`].
#[derive(Clone, Debug)]
pub struct Budget {
    /// Instructions simulated per (workload, predictor) pair.
    pub insts: u64,
    /// Outer-loop iterations the workloads are built with.
    pub workload_iters: u64,
    /// Restrict to the first `n` workloads (None = all 23).
    pub max_workloads: Option<usize>,
}

impl Budget {
    /// The full budget used by `cargo run -p phast-experiments`.
    pub fn full() -> Budget {
        Budget { insts: 300_000, workload_iters: 1_000_000, max_workloads: None }
    }

    /// A reduced budget for benches and smoke tests.
    pub fn quick() -> Budget {
        Budget { insts: 40_000, workload_iters: 200_000, max_workloads: Some(6) }
    }

    /// The workloads this budget covers.
    pub fn workloads(&self) -> Vec<Workload> {
        let mut all = phast_workloads::all_workloads();
        if let Some(n) = self.max_workloads {
            all.truncate(n);
        }
        all
    }
}

/// Result of simulating one (workload, predictor, core config) triple.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Predictor label.
    pub predictor: String,
    /// Full simulator statistics (partial if `failure` is set).
    pub stats: SimStats,
    /// Paths tracked by unlimited predictors (0 for table-based ones).
    pub num_paths: u64,
    /// The error that ended the run early, if it could not finish cleanly.
    pub failure: Option<SimError>,
}

impl RunResult {
    /// True if the run finished cleanly (statistics are a full sample).
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs an already-built predictor on an already-built program, degrading
/// gracefully: a failed run yields its partial statistics plus the
/// [`SimError`], and is recorded for the end-of-binary report.
pub fn run_custom(
    workload: &str,
    label: &str,
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    insts: u64,
) -> RunResult {
    let (stats, failure) = match try_simulate(program, cfg, predictor, insts) {
        Ok(stats) => (stats, None),
        Err(e) => {
            let entry = format!("{workload} × {label}: {e}");
            eprintln!("warning: degraded run — {entry}");
            DEGRADED.lock().expect("degraded-run registry").push(entry);
            (e.partial_stats().clone(), Some(e))
        }
    };
    RunResult {
        workload: workload.to_string(),
        predictor: label.to_string(),
        stats,
        num_paths: predictor.num_paths(),
        failure,
    }
}

/// Runs one workload under one predictor on the given core.
pub fn run_one(
    workload: &Workload,
    kind: &PredictorKind,
    cfg: &CoreConfig,
    budget: &Budget,
) -> RunResult {
    let program = workload.build(budget.workload_iters);
    let mut core_cfg = cfg.clone();
    core_cfg.train_point = kind.train_point();
    let mut predictor = kind.build(&program, budget.insts);
    run_custom(workload.name, &kind.label(), &program, &core_cfg, predictor.as_mut(), budget.insts)
}

/// Runs every budgeted workload under one predictor; returns per-workload
/// results in registry order.
pub fn run_all(kind: &PredictorKind, cfg: &CoreConfig, budget: &Budget) -> Vec<RunResult> {
    budget.workloads().iter().map(|w| run_one(w, kind, cfg, budget)).collect()
}

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Normalized IPC of `runs` against matching `ideal` runs (same order).
pub fn normalized_ipc(runs: &[RunResult], ideal: &[RunResult]) -> Vec<f64> {
    runs.iter()
        .zip(ideal)
        .map(|(r, i)| {
            debug_assert_eq!(r.workload, i.workload);
            r.stats.ipc() / i.stats.ipc()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_cover_workloads() {
        assert_eq!(Budget::full().workloads().len(), 23);
        assert_eq!(Budget::quick().workloads().len(), 6);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn run_one_produces_stats() {
        let w = phast_workloads::by_name("exchange2").unwrap();
        let budget = Budget { insts: 5_000, workload_iters: 50_000, max_workloads: None };
        let r = run_one(&w, &PredictorKind::Blind, &CoreConfig::alder_lake(), &budget);
        assert_eq!(r.workload, "exchange2");
        assert!(r.stats.committed >= 5_000);
        assert!(r.stats.ipc() > 0.0);
    }
}
