//! One runner per table/figure of the paper. Every function takes the
//! [`Sweep`] engine to run on plus a [`Budget`] and returns a displayable
//! report.
//!
//! All runners fan their (workload, predictor, config) matrices across
//! the sweep's worker pool via [`Sweep::run_grid`]/[`Sweep::map`];
//! results are collected by matrix index, so a parallel sweep renders the
//! same bytes as a serial one.

use crate::harness::{geomean, normalized_ipc, Budget, RunResult, Sweep};
use crate::predictors::PredictorKind;
use crate::tablefmt::{f3, pct, TextTable};
use phast_ooo::{simulate_with_direction, CoreConfig};

/// Runs `kinds` prefixed by the ideal predictor as one flat grid; returns
/// the ideal row first, then one row per kind.
fn grid_with_ideal(
    sweep: &Sweep,
    kinds: &[PredictorKind],
    cfg: &CoreConfig,
    budget: &Budget,
) -> (Vec<RunResult>, Vec<Vec<RunResult>>) {
    let mut all = Vec::with_capacity(kinds.len() + 1);
    all.push(PredictorKind::Ideal);
    all.extend(kinds.iter().cloned());
    let mut rows = sweep.run_grid(&all, cfg, budget);
    let ideal = rows.remove(0);
    (ideal, rows)
}

/// Fig. 1: 30 years of branch predictors versus memory dependence
/// predictors, as average MPKI on a Nehalem-like core.
pub mod fig1 {
    use super::*;
    use phast_branch::{Bimodal, DirectionPredictor, GShare, Perceptron, StaticTaken, Tage, TageConfig};

    /// Constructor for one point on the branch-predictor timeline
    /// (`Sync` so the worker pool can build predictors on any thread).
    type DirFactory = Box<dyn Fn() -> Box<dyn DirectionPredictor> + Sync>;

    /// Runs the study.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let cfg = CoreConfig::nehalem();
        let mut out = String::from("Fig. 1 — branch vs memory dependence prediction MPKI (Nehalem-like)\n\n");

        let mut t = TextTable::new(vec!["branch predictor (year)", "avg branch MPKI"]);
        let dirs: Vec<(&str, DirFactory)> = vec![
            ("static-taken (1983)", Box::new(|| Box::new(StaticTaken))),
            ("bimodal (1985)", Box::new(|| Box::new(Bimodal::new(4096)))),
            ("gshare (1993)", Box::new(|| Box::new(GShare::new(8192, 12)))),
            ("perceptron (2001)", Box::new(|| Box::new(Perceptron::new(512, 32)))),
            ("tage (2011)", Box::new(|| Box::new(Tage::new(TageConfig::default())))),
        ];
        // One flat (direction predictor × workload) matrix across the pool.
        let workloads = budget.workloads();
        let cells: Vec<(usize, usize)> = (0..dirs.len())
            .flat_map(|d| (0..workloads.len()).map(move |w| (d, w)))
            .collect();
        let mpki = sweep.map(&cells, |_, &(d, w)| {
            let program = workloads[w].build(budget.workload_iters);
            let kind = PredictorKind::StoreSets;
            let mut pred = kind.build(&program, budget.insts);
            let mut c = cfg.clone();
            c.train_point = kind.train_point();
            let stats =
                simulate_with_direction(&program, &c, pred.as_mut(), dirs[d].1(), budget.insts);
            stats.branch_mpki()
        });
        for (d, (name, _)) in dirs.iter().enumerate() {
            let row = &mpki[d * workloads.len()..(d + 1) * workloads.len()];
            let avg = row.iter().sum::<f64>() / row.len() as f64;
            t.row(vec![name.to_string(), f3(avg)]);
        }
        out.push_str(&t.to_string());

        let mut t = TextTable::new(vec![
            "memory dependence predictor (year)",
            "avg MPKI violations (FN)",
            "avg MPKI false deps (FP)",
        ]);
        let mdps = [
            ("store-sets (1998)", PredictorKind::StoreSets),
            ("cht (1999)", PredictorKind::Cht),
            ("store-vector (2006)", PredictorKind::StoreVector),
            ("nosq (2006)", PredictorKind::NoSq),
            ("mdp-tage (2018)", PredictorKind::MdpTage),
            ("phast (2024)", PredictorKind::Phast),
        ];
        let kinds: Vec<PredictorKind> = mdps.iter().map(|(_, k)| k.clone()).collect();
        let rows = sweep.run_grid(&kinds, &cfg, budget);
        for ((name, _), runs) in mdps.iter().zip(&rows) {
            let fnm = runs.iter().map(|r| r.stats.violation_mpki()).sum::<f64>() / runs.len() as f64;
            let fpm = runs.iter().map(|r| r.stats.false_dep_mpki()).sum::<f64>() / runs.len() as f64;
            t.row(vec![name.to_string(), f3(fnm), f3(fpm)]);
        }
        out.push('\n');
        out.push_str(&t.to_string());
        out
    }
}

/// Fig. 2: MDP MPKI (a) and gap to ideal (b) across processor generations.
pub mod fig2 {
    use super::*;

    /// Runs the study.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let kinds = PredictorKind::headline();
        let mut mpki_t = TextTable::new(vec![
            "generation",
            "store-sets",
            "nosq",
            "mdp-tage",
            "mdp-tage-s",
            "phast",
        ]);
        let mut gap_t = mpki_t.clone();
        for cfg in CoreConfig::generations() {
            let (ideal, rows) = grid_with_ideal(sweep, &kinds, &cfg, budget);
            let mut mpki_row = vec![cfg.name.to_string()];
            let mut gap_row = vec![cfg.name.to_string()];
            for runs in &rows {
                let avg_mpki =
                    runs.iter().map(|r| r.stats.total_mpki()).sum::<f64>() / runs.len() as f64;
                let gap = 1.0 - geomean(&normalized_ipc(runs, &ideal));
                mpki_row.push(f3(avg_mpki));
                gap_row.push(pct(gap));
            }
            mpki_t.row(mpki_row);
            gap_t.row(gap_row);
        }
        format!(
            "Fig. 2a — average MDP MPKI per processor generation\n\n{mpki_t}\n\
             Fig. 2b — performance gap versus ideal MDP (lower is better)\n\n{gap_t}"
        )
    }
}

/// Fig. 4: percentage of loads depending on multiple stores.
pub mod fig4 {
    use super::*;
    use phast_mdp::{DepOracle, MultiStoreStats};

    /// Runs the study (pure emulation, no timing simulation).
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let mut t = TextTable::new(vec![
            "workload",
            "loads",
            "multi-store loads",
            "% of loads",
            "% same base reg",
        ]);
        let workloads = budget.workloads();
        let stats: Vec<MultiStoreStats> = sweep.map(&workloads, |_, w| {
            let program = w.build(budget.workload_iters);
            let oracle = DepOracle::build(&program, budget.insts, 512).expect("emulates");
            oracle.multi_store_stats()
        });
        let mut total_pct = Vec::new();
        for (w, s) in workloads.iter().zip(&stats) {
            total_pct.push(s.multi_pct());
            t.row(vec![
                w.name.to_string(),
                s.loads.to_string(),
                s.multi_store_loads.to_string(),
                format!("{:.3}%", s.multi_pct()),
                format!("{:.1}%", s.same_base_pct()),
            ]);
        }
        let avg = total_pct.iter().sum::<f64>() / total_pct.len() as f64;
        format!(
            "Fig. 4 — loads depending on multiple stores (paper: 0.04% avg, 70% same-register)\n\n{t}\naverage: {avg:.3}%\n"
        )
    }
}

/// Fig. 6: unlimited NoSQ (history 1–16) vs unlimited MDP-TAGE vs
/// unlimited PHAST — normalized IPC and tracked paths.
pub mod fig6 {
    use super::*;

    /// Runs the limit study.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let cfg = CoreConfig::alder_lake();
        let mut t = TextTable::new(vec!["predictor", "norm. IPC (geomean)", "avg paths tracked"]);
        let mut kinds: Vec<PredictorKind> =
            (1..=16).map(PredictorKind::UnlimitedNoSq).collect();
        kinds.push(PredictorKind::UnlimitedMdpTage);
        kinds.push(PredictorKind::UnlimitedPhast(None));
        let (ideal, rows) = grid_with_ideal(sweep, &kinds, &cfg, budget);
        for (kind, runs) in kinds.iter().zip(&rows) {
            let ipc = geomean(&normalized_ipc(runs, &ideal));
            let paths =
                runs.iter().map(|r| r.num_paths as f64).sum::<f64>() / runs.len() as f64;
            t.row(vec![kind.label(), format!("{ipc:.4}"), format!("{paths:.0}")]);
        }
        format!("Fig. 6 — unlimited-predictor limit study (IPC normalized to ideal)\n\n{t}")
    }
}

/// Fig. 7/8/9: UnlimitedPHAST per-workload normalized IPC, MPKI and paths.
pub mod fig789 {
    use super::*;

    /// Runs the per-workload UnlimitedPHAST characterization.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let cfg = CoreConfig::alder_lake();
        let (ideal, rows) =
            grid_with_ideal(sweep, &[PredictorKind::UnlimitedPhast(None)], &cfg, budget);
        let runs = &rows[0];
        let mut t = TextTable::new(vec![
            "workload",
            "norm. IPC (fig 7)",
            "MPKI FN (fig 8)",
            "MPKI FP (fig 8)",
            "paths (fig 9)",
        ]);
        for (r, i) in runs.iter().zip(&ideal) {
            t.row(vec![
                r.workload.clone(),
                format!("{:.4}", r.stats.ipc() / i.stats.ipc()),
                f3(r.stats.violation_mpki()),
                f3(r.stats.false_dep_mpki()),
                r.num_paths.to_string(),
            ]);
        }
        let g = geomean(&normalized_ipc(runs, &ideal));
        format!(
            "Figs. 7-9 — UnlimitedPHAST per workload (paper: 0.47% mean gap to ideal)\n\n{t}\ngeomean normalized IPC: {g:.4} (gap {:.2}%)\n",
            100.0 * (1.0 - g)
        )
    }
}

/// Fig. 10: percentage of unique conflicts detected at each history length.
pub mod fig10 {
    use super::*;
    use crate::harness::simulate_run;
    use phast::UnlimitedPhast;

    /// Runs the study; the histogram needs direct access to the
    /// UnlimitedPHAST internals, so it bypasses the predictor factory.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let workloads = budget.workloads();
        let per_workload: Vec<(RunResult, Vec<u64>)> = sweep.map(&workloads, |_, w| {
            let program = w.build(budget.workload_iters);
            let mut pred = UnlimitedPhast::new();
            let mut cfg = CoreConfig::alder_lake();
            cfg.train_point = PredictorKind::UnlimitedPhast(None).train_point();
            let run = simulate_run(w.name, "unl-phast", &program, &cfg, &mut pred, budget.insts);
            (run, pred.length_histogram().to_vec())
        });
        let runs: Vec<RunResult> = per_workload.iter().map(|(r, _)| r.clone()).collect();
        sweep.record_all(&runs);
        let mut histogram: Vec<u64> = Vec::new();
        for (_, h) in &per_workload {
            for (len, &n) in h.iter().enumerate() {
                if histogram.len() <= len {
                    histogram.resize(len + 1, 0);
                }
                histogram[len] += n;
            }
        }
        let total: u64 = histogram.iter().sum();
        let mut t = TextTable::new(vec!["history length (N)", "unique conflicts", "% of total"]);
        let mut within_32 = 0u64;
        for (len, &n) in histogram.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if len <= 32 {
                within_32 += n;
            }
            t.row(vec![
                len.to_string(),
                n.to_string(),
                format!("{:.2}%", 100.0 * n as f64 / total.max(1) as f64),
            ]);
        }
        format!(
            "Fig. 10 — unique conflicts per store→load history length\n\n{t}\n\
             conflicts with N <= 32: {:.1}% (paper: 85.4%)\n",
            100.0 * within_32 as f64 / total.max(1) as f64
        )
    }
}

/// Fig. 11: UnlimitedPHAST IPC at several maximum history lengths.
pub mod fig11 {
    use super::*;

    /// Runs the sweep.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let cfg = CoreConfig::alder_lake();
        let mut t = TextTable::new(vec!["max history length", "norm. IPC (geomean)"]);
        let caps = [Some(4), Some(8), Some(16), Some(32), Some(64), None];
        let kinds: Vec<PredictorKind> =
            caps.iter().map(|m| PredictorKind::UnlimitedPhast(*m)).collect();
        let (ideal, rows) = grid_with_ideal(sweep, &kinds, &cfg, budget);
        for (max, runs) in caps.iter().zip(&rows) {
            let g = geomean(&normalized_ipc(runs, &ideal));
            let label = max.map_or("unlimited".to_string(), |m| m.to_string());
            t.row(vec![label, format!("{g:.4}")]);
        }
        format!("Fig. 11 — UnlimitedPHAST at capped history lengths (32 should suffice)\n\n{t}")
    }
}

/// Fig. 12: effect of the forwarding squash filter (§IV-A1).
pub mod fig12 {
    use super::*;

    /// Runs the ablation.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let mut t = TextTable::new(vec!["predictor", "no-FWD norm. IPC", "FWD norm. IPC"]);
        let mut on_cfg = CoreConfig::alder_lake();
        on_cfg.forwarding_filter = true;
        let mut off_cfg = CoreConfig::alder_lake();
        off_cfg.forwarding_filter = false;
        // Both variants are normalized to the FWD-on ideal, as the paper
        // normalizes everything to its (single) perfect predictor.
        let kinds = PredictorKind::headline();
        let (ideal, on_rows) = grid_with_ideal(sweep, &kinds, &on_cfg, budget);
        let off_rows = sweep.run_grid(&kinds, &off_cfg, budget);
        for ((kind, on_runs), off_runs) in kinds.iter().zip(&on_rows).zip(&off_rows) {
            let on = geomean(&normalized_ipc(on_runs, &ideal));
            let off = geomean(&normalized_ipc(off_runs, &ideal));
            t.row(vec![kind.label(), format!("{off:.4}"), format!("{on:.4}")]);
        }
        format!("Fig. 12 — squash filtering through forwarding on/off\n\n{t}")
    }
}

/// Fig. 13: performance versus storage.
pub mod fig13 {
    use super::*;

    /// Runs the sweep.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let cfg = CoreConfig::alder_lake();
        let mut t = TextTable::new(vec!["predictor", "storage (KB)", "norm. IPC (geomean)"]);
        let sweeps: Vec<PredictorKind> = vec![
            PredictorKind::PhastSets(32),
            PredictorKind::PhastSets(64),
            PredictorKind::Phast,
            PredictorKind::PhastSets(256),
            PredictorKind::NoSqSets(128),
            PredictorKind::NoSqSets(256),
            PredictorKind::NoSq,
            PredictorKind::NoSqSets(1024),
            PredictorKind::StoreSetsSized(2048, 1024),
            PredictorKind::StoreSetsSized(4096, 2048),
            PredictorKind::StoreSets,
            PredictorKind::StoreSetsSized(16384, 8192),
            PredictorKind::MdpTageScaled(1, 4),
            PredictorKind::MdpTageScaled(1, 2),
            PredictorKind::MdpTage,
            PredictorKind::MdpTageS,
        ];
        let (ideal, rows) = grid_with_ideal(sweep, &sweeps, &cfg, budget);
        for (kind, runs) in sweeps.iter().zip(&rows) {
            let g = geomean(&normalized_ipc(runs, &ideal));
            let program = budget.workloads()[0].build(16);
            let kb = kind.build(&program, 16).storage_bits() as f64 / 8192.0;
            t.row(vec![kind.label(), format!("{kb:.2}"), format!("{g:.4}")]);
        }
        format!("Fig. 13 — performance versus storage (IPC normalized to ideal)\n\n{t}")
    }
}

/// Fig. 14: per-workload MPKI of the limited predictors.
pub mod fig14 {
    use super::*;

    /// Runs the comparison.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let cfg = CoreConfig::alder_lake();
        let kinds = PredictorKind::headline();
        let mut header = vec!["workload".to_string()];
        for k in &kinds {
            header.push(format!("{} FN/FP", k.label()));
        }
        let mut t = TextTable::new(header);
        let all_runs = sweep.run_grid(&kinds, &cfg, budget);
        for (wi, w) in budget.workloads().iter().enumerate() {
            let mut row = vec![w.name.to_string()];
            for runs in &all_runs {
                let r = &runs[wi];
                row.push(format!(
                    "{:.3}/{:.3}",
                    r.stats.violation_mpki(),
                    r.stats.false_dep_mpki()
                ));
            }
            t.row(row);
        }
        let mut summary = String::new();
        for (k, runs) in kinds.iter().zip(&all_runs) {
            let fnm = runs.iter().map(|r| r.stats.violation_mpki()).sum::<f64>() / runs.len() as f64;
            let fpm = runs.iter().map(|r| r.stats.false_dep_mpki()).sum::<f64>() / runs.len() as f64;
            summary.push_str(&format!(
                "  {:<12} avg FN {:.3}  avg FP {:.3}  total {:.3}\n",
                k.label(),
                fnm,
                fpm,
                fnm + fpm
            ));
        }
        format!("Fig. 14 — MPKI per workload (violations/false dependences)\n\n{t}\n{summary}")
    }
}

/// Fig. 15: per-workload IPC normalized to ideal, plus headline speedups.
pub mod fig15 {
    use super::*;

    /// Structured result for tests and benches.
    pub struct Results {
        /// Geomean normalized IPC per headline predictor, PHAST last.
        pub geomeans: Vec<(String, f64)>,
        /// PHAST speedup over each baseline: (name, mean %, max %).
        pub speedups: Vec<(String, f64, f64)>,
        /// Per-predictor per-workload runs (headline order).
        pub runs: Vec<Vec<RunResult>>,
        /// Rendered report.
        pub report: String,
    }

    /// Runs the headline comparison.
    pub fn run(sweep: &Sweep, budget: &Budget) -> Results {
        let cfg = CoreConfig::alder_lake();
        let kinds = PredictorKind::headline();
        let (ideal, all_runs) = grid_with_ideal(sweep, &kinds, &cfg, budget);

        let mut header = vec!["workload".to_string()];
        header.extend(kinds.iter().map(|k| k.label()));
        let mut t = TextTable::new(header);
        for (wi, w) in budget.workloads().iter().enumerate() {
            let mut row = vec![w.name.to_string()];
            for runs in &all_runs {
                row.push(format!("{:.4}", runs[wi].stats.ipc() / ideal[wi].stats.ipc()));
            }
            t.row(row);
        }

        let geomeans: Vec<(String, f64)> = kinds
            .iter()
            .zip(&all_runs)
            .map(|(k, runs)| (k.label(), geomean(&normalized_ipc(runs, &ideal))))
            .collect();

        // PHAST speedups over each baseline (paper: 5.05% over Store Sets,
        // 1.29% over NoSQ, 3.04% over MDP-TAGE, 2.10% over MDP-TAGE-S).
        let phast_runs = all_runs.last().expect("phast last in headline");
        let mut speedups = Vec::new();
        for (k, runs) in kinds.iter().zip(&all_runs).take(kinds.len() - 1) {
            let ratios: Vec<f64> = phast_runs
                .iter()
                .zip(runs)
                .map(|(p, b)| p.stats.ipc() / b.stats.ipc())
                .collect();
            let mean = geomean(&ratios) - 1.0;
            let max = ratios.iter().cloned().fold(f64::MIN, f64::max) - 1.0;
            speedups.push((k.label(), 100.0 * mean, 100.0 * max));
        }

        let mut report =
            format!("Fig. 15 — IPC normalized to the perfect MDP (higher is better)\n\n{t}\n");
        for (name, g) in &geomeans {
            report.push_str(&format!("  {:<12} geomean {:.4} (gap {:.2}%)\n", name, g, 100.0 * (1.0 - g)));
        }
        report.push_str("\nPHAST speedups:\n");
        for (name, mean, max) in &speedups {
            report.push_str(&format!("  vs {:<12} mean {:+.2}%  max {:+.2}%\n", name, mean, max));
        }
        Results { geomeans, speedups, runs: all_runs, report }
    }
}

/// Fig. 16: predictor energy consumption, reads and writes.
pub mod fig16 {
    use super::*;
    use phast_energy::{total_energy_nj, Structure};

    fn structure_of(kind: &PredictorKind) -> Structure {
        match kind {
            PredictorKind::StoreSets => Structure::StoreSetsSsit,
            PredictorKind::NoSq => Structure::NoSq,
            PredictorKind::MdpTage => Structure::MdpTage,
            PredictorKind::MdpTageS => Structure::MdpTageS,
            _ => Structure::Phast,
        }
    }

    /// Runs the energy study.
    pub fn run(sweep: &Sweep, budget: &Budget) -> String {
        let cfg = CoreConfig::alder_lake();
        let mut t = TextTable::new(vec![
            "predictor",
            "table reads",
            "table writes",
            "read energy (nJ)",
            "write energy (nJ)",
            "total (nJ)",
        ]);
        let kinds = PredictorKind::headline();
        let rows = sweep.run_grid(&kinds, &cfg, budget);
        for (kind, runs) in kinds.iter().zip(&rows) {
            let reads: u64 = runs.iter().map(|r| r.stats.predictor_accesses.reads).sum();
            let writes: u64 = runs.iter().map(|r| r.stats.predictor_accesses.writes).sum();
            let e = structure_of(kind).per_table_probe();
            let (rn, wn) = total_energy_nj(reads, writes, e);
            t.row(vec![
                kind.label(),
                reads.to_string(),
                writes.to_string(),
                format!("{rn:.1}"),
                format!("{wn:.1}"),
                format!("{:.1}", rn + wn),
            ]);
        }
        format!("Fig. 16 — predictor energy over the whole run (Table II per-access energies)\n\n{t}")
    }
}

/// Table I: the simulated system configuration.
pub mod table1 {
    use super::*;

    /// Renders the Alder-Lake-like configuration.
    pub fn run(_sweep: &Sweep, _budget: &Budget) -> String {
        let c = CoreConfig::alder_lake();
        let mut t = TextTable::new(vec!["parameter", "value"]);
        t.row(vec!["front-end width".to_string(), format!("{}-wide fetch and decode", c.fetch_width)]);
        t.row(vec!["branch predictor".into(), "TAGE (8 components, 2..128b histories)".to_string()]);
        t.row(vec!["back-end".to_string(), format!("{} execution ports, {}-wide commit", c.ports.total(), c.commit_width)]);
        t.row(vec![
            "ROB/IQ/LQ/SB".to_string(),
            format!("{}/{}/{}/{} entries", c.rob_size, c.iq_size, c.lq_size, c.sq_size),
        ]);
        t.row(vec!["load/store ports".to_string(), format!("{}/{}", c.ports.load, c.ports.store)]);
        let m = &c.memory;
        t.row(vec!["L1I".to_string(), format!("{}KB {}-way, {}-cycle", m.l1i.size_bytes / 1024, m.l1i.ways, m.l1i.hit_latency)]);
        t.row(vec!["L1D".to_string(), format!("{}KB {}-way, {}-cycle, {} MSHRs", m.l1d.size_bytes / 1024, m.l1d.ways, m.l1d.hit_latency, m.l1d.mshrs)]);
        t.row(vec!["L1D prefetcher".into(), "IP-stride, degree 3".to_string()]);
        t.row(vec!["L2".to_string(), format!("{}KB {}-way, {}-cycle", m.l2.size_bytes / 1024, m.l2.ways, m.l2.hit_latency)]);
        t.row(vec!["L3".to_string(), format!("{}MB {}-way, {}-cycle", m.l3.size_bytes / (1024 * 1024), m.l3.ways, m.l3.hit_latency)]);
        t.row(vec!["memory".to_string(), format!("{}-cycle access latency", m.dram_latency)]);
        format!("Table I — system configuration (Alder-Lake-like)\n\n{t}")
    }
}

/// Table II: predictor configurations, storage and access energy.
pub mod table2 {
    use super::*;
    use phast_energy::Structure;

    /// Renders the predictor configuration table.
    pub fn run(_sweep: &Sweep, budget: &Budget) -> String {
        let program = budget.workloads()[0].build(16);
        let mut t = TextTable::new(vec![
            "predictor",
            "tables",
            "total entries",
            "size (KB)",
            "energy/access (pJ)",
        ]);
        let rows: [(PredictorKind, Structure, usize); 5] = [
            (PredictorKind::StoreSets, Structure::StoreSetsSsit, 8 * 1024 + 4 * 1024),
            (PredictorKind::NoSq, Structure::NoSq, 4 * 1024),
            (PredictorKind::MdpTage, Structure::MdpTage, 16 * 1024),
            (PredictorKind::MdpTageS, Structure::MdpTageS, 4 * 1024),
            (PredictorKind::Phast, Structure::Phast, 4 * 1024),
        ];
        for (kind, s, entries) in rows {
            let kb = kind.build(&program, 16).storage_bits() as f64 / 8192.0;
            let pj = match kind {
                PredictorKind::StoreSets => {
                    Structure::StoreSetsSsit.paper_access_pj()
                        + Structure::StoreSetsLfst.paper_access_pj()
                }
                _ => s.paper_access_pj(),
            };
            t.row(vec![
                kind.label(),
                s.tables().to_string(),
                entries.to_string(),
                format!("{kb:.3}"),
                format!("{pj:.4}"),
            ]);
        }
        format!("Table II — predictor configurations (sizes match the paper exactly)\n\n{t}")
    }
}

/// Sampled-versus-full validation: estimates every cell of a (workload ×
/// predictor) grid with the sampling engine, simulates the same cells in
/// full detail, and checks each sampled IPC against the documented error
/// bound (`docs/SAMPLING.md`). A cell outside its bound is flagged on the
/// sweep's degraded registry, so the binary — and the CI step that runs
/// `--quick sampled` — exits non-zero on an accuracy regression.
pub mod sampled {
    use super::*;
    use crate::harness::simulate_run;
    use phast_sample::ipc_error_bound;
    use std::time::Instant;

    /// Structured result for tests.
    pub struct Results {
        /// Per-cell (workload, predictor, full IPC, sampled IPC, |error|,
        /// bound) in grid order.
        pub cells: Vec<(String, String, f64, f64, f64, f64)>,
        /// Cells whose error exceeded the bound.
        pub violations: usize,
        /// Wall-clock speedup of the sampled grid over the full grid.
        pub speedup: f64,
        /// Rendered report.
        pub report: String,
    }

    /// Runs the validation grid.
    ///
    /// The validation horizon is 25× the tier's detailed-instruction
    /// budget: sampling exists for horizons where the detailed windows
    /// are a small fraction of the run, and the full-detail reference
    /// covers the *same* horizon, so both the accuracy check and the
    /// recorded speedup are honest like-for-like comparisons.
    pub fn run(sweep: &Sweep, budget: &Budget) -> Results {
        let scfg = sweep.sampling().unwrap_or_else(|| budget.default_sampling());
        let cfg = CoreConfig::alder_lake();
        let kinds = [PredictorKind::StoreSets, PredictorKind::Phast];
        let vbudget =
            Budget { insts: budget.insts.saturating_mul(25), ..budget.clone() };
        let workloads = vbudget.workloads();
        assert!(workloads.len() >= 4, "validation needs at least 4 workloads");
        let cells: Vec<(usize, usize)> = (0..kinds.len())
            .flat_map(|k| (0..workloads.len()).map(move |w| (k, w)))
            .collect();

        // Full-detail reference grid (bypasses the sweep's sampling mode
        // on purpose — this *is* the reference).
        let t0 = Instant::now();
        let full: Vec<RunResult> = sweep.map(&cells, |_, &(k, w)| {
            let program = workloads[w].build(vbudget.workload_iters);
            let mut c = cfg.clone();
            c.train_point = kinds[k].train_point();
            let mut pred = kinds[k].build(&program, vbudget.insts);
            simulate_run(
                workloads[w].name,
                &kinds[k].label(),
                &program,
                &c,
                pred.as_mut(),
                vbudget.insts,
            )
        });
        let full_wall = t0.elapsed();

        // Sampled estimates of the same grid: capture once per workload,
        // windows fanned across the pool.
        let t1 = Instant::now();
        let mut sampled: Vec<RunResult> =
            sweep.sampled_grid(&kinds, &cfg, &vbudget, scfg).into_iter().flatten().collect();
        let sampled_wall = t1.elapsed();

        let mut t = TextTable::new(vec![
            "workload",
            "predictor",
            "full IPC",
            "sampled IPC",
            "|error|",
            "bound",
            "verdict",
        ]);
        let mut out_cells = Vec::with_capacity(cells.len());
        let mut violations = 0usize;
        for (f, s) in full.iter().zip(sampled.iter_mut()) {
            let full_ipc = f.stats.ipc();
            let sampled_ipc = s.stats.ipc();
            let err = (sampled_ipc - full_ipc).abs();
            let meta = s.sampling.as_mut().expect("sampled run carries metadata");
            let bound = ipc_error_bound(full_ipc, meta.ipc_ci_half);
            meta.full_ipc = Some(full_ipc);
            meta.ipc_error = Some(err);
            let ok = err <= bound;
            if !ok {
                violations += 1;
                sweep.flag_degraded(format!(
                    "{} × {}: sampled IPC {sampled_ipc:.4} vs full {full_ipc:.4} — \
                     error {err:.4} exceeds bound {bound:.4}",
                    s.workload, s.predictor
                ));
            }
            t.row(vec![
                s.workload.clone(),
                s.predictor.clone(),
                format!("{full_ipc:.4}"),
                format!("{sampled_ipc:.4}"),
                format!("{err:.4}"),
                format!("{bound:.4}"),
                if ok { "ok".into() } else { "VIOLATION".into() },
            ]);
            out_cells.push((s.workload.clone(), s.predictor.clone(), full_ipc, sampled_ipc, err, bound));
        }
        // Sampled rows (now annotated with full_ipc/ipc_error) first,
        // then the full-detail reference rows, into BENCH_sampled.json.
        sweep.record_all(&sampled);
        sweep.record_all(&full);

        let speedup = full_wall.as_secs_f64() / sampled_wall.as_secs_f64().max(1e-9);
        let detailed: u64 = sampled
            .iter()
            .filter_map(|s| s.sampling.as_ref())
            .map(|m| m.measured_insts + m.warmed_insts)
            .sum();
        let report = format!(
            "Sampled-vs-full validation ({} insts horizon; {} windows × {} insts, {} warm; \
             see docs/SAMPLING.md)\n\n{t}\n\
             violations: {violations} of {}\n\
             wall-clock: full {:.2}s, sampled {:.2}s — speedup {speedup:.1}x\n\
             measured+warm instructions: full {}, sampled {} ({:.1}x fewer)\n",
            vbudget.insts,
            scfg.windows,
            scfg.window_insts,
            scfg.warm_insts,
            cells.len(),
            full_wall.as_secs_f64(),
            sampled_wall.as_secs_f64(),
            vbudget.insts * cells.len() as u64,
            detailed,
            (vbudget.insts * cells.len() as u64) as f64 / detailed.max(1) as f64,
        );
        Results { cells: out_cells, violations, speedup, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_budget() -> Budget {
        Budget { insts: 4_000, workload_iters: 20_000, max_workloads: Some(2) }
    }

    #[test]
    fn table1_and_table2_render() {
        let b = tiny_budget();
        let s = Sweep::serial();
        let t1 = table1::run(&s, &b);
        assert!(t1.contains("512/204/192/114"));
        let t2 = table2::run(&s, &b);
        assert!(t2.contains("14.500"), "PHAST size row: {t2}");
        assert!(t2.contains("38.625"), "MDP-TAGE size row");
    }

    #[test]
    fn fig4_runs_on_tiny_budget() {
        let out = fig4::run(&Sweep::parallel(), &tiny_budget());
        assert!(out.contains("perlbench_1"));
    }

    #[test]
    fn sampled_validation_runs_on_small_budget() {
        let b = Budget { insts: 8_000, workload_iters: 50_000, max_workloads: Some(4) };
        let sweep =
            Sweep::parallel().with_sampling(phast_sample::SampleConfig::new(4, 800, 500));
        let r = sampled::run(&sweep, &b);
        assert_eq!(r.cells.len(), 8, "4 workloads × 2 predictors");
        assert!(r.report.contains("violations"));
        for (w, p, full, est, err, bound) in &r.cells {
            assert!(*full > 0.0 && *est > 0.0, "{w} × {p}");
            assert!((err - (est - full).abs()).abs() < 1e-12);
            assert!(*bound >= 0.05);
        }
    }

    #[test]
    fn fig15_runs_on_tiny_budget() {
        let r = fig15::run(&Sweep::parallel(), &tiny_budget());
        assert_eq!(r.geomeans.len(), 5);
        assert_eq!(r.speedups.len(), 4);
        assert_eq!(r.runs.len(), 5);
        assert!(r.report.contains("PHAST speedups"));
    }
}
