//! Minimal ASCII table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = width[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(f, "{}", "-".repeat(line.trim_end().len()))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", c, w = width[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.5"]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.00%");
        assert_eq!(f3(1.23456), "1.235");
    }
}
