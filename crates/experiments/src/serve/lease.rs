//! Job leases: every running attempt is held under a lease with a
//! liveness obligation, and leases that go bad are reclaimed.
//!
//! A worker **acquires** a lease when it picks a job up and **releases**
//! it when it delivers the result. In between, the housekeeper
//! ([`crate::serve::sched`]) periodically [`expire`](LeaseTable::expire)s
//! the table; a lease is reclaimed when
//!
//! * its worker thread is dead (panic escaped the job boundary, or the
//!   chaos harness simulated a `SIGKILL`),
//! * its **progress heartbeat** stalls — the simulation's cycle loop
//!   bumps a shared counter every `DEADLINE_CHECK_INTERVAL` cycles via
//!   [`Deadline::tick`](phast_ooo::Deadline::tick), so "no counter
//!   movement for a whole heartbeat window" means the run is wedged, not
//!   merely slow, or
//! * the lease exceeds its hard age cap.
//!
//! Reclaiming raises the lease's cooperative cancellation flag (a still-
//! running attempt stops at its next deadline poll instead of racing its
//! replacement) and removes the entry, which is what makes delivery
//! **at-most-once**: [`release`](LeaseTable::release) returns `false` for
//! a reclaimed attempt, telling the worker its result is stale and must
//! be discarded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Liveness policy for leases.
#[derive(Clone, Copy, Debug)]
pub struct LeaseConfig {
    /// Maximum time a lease may go without observed forward progress
    /// before it is reclaimed as stalled.
    pub heartbeat: Duration,
    /// Hard cap on a single attempt's total lease age, progress or not.
    pub max_age: Duration,
}

impl Default for LeaseConfig {
    /// Production defaults: generous enough that a legitimate build phase
    /// (workload + predictor construction runs before the first cycle
    /// ticks the counter) never trips the stall detector.
    fn default() -> LeaseConfig {
        LeaseConfig { heartbeat: Duration::from_secs(10), max_age: Duration::from_secs(600) }
    }
}

/// One held lease: who runs the attempt, since when, and the shared
/// state the housekeeper observes.
struct Lease {
    attempt: u64,
    worker: usize,
    started: Instant,
    /// The progress cell the running simulation bumps.
    observed: Arc<AtomicU64>,
    /// Counter value at the last heartbeat, and when it was seen to move.
    last_seen: u64,
    last_beat: Instant,
    cancel: Arc<AtomicBool>,
}

/// What a worker holds while running an attempt: the cancellation flag to
/// plumb into the run's `Deadline`, and the progress cell the lease
/// watches.
pub struct LeaseGrant {
    /// Job id the lease covers.
    pub job: u64,
    /// Attempt number the lease covers.
    pub attempt: u64,
    /// Cooperative cancellation flag; raised when the lease is reclaimed.
    pub cancel: Arc<AtomicBool>,
    observed: Arc<AtomicU64>,
    suppressed: bool,
}

impl LeaseGrant {
    /// The progress cell the running job should tick. Under chaos
    /// heartbeat suppression this is a *decoy* cell the lease table does
    /// not watch, so the attempt looks wedged to the housekeeper while
    /// genuinely advancing — exactly the failure a lost heartbeat
    /// produces in a distributed setting.
    pub fn progress(&self) -> Arc<AtomicU64> {
        if self.suppressed {
            Arc::new(AtomicU64::new(0))
        } else {
            Arc::clone(&self.observed)
        }
    }
}

/// A reclaimed lease, as reported by [`LeaseTable::expire`].
#[derive(Clone, Debug)]
pub struct Expired {
    /// Job whose lease was reclaimed.
    pub job: u64,
    /// The attempt that was underway.
    pub attempt: u64,
    /// Worker that held the lease.
    pub worker: usize,
    /// Human-readable reclaim reason (worker death, heartbeat loss,
    /// age cap).
    pub reason: String,
}

/// The table of currently held leases. All operations lock one mutex;
/// the table is touched once per job pickup/delivery and once per
/// housekeeping tick, never on the simulation hot path.
pub struct LeaseTable {
    cfg: LeaseConfig,
    held: Mutex<HashMap<u64, Lease>>,
}

impl LeaseTable {
    /// An empty table under the given liveness policy.
    pub fn new(cfg: LeaseConfig) -> LeaseTable {
        LeaseTable { cfg, held: Mutex::new(HashMap::new()) }
    }

    /// Acquires the lease for `(job, attempt)` on behalf of `worker`.
    /// `suppress_heartbeat` arms the chaos decoy (see
    /// [`LeaseGrant::progress`]).
    pub fn acquire(
        &self,
        job: u64,
        attempt: u64,
        worker: usize,
        suppress_heartbeat: bool,
    ) -> LeaseGrant {
        let observed = Arc::new(AtomicU64::new(0));
        let cancel = Arc::new(AtomicBool::new(false));
        let now = Instant::now();
        let lease = Lease {
            attempt,
            worker,
            started: now,
            observed: Arc::clone(&observed),
            last_seen: 0,
            last_beat: now,
            cancel: Arc::clone(&cancel),
        };
        let prior = self.held.lock().expect("lease table").insert(job, lease);
        debug_assert!(prior.is_none(), "job {job} double-leased");
        LeaseGrant { job, attempt, cancel, observed, suppressed: suppress_heartbeat }
    }

    /// Releases the lease for `(job, attempt)`. Returns `true` if this
    /// attempt still held it — the result is fresh and must be delivered
    /// — or `false` if the housekeeper reclaimed it first, in which case
    /// the result is stale and must be discarded (a replacement attempt
    /// owns the job now).
    pub fn release(&self, job: u64, attempt: u64) -> bool {
        let mut held = self.held.lock().expect("lease table");
        match held.get(&job) {
            Some(l) if l.attempt == attempt => {
                held.remove(&job);
                true
            }
            _ => false,
        }
    }

    /// One housekeeping pass: reclaims every bad lease (dead worker,
    /// stalled heartbeat, age cap), raising its cancellation flag and
    /// removing it from the table. `worker_dead` reports whether a worker
    /// index is known to have exited.
    pub fn expire(&self, worker_dead: impl Fn(usize) -> bool) -> Vec<Expired> {
        let now = Instant::now();
        let mut held = self.held.lock().expect("lease table");
        let mut reclaimed = Vec::new();
        held.retain(|&job, lease| {
            let cur = lease.observed.load(Ordering::Relaxed);
            if cur != lease.last_seen {
                lease.last_seen = cur;
                lease.last_beat = now;
            }
            let reason = if worker_dead(lease.worker) {
                Some(format!("worker {} died", lease.worker))
            } else if now.duration_since(lease.last_beat) > self.cfg.heartbeat {
                Some(format!(
                    "heartbeat lost: no progress for {}ms",
                    now.duration_since(lease.last_beat).as_millis()
                ))
            } else if now.duration_since(lease.started) > self.cfg.max_age {
                Some(format!("lease exceeded {}s age cap", self.cfg.max_age.as_secs()))
            } else {
                None
            };
            match reason {
                Some(reason) => {
                    lease.cancel.store(true, Ordering::Relaxed);
                    reclaimed.push(Expired {
                        job,
                        attempt: lease.attempt,
                        worker: lease.worker,
                        reason,
                    });
                    false
                }
                None => true,
            }
        });
        reclaimed
    }

    /// Number of leases currently held.
    pub fn held(&self) -> usize {
        self.held.lock().expect("lease table").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> LeaseConfig {
        LeaseConfig { heartbeat: Duration::from_millis(20), max_age: Duration::from_secs(60) }
    }

    #[test]
    fn release_is_at_most_once() {
        let t = LeaseTable::new(fast());
        let g = t.acquire(1, 1, 0, false);
        assert_eq!(t.held(), 1);
        assert!(t.release(g.job, g.attempt), "fresh attempt delivers");
        assert!(!t.release(g.job, g.attempt), "second release is stale");
        assert_eq!(t.held(), 0);
    }

    #[test]
    fn dead_worker_lease_is_reclaimed_and_cancelled() {
        let t = LeaseTable::new(fast());
        let g = t.acquire(7, 1, 3, false);
        let reclaimed = t.expire(|w| w == 3);
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].job, 7);
        assert!(reclaimed[0].reason.contains("worker 3 died"), "{}", reclaimed[0].reason);
        assert!(g.cancel.load(Ordering::Relaxed), "reclaim raises cancel");
        assert!(!t.release(7, 1), "reclaimed attempt is stale");
    }

    #[test]
    fn advancing_heartbeat_keeps_the_lease_alive() {
        let t = LeaseTable::new(fast());
        let g = t.acquire(1, 1, 0, false);
        for _ in 0..3 {
            g.progress().fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(10));
            assert!(t.expire(|_| false).is_empty(), "progress defers the stall detector");
        }
        // Now stop ticking: the stall detector fires within a window.
        std::thread::sleep(Duration::from_millis(30));
        let reclaimed = t.expire(|_| false);
        assert_eq!(reclaimed.len(), 1);
        assert!(reclaimed[0].reason.contains("heartbeat lost"), "{}", reclaimed[0].reason);
    }

    #[test]
    fn suppressed_grant_hands_out_a_decoy_cell() {
        let t = LeaseTable::new(fast());
        let g = t.acquire(1, 1, 0, true);
        // The job ticks its (decoy) cell constantly...
        g.progress().fetch_add(100, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(30));
        // ...but the table watches the real cell, which never moved.
        let reclaimed = t.expire(|_| false);
        assert_eq!(reclaimed.len(), 1, "suppressed heartbeat looks like a stall");
    }

    #[test]
    fn newer_attempt_is_not_clobbered_by_a_stale_release() {
        let t = LeaseTable::new(fast());
        let _g1 = t.acquire(5, 1, 0, false);
        let _ = t.expire(|w| w == 0); // attempt 1 reclaimed
        let _g2 = t.acquire(5, 2, 1, false);
        assert!(!t.release(5, 1), "attempt 1 is stale");
        assert!(t.release(5, 2), "attempt 2 owns the job");
    }
}
