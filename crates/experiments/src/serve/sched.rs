//! The daemon's work-stealing scheduler: persistent workers, per-worker
//! deques, leased execution, and a housekeeping thread.
//!
//! The one-shot scoped pool ([`crate::pool`]) is the right engine for a
//! batch sweep — spawn, fan out, join, exit — but a daemon needs workers
//! that outlive any single batch and a queue that absorbs submissions
//! while earlier ones still run. This scheduler provides that:
//!
//! * **per-worker deques with stealing** — a worker pops its own deque
//!   from the front and steals from the *back* of others', so batches
//!   spread across workers without a central contended queue;
//! * **cooperative park/unpark** — idle workers park on a condvar with a
//!   short timeout (no spinning); submissions and requeues notify it;
//! * **leased execution** — every attempt runs under a
//!   [`LeaseTable`] lease; a **housekeeping thread** periodically expires
//!   bad leases (dead worker, stalled heartbeat, age cap), requeues the
//!   job as a fresh attempt — or, once the attempt budget is exhausted,
//!   delivers a degraded [`RunFailure::Lost`] result so the batch always
//!   completes — and respawns dead worker threads;
//! * **at-most-once delivery** — a result is delivered only if its
//!   attempt still holds the lease; results from reclaimed attempts are
//!   discarded as stale, so retries can never double-deliver.
//!
//! Jobs are owned `'static` closures over a [`JobCtx`] (attempt number,
//! cancellation flag, progress cell) — the sweep-cell runner in
//! [`crate::serve::runner`] builds them from plain data, so nothing here
//! borrows from a caller's stack the way the scoped pool does.

use super::chaos::ChaosPlan;
use super::lease::{LeaseConfig, LeaseTable};
use crate::harness::{failed_result, RunFailure, RunResult};
use crate::pool;
use phast_ooo::{LaneBatch, LaneJob, LaneReport};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle worker parks before rechecking the queues — bounds
/// the wakeup latency a (rare) lost notify can add.
const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// Scheduler shape and resilience policy.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Persistent worker threads (clamped to at least 1).
    pub workers: usize,
    /// Cells a worker drains from its deque into one [`LaneBatch`]
    /// (clamped to at least 1). At 1 — the default — every job runs
    /// solo, exactly as before lane batching existed; at N > 1, a worker
    /// that picks up a lane-capable job keeps popping until it holds up
    /// to N of them and interleaves them through one cycle loop, with a
    /// lease per cell and per-cell at-most-once delivery.
    pub lanes: usize,
    /// Lease liveness policy (heartbeat window, age cap).
    pub lease: LeaseConfig,
    /// Total attempts a job may consume across lease reclaims before it
    /// degrades to [`RunFailure::Lost`] (clamped to at least 1).
    pub max_attempts: u64,
    /// How often the housekeeping thread scans leases and dead workers.
    pub housekeep_every: Duration,
    /// Service-layer fault injection (inert by default).
    pub chaos: ChaosPlan,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            workers: pool::default_workers(),
            lanes: pool::default_lanes(),
            lease: LeaseConfig::default(),
            max_attempts: 3,
            housekeep_every: Duration::from_millis(25),
            chaos: ChaosPlan::none(),
        }
    }
}

/// What a running attempt sees of its lease: plumb `cancel` and
/// `progress` into the run's `Deadline` (via `with_cancel` /
/// `with_progress`) so reclamation can stop the attempt cooperatively
/// and the housekeeper can observe forward progress.
pub struct JobCtx {
    /// Attempt number (1-based) this execution is.
    pub attempt: u64,
    /// Raised when the lease is reclaimed — the attempt should stop at
    /// its next poll; its result will be discarded as stale.
    pub cancel: Arc<AtomicBool>,
    /// The heartbeat cell; the simulation's amortized deadline poll
    /// ticks it.
    pub progress: Arc<AtomicU64>,
}

/// The work function of one job.
pub type JobFn = Arc<dyn Fn(&JobCtx) -> RunResult + Send + Sync>;

/// The lane-batched representation of a simulation cell: how to build its
/// [`LaneJob`] for a given attempt (reseed, journal `start` line, and
/// `Deadline` wiring happen inside, exactly as the solo closure does) and
/// how to turn the cell's [`LaneReport`] back into its [`RunResult`].
/// Jobs without one always run solo, whatever the lane count.
#[derive(Clone)]
pub struct LaneCell {
    /// Builds the cell's lane job from its attempt context.
    pub build: Arc<dyn Fn(&JobCtx) -> LaneJob + Send + Sync>,
    /// Converts the cell's lane report into its delivered result.
    pub finish: Arc<dyn Fn(LaneReport) -> RunResult + Send + Sync>,
}

/// Callback invoked exactly once when a job's result is delivered (fresh
/// lease release or lost-job degradation) — the runner journals `done`
/// lines here.
pub type DeliveredFn = Arc<dyn Fn(&RunResult) + Send + Sync>;

/// One schedulable job: labels (for degraded results), the work closure,
/// and an optional delivery hook.
#[derive(Clone)]
pub struct JobSpec {
    /// Workload label, used for the degraded result if the job is lost.
    pub workload: String,
    /// Predictor label, likewise.
    pub predictor: String,
    /// The work.
    pub run: JobFn,
    /// The cell's lane-batched form; `None` jobs always run solo.
    pub lane: Option<LaneCell>,
    /// Invoked once on delivery, before the batch slot fills.
    pub on_delivered: Option<DeliveredFn>,
}

/// A progress event: one cell of a batch delivered.
#[derive(Clone, Debug)]
pub struct CellEvent {
    /// Index of the job within its batch (submission order).
    pub index: usize,
    /// Workload label.
    pub workload: String,
    /// Predictor label.
    pub predictor: String,
    /// `"ok"` or the failure kind (`"deadline"`, `"panicked"`, `"lost"`,
    /// ...).
    pub status: String,
    /// Attempts the job consumed.
    pub attempts: u64,
}

/// Shared completion state of one submitted batch.
struct BatchShared {
    slots: Vec<Mutex<Option<RunResult>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    /// Present while the batch is incomplete; dropped on the last
    /// delivery so the event receiver observes end-of-stream.
    events: Mutex<Option<mpsc::Sender<CellEvent>>>,
}

/// The caller's handle to a submitted batch: stream per-cell events,
/// then collect results in submission order.
pub struct BatchHandle {
    shared: Arc<BatchShared>,
    events: mpsc::Receiver<CellEvent>,
}

impl BatchHandle {
    /// Blocks for the next delivery event; `None` once every cell has
    /// delivered.
    pub fn next_event(&self) -> Option<CellEvent> {
        self.events.recv().ok()
    }

    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.shared.slots.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.shared.slots.is_empty()
    }

    /// Blocks until every cell has delivered and returns the results in
    /// submission order. Every slot is guaranteed filled: jobs that
    /// exhaust their attempts deliver a degraded
    /// [`RunFailure::Lost`] result rather than vanishing.
    pub fn wait(self) -> Vec<RunResult> {
        let mut remaining = self.shared.remaining.lock().expect("batch remaining");
        while *remaining > 0 {
            remaining = self.shared.done.wait(remaining).expect("batch condvar");
        }
        drop(remaining);
        self.shared
            .slots
            .iter()
            .map(|s| s.lock().expect("batch slot").take().expect("slot delivered"))
            .collect()
    }
}

/// One queued/running job.
struct JobEntry {
    id: u64,
    index: usize,
    spec: JobSpec,
    /// Attempt number the next pickup runs as; bumped by the housekeeper
    /// on reclaim, read by the worker at pickup. Only one copy of the
    /// entry is ever queued, so there is no write race.
    attempt_next: AtomicU64,
    batch: Arc<BatchShared>,
}

/// Monotonic resilience counters, snapshotted by [`Scheduler::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Leases reclaimed (dead worker, heartbeat loss, age cap).
    pub reclaimed: u64,
    /// Results discarded because their attempt had been reclaimed.
    pub stale: u64,
    /// Jobs degraded to [`RunFailure::Lost`] after exhausting attempts.
    pub lost: u64,
    /// Worker threads respawned by the housekeeper.
    pub respawns: u64,
    /// Worker deaths injected by the chaos plan.
    pub chaos_kills: u64,
}

#[derive(Default)]
struct StatCells {
    reclaimed: AtomicU64,
    stale: AtomicU64,
    lost: AtomicU64,
    respawns: AtomicU64,
    chaos_kills: AtomicU64,
}

struct SchedInner {
    cfg: SchedConfig,
    deques: Vec<Mutex<VecDeque<Arc<JobEntry>>>>,
    jobs: Mutex<HashMap<u64, Arc<JobEntry>>>,
    leases: LeaseTable,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    /// No new batches are admitted.
    draining: AtomicBool,
    /// Workers and the housekeeper exit at their next check.
    stop: AtomicBool,
    outstanding: AtomicUsize,
    next_job: AtomicU64,
    next_deque: AtomicUsize,
    alive: Mutex<Vec<Arc<AtomicBool>>>,
    stats: StatCells,
}

/// Why a batch was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The scheduler is draining for shutdown and admits nothing new.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "scheduler is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The persistent work-stealing scheduler. Start one per daemon with
/// [`Scheduler::start`]; submit batches from any thread; call
/// [`Scheduler::drain`] for a graceful shutdown.
pub struct Scheduler {
    inner: Arc<SchedInner>,
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
    housekeeper: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns the worker threads and the housekeeper.
    pub fn start(mut cfg: SchedConfig) -> Scheduler {
        cfg.workers = cfg.workers.max(1);
        cfg.max_attempts = cfg.max_attempts.max(1);
        let n = cfg.workers;
        let inner = Arc::new(SchedInner {
            leases: LeaseTable::new(cfg.lease),
            cfg,
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            jobs: Mutex::new(HashMap::new()),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            outstanding: AtomicUsize::new(0),
            next_job: AtomicU64::new(1),
            next_deque: AtomicUsize::new(0),
            alive: Mutex::new(Vec::new()),
            stats: StatCells::default(),
        });
        let mut handles = Vec::with_capacity(n);
        {
            let mut alive = inner.alive.lock().expect("alive flags");
            for me in 0..n {
                let flag = Arc::new(AtomicBool::new(true));
                alive.push(Arc::clone(&flag));
                let inner = Arc::clone(&inner);
                handles.push(Some(std::thread::spawn(move || worker_loop(inner, me, flag))));
            }
        }
        let hk = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || housekeeper_loop(inner))
        };
        Scheduler {
            inner,
            workers: Mutex::new(handles),
            housekeeper: Mutex::new(Some(hk)),
        }
    }

    /// Submits a batch of jobs; they spread round-robin across the
    /// worker deques (stealing rebalances from there). Returns a handle
    /// to stream events and collect results.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] once [`Scheduler::drain`] has begun.
    pub fn submit(&self, jobs: Vec<JobSpec>) -> Result<BatchHandle, SubmitError> {
        if self.inner.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        let n = jobs.len();
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(BatchShared {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            events: Mutex::new(if n > 0 { Some(tx) } else { None }),
        });
        self.inner.outstanding.fetch_add(n, Ordering::SeqCst);
        for (index, spec) in jobs.into_iter().enumerate() {
            let id = self.inner.next_job.fetch_add(1, Ordering::SeqCst);
            let entry = Arc::new(JobEntry {
                id,
                index,
                spec,
                attempt_next: AtomicU64::new(1),
                batch: Arc::clone(&shared),
            });
            self.inner.jobs.lock().expect("job map").insert(id, Arc::clone(&entry));
            self.inner.push_job(entry);
        }
        Ok(BatchHandle { shared, events: rx })
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.inner.cfg.workers
    }

    /// Jobs admitted but not yet delivered (queued + running).
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::SeqCst)
    }

    /// Jobs sitting in deques right now (not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.inner.deques.iter().map(|d| d.lock().expect("deque").len()).sum()
    }

    /// Leases currently held (attempts running right now).
    pub fn leases_held(&self) -> usize {
        self.inner.leases.held()
    }

    /// Snapshot of the resilience counters.
    pub fn stats(&self) -> SchedStats {
        let s = &self.inner.stats;
        SchedStats {
            reclaimed: s.reclaimed.load(Ordering::Relaxed),
            stale: s.stale.load(Ordering::Relaxed),
            lost: s.lost.load(Ordering::Relaxed),
            respawns: s.respawns.load(Ordering::Relaxed),
            chaos_kills: s.chaos_kills.load(Ordering::Relaxed),
        }
    }

    /// True once [`Scheduler::drain`] has begun.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop admitting, let every outstanding job
    /// deliver (including lease-reclaim retries), then stop and join all
    /// threads. Idempotent; concurrent callers all block until the
    /// scheduler is down.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        while self.inner.outstanding.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.park_cv.notify_all();
        for h in self.workers.lock().expect("worker handles").iter_mut() {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
        if let Some(h) = self.housekeeper.lock().expect("housekeeper handle").take() {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    /// Forced teardown: threads stop at their next check. Jobs still
    /// queued are abandoned (their batch handles are necessarily
    /// abandoned too, or the caller would have drained) — use
    /// [`Scheduler::drain`] for the graceful path.
    fn drop(&mut self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.park_cv.notify_all();
        for h in self.workers.lock().expect("worker handles").iter_mut() {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
        if let Some(h) = self.housekeeper.lock().expect("housekeeper handle").take() {
            let _ = h.join();
        }
    }
}

impl SchedInner {
    /// Queues an entry on the next deque round-robin and wakes a parked
    /// worker.
    fn push_job(&self, entry: Arc<JobEntry>) {
        let n = self.deques.len();
        let at = self.next_deque.fetch_add(1, Ordering::Relaxed) % n;
        self.deques[at].lock().expect("deque").push_back(entry);
        self.park_cv.notify_all();
    }

    /// Own deque from the front, then steal from the back of the others
    /// (oldest work first, minimizing contention with the owner).
    fn pop_job(&self, me: usize) -> Option<Arc<JobEntry>> {
        if let Some(e) = self.deques[me].lock().expect("deque").pop_front() {
            return Some(e);
        }
        let n = self.deques.len();
        for step in 1..n {
            let victim = (me + step) % n;
            if let Some(e) = self.deques[victim].lock().expect("deque").pop_back() {
                return Some(e);
            }
        }
        None
    }

    /// Delivers a result for `entry` exactly once: the delivery hook
    /// fires, the batch slot fills, the event streams, and the job
    /// retires from the scheduler.
    fn deliver(&self, entry: &Arc<JobEntry>, mut result: RunResult, attempts: u64) {
        result.attempts = attempts;
        if let Some(hook) = &entry.spec.on_delivered {
            hook(&result);
        }
        let status =
            result.failure.as_ref().map_or_else(|| "ok".to_string(), |f| f.kind().to_string());
        let event = CellEvent {
            index: entry.index,
            workload: entry.spec.workload.clone(),
            predictor: entry.spec.predictor.clone(),
            status,
            attempts,
        };
        if let Some(tx) = entry.batch.events.lock().expect("batch events").as_ref() {
            let _ = tx.send(event);
        }
        *entry.batch.slots[entry.index].lock().expect("batch slot") = Some(result);
        {
            let mut remaining = entry.batch.remaining.lock().expect("batch remaining");
            *remaining -= 1;
            if *remaining == 0 {
                // Close the event stream so receivers see end-of-batch.
                entry.batch.events.lock().expect("batch events").take();
                entry.batch.done.notify_all();
            }
        }
        self.jobs.lock().expect("job map").remove(&entry.id);
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One persistent worker: pop or steal, lease, run, deliver-if-fresh.
fn worker_loop(inner: Arc<SchedInner>, me: usize, alive: Arc<AtomicBool>) {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let Some(entry) = inner.pop_job(me) else {
            let guard = inner.park_lock.lock().expect("park lock");
            let _ = inner
                .park_cv
                .wait_timeout(guard, PARK_TIMEOUT)
                .expect("park condvar");
            continue;
        };
        if inner.cfg.lanes > 1 && entry.spec.lane.is_some() {
            if run_lane_batch(&inner, me, entry) {
                continue;
            }
            // A chaos kill fired while acquiring the batch's leases: die
            // on the spot holding them, exactly like the solo kill below.
            break;
        }
        let attempt = entry.attempt_next.load(Ordering::Relaxed);
        if inner.cfg.chaos.kills_worker(entry.id, attempt) {
            // Simulated SIGKILL: die on the spot *holding the lease* —
            // no unwind, no release, no delivery. The housekeeper finds
            // the dead worker, reclaims the lease, and respawns us.
            let _grant = inner.leases.acquire(entry.id, attempt, me, false);
            inner.stats.chaos_kills.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let suppress = inner.cfg.chaos.drops_heartbeat(entry.id, attempt);
        let grant = inner.leases.acquire(entry.id, attempt, me, suppress);
        let ctx = JobCtx {
            attempt,
            cancel: Arc::clone(&grant.cancel),
            progress: grant.progress(),
        };
        let result = match pool::catch_job(|| (entry.spec.run)(&ctx)) {
            Ok(r) => r,
            Err(p) => failed_result(
                &entry.spec.workload,
                &entry.spec.predictor,
                RunFailure::Panicked(p.message),
            ),
        };
        if inner.leases.release(entry.id, attempt) {
            inner.deliver(&entry, result, attempt);
        } else {
            // The lease was reclaimed under us: a replacement attempt
            // owns the job, so this result must not be delivered.
            inner.stats.stale.fetch_add(1, Ordering::Relaxed);
        }
    }
    alive.store(false, Ordering::SeqCst);
}

/// Drains up to `cfg.lanes` lane-capable entries (starting with `first`,
/// which the caller already popped) into one [`LaneBatch`]: a lease per
/// cell acquired before any cycle runs, per-cell panic isolation at the
/// build boundary, and per-cell at-most-once delivery afterwards — a
/// lease reclaimed mid-batch raises that cell's cancellation flag, its
/// lane degrades at the next deadline poll, and its result is discarded
/// as stale while its wave-mates deliver normally.
///
/// Returns `false` if a simulated SIGKILL fired while acquiring leases:
/// the worker thread must die on the spot holding everything it acquired
/// (the housekeeper reclaims each lease and requeues each cell), which is
/// exactly the solo path's kill semantics extended to a batch.
fn run_lane_batch(inner: &Arc<SchedInner>, me: usize, first: Arc<JobEntry>) -> bool {
    let mut entries = vec![first];
    while entries.len() < inner.cfg.lanes {
        let Some(e) = inner.pop_job(me) else { break };
        if e.spec.lane.is_some() {
            entries.push(e);
        } else {
            // Not a simulation cell: give it back for a solo pickup.
            inner.push_job(e);
            break;
        }
    }
    let mut slots = Vec::with_capacity(entries.len());
    let mut entries = entries.into_iter();
    while let Some(entry) = entries.next() {
        let attempt = entry.attempt_next.load(Ordering::Relaxed);
        if inner.cfg.chaos.kills_worker(entry.id, attempt) {
            let _grant = inner.leases.acquire(entry.id, attempt, me, false);
            inner.stats.chaos_kills.fetch_add(1, Ordering::Relaxed);
            // The cells leased so far (this one included) die with the
            // worker and are reclaimed by the housekeeper. Cells still
            // in the drain buffer were never leased, so nothing could
            // ever reclaim them: hand them back to the deque before
            // dying or they are lost and the batch never completes.
            for e in entries {
                inner.push_job(e);
            }
            return false;
        }
        let suppress = inner.cfg.chaos.drops_heartbeat(entry.id, attempt);
        let grant = inner.leases.acquire(entry.id, attempt, me, suppress);
        let ctx = JobCtx {
            attempt,
            cancel: Arc::clone(&grant.cancel),
            progress: grant.progress(),
        };
        slots.push((entry, attempt, ctx));
    }
    // Build every lane job; a panicking build degrades its own cell
    // without touching its wave-mates (the same catch boundary the solo
    // path puts around the whole run).
    let mut results: Vec<Option<RunResult>> = Vec::with_capacity(slots.len());
    let mut jobs: Vec<LaneJob> = Vec::new();
    let mut job_slot: Vec<usize> = Vec::new();
    for (i, (entry, _, ctx)) in slots.iter().enumerate() {
        let lane = entry.spec.lane.as_ref().expect("lane-capable entry");
        match pool::catch_job(|| (lane.build)(ctx)) {
            Ok(job) => {
                jobs.push(job);
                job_slot.push(i);
                results.push(None);
            }
            Err(p) => results.push(Some(failed_result(
                &entry.spec.workload,
                &entry.spec.predictor,
                RunFailure::Panicked(p.message),
            ))),
        }
    }
    for (j, report) in LaneBatch::new(inner.cfg.lanes).run(jobs).into_iter().enumerate() {
        let i = job_slot[j];
        let (entry, _, _) = &slots[i];
        let lane = entry.spec.lane.as_ref().expect("lane-capable entry");
        results[i] = Some(match pool::catch_job(|| (lane.finish)(report)) {
            Ok(r) => r,
            Err(p) => failed_result(
                &entry.spec.workload,
                &entry.spec.predictor,
                RunFailure::Panicked(p.message),
            ),
        });
    }
    for ((entry, attempt, _), result) in slots.into_iter().zip(results) {
        let result = result.expect("every batched cell produced a result");
        if inner.leases.release(entry.id, attempt) {
            inner.deliver(&entry, result, attempt);
        } else {
            inner.stats.stale.fetch_add(1, Ordering::Relaxed);
        }
    }
    true
}

/// The housekeeping thread: expire bad leases, requeue or degrade their
/// jobs, respawn dead workers.
fn housekeeper_loop(inner: Arc<SchedInner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(inner.cfg.housekeep_every);
        let reclaimed = {
            let alive = inner.alive.lock().expect("alive flags");
            inner.leases.expire(|w| !alive[w].load(Ordering::SeqCst))
        };
        for e in reclaimed {
            inner.stats.reclaimed.fetch_add(1, Ordering::Relaxed);
            let entry = inner.jobs.lock().expect("job map").get(&e.job).cloned();
            let Some(entry) = entry else { continue };
            if e.attempt >= inner.cfg.max_attempts {
                inner.stats.lost.fetch_add(1, Ordering::Relaxed);
                let result = failed_result(
                    &entry.spec.workload,
                    &entry.spec.predictor,
                    RunFailure::Lost(format!("{} (attempt {} of {})", e.reason, e.attempt,
                        inner.cfg.max_attempts)),
                );
                inner.deliver(&entry, result, e.attempt);
            } else {
                entry.attempt_next.store(e.attempt + 1, Ordering::Relaxed);
                inner.push_job(entry);
            }
        }
        // Respawn any dead worker (chaos kill or escaped panic) so the
        // pool keeps its capacity; skip once shutdown has begun.
        if !inner.stop.load(Ordering::SeqCst) {
            let mut alive = inner.alive.lock().expect("alive flags");
            for me in 0..alive.len() {
                if !alive[me].load(Ordering::SeqCst) {
                    let flag = Arc::new(AtomicBool::new(true));
                    alive[me] = Arc::clone(&flag);
                    let inner2 = Arc::clone(&inner);
                    std::thread::spawn(move || worker_loop(inner2, me, flag));
                    inner.stats.respawns.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_ooo::SimStats;

    /// A clean result for fake jobs (no simulation involved).
    fn ok_result(workload: &str, predictor: &str) -> RunResult {
        let mut r = failed_result(workload, predictor, RunFailure::Panicked(String::new()));
        r.failure = None;
        r.stats = SimStats::default();
        r
    }

    fn fast_cfg(workers: usize) -> SchedConfig {
        SchedConfig {
            workers,
            lanes: 1,
            lease: LeaseConfig {
                heartbeat: Duration::from_millis(40),
                max_age: Duration::from_secs(30),
            },
            max_attempts: 3,
            housekeep_every: Duration::from_millis(5),
            chaos: ChaosPlan::none(),
        }
    }

    fn counting_job(counter: Arc<AtomicU64>, workload: &str) -> JobSpec {
        let w = workload.to_string();
        JobSpec {
            workload: w.clone(),
            predictor: "fake".to_string(),
            run: Arc::new(move |ctx: &JobCtx| {
                counter.fetch_add(1, Ordering::SeqCst);
                ctx.progress.fetch_add(1, Ordering::SeqCst);
                ok_result(&w, "fake")
            }),
            lane: None,
            on_delivered: None,
        }
    }

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let sched = Scheduler::start(fast_cfg(4));
        let ran = Arc::new(AtomicU64::new(0));
        let jobs: Vec<JobSpec> =
            (0..16).map(|i| counting_job(Arc::clone(&ran), &format!("w{i}"))).collect();
        let handle = sched.submit(jobs).expect("admitted");
        let results = handle.wait();
        assert_eq!(results.len(), 16);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.workload, format!("w{i}"), "submission order preserved");
            assert!(r.ok());
            assert_eq!(r.attempts, 1);
        }
        assert_eq!(ran.load(Ordering::SeqCst), 16);
        sched.drain();
    }

    #[test]
    fn events_stream_one_per_cell_then_close() {
        let sched = Scheduler::start(fast_cfg(2));
        let ran = Arc::new(AtomicU64::new(0));
        let jobs: Vec<JobSpec> =
            (0..5).map(|i| counting_job(Arc::clone(&ran), &format!("w{i}"))).collect();
        let handle = sched.submit(jobs).expect("admitted");
        let mut events = Vec::new();
        while let Some(ev) = handle.next_event() {
            events.push(ev);
        }
        assert_eq!(events.len(), 5);
        let results = handle.wait();
        assert_eq!(results.len(), 5);
        sched.drain();
    }

    #[test]
    fn panicking_job_degrades_without_killing_its_worker() {
        let sched = Scheduler::start(fast_cfg(2));
        let ran = Arc::new(AtomicU64::new(0));
        let boom = JobSpec {
            workload: "boom".to_string(),
            predictor: "fake".to_string(),
            run: Arc::new(|_: &JobCtx| panic!("job exploded")),
            lane: None,
            on_delivered: None,
        };
        let jobs = vec![counting_job(Arc::clone(&ran), "a"), boom, counting_job(ran, "b")];
        let results = sched.submit(jobs).expect("admitted").wait();
        assert!(results[0].ok());
        assert!(results[2].ok());
        let failure = results[1].failure.as_ref().expect("panic captured");
        assert_eq!(failure.kind(), "panicked");
        assert!(format!("{failure}").contains("job exploded"));
        assert_eq!(sched.stats().respawns, 0, "panic is caught at the job boundary");
        sched.drain();
    }

    #[test]
    fn chaos_worker_kill_is_reclaimed_retried_and_respawned() {
        let mut cfg = fast_cfg(2);
        // Kill whichever worker picks up job 1's first attempt.
        cfg.chaos = ChaosPlan { kill_at: Some((1, 1)), ..ChaosPlan::none() };
        let sched = Scheduler::start(cfg);
        let ran = Arc::new(AtomicU64::new(0));
        let jobs: Vec<JobSpec> =
            (0..4).map(|i| counting_job(Arc::clone(&ran), &format!("w{i}"))).collect();
        let results = sched.submit(jobs).expect("admitted").wait();
        assert!(results.iter().all(RunResult::ok), "retry recovered the killed attempt");
        assert_eq!(results[0].attempts, 2, "first job took a second attempt");
        assert!(results[1..].iter().all(|r| r.attempts == 1));
        let stats = sched.stats();
        assert_eq!(stats.chaos_kills, 1);
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(stats.lost, 0);
        // The respawn lands later in the housekeeping tick than the
        // requeue that let the batch finish; poll briefly for it.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while sched.stats().respawns == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(sched.stats().respawns >= 1, "the dead worker was replaced");
        sched.drain();
    }

    /// A lane-capable spec around a tiny real simulation (the lane path
    /// needs genuine `LaneJob`s): a short store/load loop under blind
    /// speculation, finishing in well under a millisecond.
    fn lane_spec(workload: &str) -> JobSpec {
        use phast_isa::{AluKind, CondKind, MemSize, ProgramBuilder, Reg};
        use phast_mdp::BlindSpeculation;
        use phast_ooo::{CoreConfig, Deadline, LaneOutcome};
        let w = workload.to_string();
        let build = Arc::new(move |_: &JobCtx| {
            let mut b = ProgramBuilder::new();
            let head = b.block();
            let exit = b.block();
            b.at(head)
                .addi(Reg(1), Reg(1), 1)
                .alui(AluKind::Shl, Reg(2), Reg(1), 6)
                .store(Reg(2), 0, Reg(1), MemSize::B8)
                .load(Reg(3), Reg(2), 0, MemSize::B8)
                .branchi(CondKind::LtU, Reg(1), 200, head)
                .fallthrough(exit);
            b.at(exit).halt();
            b.set_entry(head);
            LaneJob::new(
                b.build().unwrap(),
                CoreConfig::alder_lake(),
                Box::new(BlindSpeculation),
                100_000,
                Deadline::none(),
            )
        });
        let finish = {
            let w = w.clone();
            Arc::new(move |report: LaneReport| match report.outcome {
                LaneOutcome::Finished(_) => ok_result(&w, "blind"),
                other => failed_result(&w, "blind", RunFailure::Panicked(format!("{other:?}"))),
            })
        };
        JobSpec {
            workload: w.clone(),
            predictor: "blind".to_string(),
            run: Arc::new(move |_: &JobCtx| ok_result(&w, "blind")),
            lane: Some(LaneCell { build, finish }),
            on_delivered: None,
        }
    }

    /// Regression: a chaos kill firing while `run_lane_batch` acquires
    /// its leases must not strand the drained-but-unleased tail of the
    /// batch. Before the fix those cells were popped from the deque,
    /// never leased, and therefore unreclaimable — the sweep hung
    /// forever. With the fix they are pushed back, the leased cells are
    /// reclaimed and retried, and every cell delivers.
    #[test]
    fn chaos_kill_mid_batch_drain_loses_no_cells() {
        let mut cfg = fast_cfg(1);
        cfg.lanes = 4;
        // Kill the worker when it leases job 2's first attempt — after
        // leasing jobs 0 and 1, with job 3 still in the drain buffer.
        cfg.chaos = ChaosPlan { kill_at: Some((2, 1)), ..ChaosPlan::none() };
        let sched = Scheduler::start(cfg);
        let jobs: Vec<JobSpec> = (0..4).map(|i| lane_spec(&format!("w{i}"))).collect();
        let results = sched.submit(jobs).expect("admitted").wait();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert!(r.ok(), "cell {i} recovered: {:?}", r.failure);
            assert_eq!(r.workload, format!("w{i}"), "submission order preserved");
        }
        let stats = sched.stats();
        assert_eq!(stats.chaos_kills, 1);
        assert_eq!(stats.lost, 0, "no cell was stranded by the mid-drain kill");
        // How many cells were leased before the kill depends on drain
        // timing; at least the killed cell itself must be reclaimed.
        assert!(stats.reclaimed >= 1, "the killed cell's lease was reclaimed");
        sched.drain();
    }

    #[test]
    fn heartbeat_loss_cancels_and_retries_the_attempt() {
        let mut cfg = fast_cfg(2);
        cfg.chaos = ChaosPlan { stall_at: Some((1, 1)), ..ChaosPlan::none() };
        let sched = Scheduler::start(cfg);
        // The job ticks progress in a loop until cancelled — on the
        // stalled attempt the housekeeper sees no progress (decoy cell)
        // and reclaims; the retry runs with a live heartbeat and exits
        // promptly via its own attempt number.
        let job = JobSpec {
            workload: "w".to_string(),
            predictor: "fake".to_string(),
            run: Arc::new(move |ctx: &JobCtx| {
                if ctx.attempt == 1 {
                    // Simulate a long run: keep ticking until cancelled.
                    while !ctx.cancel.load(Ordering::SeqCst) {
                        ctx.progress.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    // Cancelled mid-run: degraded result (would be
                    // discarded as stale anyway).
                    failed_result("w", "fake", RunFailure::Panicked("cancelled".into()))
                } else {
                    ok_result("w", "fake")
                }
            }),
            lane: None,
            on_delivered: None,
        };
        let results = sched.submit(vec![job]).expect("admitted").wait();
        assert!(results[0].ok(), "retry delivered a clean result");
        assert_eq!(results[0].attempts, 2);
        assert_eq!(sched.stats().reclaimed, 1);
        // The cancelled first attempt releases its lease a beat after
        // the retry delivers; poll briefly for the stale-discard count.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while sched.stats().stale == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sched.stats().stale, 1, "the cancelled attempt's result was discarded");
        sched.drain();
    }

    #[test]
    fn exhausted_attempts_degrade_to_lost_not_hang() {
        let mut cfg = fast_cfg(2);
        cfg.max_attempts = 2;
        // Attempt 1 is killed outright; attempt 2 runs with a suppressed
        // heartbeat — the job burns its whole attempt budget.
        cfg.chaos =
            ChaosPlan { kill_at: Some((1, 1)), stall_at: Some((1, 2)), ..ChaosPlan::none() };
        let sched = Scheduler::start(cfg);
        let job = JobSpec {
            workload: "doomed".to_string(),
            predictor: "fake".to_string(),
            run: Arc::new(move |ctx: &JobCtx| {
                // Attempt 2 runs with a suppressed heartbeat and ticks
                // until cancelled (so it stalls from the table's view).
                while !ctx.cancel.load(Ordering::SeqCst) {
                    ctx.progress.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(1));
                }
                failed_result("doomed", "fake", RunFailure::Panicked("cancelled".into()))
            }),
            lane: None,
            on_delivered: None,
        };
        let results = sched.submit(vec![job]).expect("admitted").wait();
        let failure = results[0].failure.as_ref().expect("job was lost");
        assert_eq!(failure.kind(), "lost");
        assert_eq!(results[0].attempts, 2, "both attempts were consumed");
        assert_eq!(sched.stats().lost, 1);
        sched.drain();
    }

    #[test]
    fn delivery_hook_fires_exactly_once_per_job() {
        let sched = Scheduler::start(fast_cfg(2));
        let hook_count = Arc::new(AtomicU64::new(0));
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| {
                let c = Arc::clone(&hook_count);
                let w = format!("w{i}");
                JobSpec {
                    workload: w.clone(),
                    predictor: "fake".to_string(),
                    run: Arc::new(move |_: &JobCtx| ok_result(&w, "fake")),
                    lane: None,
                    on_delivered: Some(Arc::new(move |_: &RunResult| {
                        c.fetch_add(1, Ordering::SeqCst);
                    })),
                }
            })
            .collect();
        sched.submit(jobs).expect("admitted").wait();
        assert_eq!(hook_count.load(Ordering::SeqCst), 6);
        sched.drain();
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_outstanding() {
        let sched = Arc::new(Scheduler::start(fast_cfg(2)));
        let ran = Arc::new(AtomicU64::new(0));
        let slow: Vec<JobSpec> = (0..4)
            .map(|i| {
                let c = Arc::clone(&ran);
                let w = format!("w{i}");
                JobSpec {
                    workload: w.clone(),
                    predictor: "fake".to_string(),
                    run: Arc::new(move |ctx: &JobCtx| {
                        std::thread::sleep(Duration::from_millis(10));
                        ctx.progress.fetch_add(1, Ordering::SeqCst);
                        c.fetch_add(1, Ordering::SeqCst);
                        ok_result(&w, "fake")
                    }),
                    lane: None,
                    on_delivered: None,
                }
            })
            .collect();
        let handle = sched.submit(slow).expect("admitted");
        let drainer = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.drain())
        };
        // Wait for the drain to take effect, then try to submit.
        while !sched.draining() {
            std::thread::yield_now();
        }
        let refused = sched.submit(vec![counting_job(Arc::clone(&ran), "late")]);
        assert_eq!(refused.err(), Some(SubmitError::Draining));
        let results = handle.wait();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(RunResult::ok), "outstanding work finished during drain");
        drainer.join().expect("drain completes");
        assert_eq!(ran.load(Ordering::SeqCst), 4, "the refused job never ran");
    }
}
