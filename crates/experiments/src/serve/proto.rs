//! The `phast-serve` wire protocol: JSON-lines over TCP.
//!
//! One request object per line from the client, one event object per
//! line from the daemon. Requests carry an `"op"` discriminant, events
//! an `"event"` discriminant; unknown fields are ignored (forward
//! compatibility) but unknown discriminants, malformed JSON, and
//! duplicate object keys are rejected fail-closed by the hardened
//! [`crate::jsonio`] parser. The daemon renders every event through the
//! **checked** writer ([`JsonValue::try_render_compact`]) — a non-finite
//! float can degrade an artifact to `null` with its digest pinning the
//! loss, but it must never silently cross a protocol boundary.
//!
//! The full protocol specification (state machines, backpressure, drain
//! semantics, exit codes) lives in `docs/SERVICE.md`.

use crate::artifact::JsonValue;
use crate::harness::Budget;
use crate::jsonio;

/// A client request, one per line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Daemon health and artifact index snapshot.
    Status,
    /// Submit a sweep.
    Submit {
        /// Artifact id (`BENCH_<id>.json`) and journal scope.
        id: String,
        /// Predictor labels ([`crate::predictors::PredictorKind::from_label`]).
        kinds: Vec<String>,
        /// Budget tier name (`full`, `quick`, `bench`, `sampled`).
        budget: String,
        /// Stream per-cell [`Event::Cell`] progress events before the
        /// final [`Event::Done`]. Without it the daemon replies
        /// [`Event::Accepted`] and runs the sweep fire-and-forget.
        watch: bool,
    },
    /// Retrieve a finished artifact body by its integrity digest.
    Fetch {
        /// The `crc32:xxxxxxxx` digest [`Event::Done`] reported.
        digest: String,
    },
    /// Begin a graceful drain: stop admitting, finish in-flight sweeps,
    /// exit.
    Shutdown,
}

/// A daemon event, one per line.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Reply to [`Request::Ping`].
    Pong {
        /// Worker threads serving the queue.
        workers: u64,
    },
    /// Reply to [`Request::Status`].
    Status(StatusBody),
    /// The sweep was admitted.
    Accepted {
        /// Sweep id.
        id: String,
        /// Cells scheduled live.
        cells: u64,
        /// Cells replayed verbatim from the daemon journal.
        replayed: u64,
    },
    /// The sweep was refused; resubmit after `retry_after_ms` if given.
    Rejected {
        /// `"queue-full"` (backpressure) or `"draining"` (shutdown).
        reason: String,
        /// Suggested client backoff; absent when retrying is pointless
        /// (the daemon is exiting).
        retry_after_ms: Option<u64>,
    },
    /// One cell of a watched sweep delivered.
    Cell {
        /// Workload label.
        workload: String,
        /// Predictor label.
        predictor: String,
        /// `"ok"` or the failure kind.
        status: String,
        /// Attempts the cell consumed across lease reclaims.
        attempts: u64,
    },
    /// A watched sweep finished.
    Done {
        /// Sweep id.
        id: String,
        /// Artifact integrity digest — the key for [`Request::Fetch`].
        digest: String,
        /// Total runs in the artifact.
        runs: u64,
        /// Degraded runs.
        degraded: u64,
        /// Runs cut off by the per-run watchdog.
        deadline_runs: u64,
        /// Exit-taxonomy verdict for this sweep.
        exit: u64,
    },
    /// Reply to [`Request::Fetch`]: the sealed artifact body.
    Artifact {
        /// Integrity digest of `body`.
        digest: String,
        /// The full `BENCH_<id>.json` text (digest field included).
        body: String,
    },
    /// The request could not be served.
    Error {
        /// What went wrong.
        reason: String,
    },
    /// Reply to [`Request::Shutdown`]: the drain has begun.
    Draining,
}

/// The [`Event::Status`] payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatusBody {
    /// Worker threads.
    pub workers: u64,
    /// Jobs sitting in deques.
    pub queue_depth: u64,
    /// Jobs admitted but not yet delivered.
    pub outstanding: u64,
    /// Sweeps admitted and not yet finished.
    pub active_sweeps: u64,
    /// True once a graceful drain has begun.
    pub draining: bool,
    /// Leases reclaimed since startup.
    pub reclaimed: u64,
    /// Jobs degraded to `lost` since startup.
    pub lost: u64,
    /// Worker threads respawned since startup.
    pub respawns: u64,
    /// Finished artifacts: `(id, digest)`, oldest first.
    pub artifacts: Vec<(String, String)>,
}

/// Resolves a budget tier name from [`Request::Submit`].
pub fn parse_budget(name: &str) -> Option<Budget> {
    match name {
        "full" => Some(Budget::full()),
        "quick" => Some(Budget::quick()),
        "bench" => Some(Budget::bench()),
        "sampled" => Some(Budget::sampled()),
        _ => None,
    }
}

/// Renders a request as one compact JSON line (no trailing newline).
pub fn render_request(req: &Request) -> String {
    let v = match req {
        Request::Ping => JsonValue::obj(vec![("op", s("ping"))]),
        Request::Status => JsonValue::obj(vec![("op", s("status"))]),
        Request::Submit { id, kinds, budget, watch } => JsonValue::obj(vec![
            ("op", s("submit")),
            ("id", s(id)),
            ("kinds", JsonValue::Array(kinds.iter().map(|k| s(k)).collect())),
            ("budget", s(budget)),
            ("watch", JsonValue::Bool(*watch)),
        ]),
        Request::Fetch { digest } => {
            JsonValue::obj(vec![("op", s("fetch")), ("digest", s(digest))])
        }
        Request::Shutdown => JsonValue::obj(vec![("op", s("shutdown"))]),
    };
    checked(v)
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable reason: malformed JSON (including duplicate keys),
/// missing/mistyped fields, or an unknown `op`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = jsonio::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let op = v.get("op").and_then(JsonValue::as_str).ok_or("request has no 'op'")?;
    match op {
        "ping" => Ok(Request::Ping),
        "status" => Ok(Request::Status),
        "submit" => {
            let id = req_str(&v, "id")?;
            let kinds = v
                .get("kinds")
                .and_then(JsonValue::as_array)
                .ok_or("submit has no 'kinds' array")?
                .iter()
                .map(|k| k.as_str().map(str::to_string).ok_or("non-string kind"))
                .collect::<Result<Vec<String>, _>>()?;
            let budget = req_str(&v, "budget")?;
            let watch = v.get("watch").and_then(JsonValue::as_bool).unwrap_or(false);
            Ok(Request::Submit { id, kinds, budget, watch })
        }
        "fetch" => Ok(Request::Fetch { digest: req_str(&v, "digest")? }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Renders an event as one compact JSON line (no trailing newline),
/// through the checked writer — see the module docs.
pub fn render_event(ev: &Event) -> String {
    let v = match ev {
        Event::Pong { workers } => {
            JsonValue::obj(vec![("event", s("pong")), ("workers", JsonValue::UInt(*workers))])
        }
        Event::Status(b) => JsonValue::obj(vec![
            ("event", s("status")),
            ("workers", JsonValue::UInt(b.workers)),
            ("queue_depth", JsonValue::UInt(b.queue_depth)),
            ("outstanding", JsonValue::UInt(b.outstanding)),
            ("active_sweeps", JsonValue::UInt(b.active_sweeps)),
            ("draining", JsonValue::Bool(b.draining)),
            ("reclaimed", JsonValue::UInt(b.reclaimed)),
            ("lost", JsonValue::UInt(b.lost)),
            ("respawns", JsonValue::UInt(b.respawns)),
            (
                "artifacts",
                JsonValue::Array(
                    b.artifacts
                        .iter()
                        .map(|(id, digest)| {
                            JsonValue::obj(vec![("id", s(id)), ("digest", s(digest))])
                        })
                        .collect(),
                ),
            ),
        ]),
        Event::Accepted { id, cells, replayed } => JsonValue::obj(vec![
            ("event", s("accepted")),
            ("id", s(id)),
            ("cells", JsonValue::UInt(*cells)),
            ("replayed", JsonValue::UInt(*replayed)),
        ]),
        Event::Rejected { reason, retry_after_ms } => {
            let mut fields = vec![("event", s("rejected")), ("reason", s(reason))];
            if let Some(ms) = retry_after_ms {
                fields.push(("retry_after_ms", JsonValue::UInt(*ms)));
            }
            JsonValue::obj(fields)
        }
        Event::Cell { workload, predictor, status, attempts } => JsonValue::obj(vec![
            ("event", s("cell")),
            ("workload", s(workload)),
            ("predictor", s(predictor)),
            ("status", s(status)),
            ("attempts", JsonValue::UInt(*attempts)),
        ]),
        Event::Done { id, digest, runs, degraded, deadline_runs, exit } => JsonValue::obj(vec![
            ("event", s("done")),
            ("id", s(id)),
            ("digest", s(digest)),
            ("runs", JsonValue::UInt(*runs)),
            ("degraded", JsonValue::UInt(*degraded)),
            ("deadline_runs", JsonValue::UInt(*deadline_runs)),
            ("exit", JsonValue::UInt(*exit)),
        ]),
        Event::Artifact { digest, body } => JsonValue::obj(vec![
            ("event", s("artifact")),
            ("digest", s(digest)),
            ("body", s(body)),
        ]),
        Event::Error { reason } => {
            JsonValue::obj(vec![("event", s("error")), ("reason", s(reason))])
        }
        Event::Draining => JsonValue::obj(vec![("event", s("draining"))]),
    };
    checked(v)
}

/// Parses one event line (the client side of the wire).
///
/// # Errors
///
/// A human-readable reason, as for [`parse_request`].
pub fn parse_event(line: &str) -> Result<Event, String> {
    let v = jsonio::parse(line).map_err(|e| format!("malformed event: {e}"))?;
    let event = v.get("event").and_then(JsonValue::as_str).ok_or("event has no 'event'")?;
    match event {
        "pong" => Ok(Event::Pong { workers: req_u64(&v, "workers")? }),
        "status" => {
            let artifacts = v
                .get("artifacts")
                .and_then(JsonValue::as_array)
                .ok_or("status has no 'artifacts'")?
                .iter()
                .map(|a| {
                    let id = a.get("id").and_then(JsonValue::as_str).ok_or("artifact sans id")?;
                    let digest =
                        a.get("digest").and_then(JsonValue::as_str).ok_or("artifact sans digest")?;
                    Ok((id.to_string(), digest.to_string()))
                })
                .collect::<Result<Vec<_>, &str>>()?;
            Ok(Event::Status(StatusBody {
                workers: req_u64(&v, "workers")?,
                queue_depth: req_u64(&v, "queue_depth")?,
                outstanding: req_u64(&v, "outstanding")?,
                active_sweeps: req_u64(&v, "active_sweeps")?,
                draining: v.get("draining").and_then(JsonValue::as_bool).unwrap_or(false),
                reclaimed: req_u64(&v, "reclaimed")?,
                lost: req_u64(&v, "lost")?,
                respawns: req_u64(&v, "respawns")?,
                artifacts,
            }))
        }
        "accepted" => Ok(Event::Accepted {
            id: req_str(&v, "id")?,
            cells: req_u64(&v, "cells")?,
            replayed: req_u64(&v, "replayed")?,
        }),
        "rejected" => Ok(Event::Rejected {
            reason: req_str(&v, "reason")?,
            retry_after_ms: v.get("retry_after_ms").and_then(JsonValue::as_u64),
        }),
        "cell" => Ok(Event::Cell {
            workload: req_str(&v, "workload")?,
            predictor: req_str(&v, "predictor")?,
            status: req_str(&v, "status")?,
            attempts: req_u64(&v, "attempts")?,
        }),
        "done" => Ok(Event::Done {
            id: req_str(&v, "id")?,
            digest: req_str(&v, "digest")?,
            runs: req_u64(&v, "runs")?,
            degraded: req_u64(&v, "degraded")?,
            deadline_runs: req_u64(&v, "deadline_runs")?,
            exit: req_u64(&v, "exit")?,
        }),
        "artifact" => Ok(Event::Artifact {
            digest: req_str(&v, "digest")?,
            body: req_str(&v, "body")?,
        }),
        "error" => Ok(Event::Error { reason: req_str(&v, "reason")? }),
        "draining" => Ok(Event::Draining),
        other => Err(format!("unknown event '{other}'")),
    }
}

fn s(text: &str) -> JsonValue {
    JsonValue::Str(text.to_string())
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing uint field '{key}'"))
}

/// Renders through the checked writer; an unrenderable event (cannot
/// happen for the shapes above, which carry no floats) degrades to a
/// protocol error event rather than panicking the connection thread.
fn checked(v: JsonValue) -> String {
    match v.try_render_compact() {
        Ok(line) => line,
        Err(e) => JsonValue::obj(vec![
            ("event", s("error")),
            ("reason", JsonValue::Str(format!("unrenderable event: {e}"))),
        ])
        .render_compact(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_the_wire() {
        let reqs = vec![
            Request::Ping,
            Request::Status,
            Request::Submit {
                id: "quick".into(),
                kinds: vec!["blind".into(), "phast-8s".into()],
                budget: "bench".into(),
                watch: true,
            },
            Request::Fetch { digest: "crc32:deadbeef".into() },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = render_request(&req);
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(parse_request(&line).expect("parses"), req);
        }
    }

    #[test]
    fn events_roundtrip_the_wire() {
        let events = vec![
            Event::Pong { workers: 8 },
            Event::Status(StatusBody {
                workers: 8,
                queue_depth: 3,
                outstanding: 5,
                active_sweeps: 1,
                draining: false,
                reclaimed: 2,
                lost: 0,
                respawns: 2,
                artifacts: vec![("quick".into(), "crc32:00000001".into())],
            }),
            Event::Accepted { id: "quick".into(), cells: 12, replayed: 4 },
            Event::Rejected { reason: "queue-full".into(), retry_after_ms: Some(250) },
            Event::Rejected { reason: "draining".into(), retry_after_ms: None },
            Event::Cell {
                workload: "mcf".into(),
                predictor: "phast".into(),
                status: "ok".into(),
                attempts: 2,
            },
            Event::Done {
                id: "quick".into(),
                digest: "crc32:deadbeef".into(),
                runs: 12,
                degraded: 1,
                deadline_runs: 0,
                exit: 1,
            },
            Event::Artifact {
                digest: "crc32:deadbeef".into(),
                body: "{\n  \"id\": \"quick\"\n}\n".into(),
            },
            Event::Error { reason: "unknown op 'frob'".into() },
            Event::Draining,
        ];
        for ev in events {
            let line = render_event(&ev);
            assert!(!line.contains('\n'), "one line per event: {line}");
            assert_eq!(parse_event(&line).expect("parses"), ev);
        }
    }

    #[test]
    fn malformed_and_unknown_inputs_are_rejected() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"frobnicate\"}").unwrap_err().contains("unknown op"));
        assert!(parse_request("{}").is_err());
        // Duplicate keys are refused by the hardened parser, not
        // last-writer-wins resolved.
        let dup = "{\"op\":\"ping\",\"op\":\"shutdown\"}";
        assert!(parse_request(dup).unwrap_err().contains("duplicate"));
        assert!(parse_event("{\"event\":\"warp\"}").unwrap_err().contains("unknown event"));
        assert!(parse_event("{\"event\":\"pong\"}").unwrap_err().contains("workers"));
    }

    #[test]
    fn budget_tiers_resolve_by_name() {
        assert_eq!(parse_budget("quick").map(|b| b.insts), Some(Budget::quick().insts));
        assert_eq!(parse_budget("bench").map(|b| b.insts), Some(Budget::bench().insts));
        assert_eq!(parse_budget("full").map(|b| b.insts), Some(Budget::full().insts));
        assert_eq!(parse_budget("sampled").map(|b| b.insts), Some(Budget::sampled().insts));
        assert!(parse_budget("lavish").is_none());
    }
}
