//! Seeded fault injection for the service layer itself.
//!
//! The simulator already has a fault-injection plane
//! (`phast_ooo::check::FaultPlan`) that perturbs *predictions*; this
//! module perturbs the **daemon** — workers die mid-lease, heartbeats go
//! silent — so the lease/reclaim machinery in [`crate::serve::sched`] is
//! exercised by tests the same way the simulator's resilience is: from a
//! seed, deterministically, with no wall-clock or OS randomness in the
//! decision path.
//!
//! Decisions are pure functions of `(seed, job id, attempt)`, so a chaos
//! schedule replays identically across runs and across machines, and a
//! retried attempt of the same job draws a *fresh* decision — a job
//! killed on attempt 1 is not doomed to be killed on attempt 2.

/// Denominator for the per-pickup chaos rates (matches the simulator's
/// fault-plan convention of rates per 4096).
pub const CHAOS_DENOM: u64 = 4096;

/// A seeded schedule of service-layer faults, consulted by each worker
/// when it picks a job up.
///
/// The default plan injects nothing; tests arm individual knobs. The
/// `kill_job`/`stall_job` knobs target one exact `(job, attempt)` pickup
/// for tests that need a scripted fault rather than a statistical one.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Seed for the per-pickup decisions.
    pub seed: u64,
    /// Rate (per [`CHAOS_DENOM`] pickups) at which the worker thread dies
    /// on the spot — holding its lease, running nothing, unwinding
    /// nothing — as a stand-in for `SIGKILL` / OOM-kill.
    pub kill_worker: u64,
    /// Rate (per [`CHAOS_DENOM`] pickups) at which the job runs with its
    /// progress heartbeat disconnected, so the housekeeper sees a
    /// wedged lease even though the simulation is advancing.
    pub drop_heartbeat: u64,
    /// Kill the worker deterministically on exactly this `(job, attempt)`
    /// pickup (in addition to the statistical rate).
    pub kill_at: Option<(u64, u64)>,
    /// Disconnect the heartbeat deterministically on exactly this
    /// `(job, attempt)` pickup.
    pub stall_at: Option<(u64, u64)>,
}

impl ChaosPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Should the worker picking up `(job, attempt)` die holding the
    /// lease?
    pub fn kills_worker(&self, job: u64, attempt: u64) -> bool {
        if self.kill_at == Some((job, attempt)) {
            return true;
        }
        self.kill_worker > 0 && draw(self.seed, job, attempt, 0x6b69) < self.kill_worker
    }

    /// Should `(job, attempt)` run with its heartbeat disconnected?
    pub fn drops_heartbeat(&self, job: u64, attempt: u64) -> bool {
        if self.stall_at == Some((job, attempt)) {
            return true;
        }
        self.drop_heartbeat > 0 && draw(self.seed, job, attempt, 0x6862) < self.drop_heartbeat
    }

    /// True if this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.kill_worker == 0
            && self.drop_heartbeat == 0
            && self.kill_at.is_none()
            && self.stall_at.is_none()
    }
}

/// One deterministic draw in `[0, CHAOS_DENOM)` from the decision tuple —
/// a splitmix64 finalizer over the mixed inputs, the same generator
/// family the simulator's fault plan uses.
fn draw(seed: u64, job: u64, attempt: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(job.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(attempt.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z % CHAOS_DENOM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = ChaosPlan::none();
        assert!(p.is_inert());
        for job in 0..64 {
            for attempt in 1..4 {
                assert!(!p.kills_worker(job, attempt));
                assert!(!p.drops_heartbeat(job, attempt));
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = ChaosPlan { seed: 7, kill_worker: 512, drop_heartbeat: 512, ..ChaosPlan::none() };
        let b = a.clone();
        let draws: Vec<(bool, bool)> =
            (0..256).map(|j| (a.kills_worker(j, 1), a.drops_heartbeat(j, 1))).collect();
        let again: Vec<(bool, bool)> =
            (0..256).map(|j| (b.kills_worker(j, 1), b.drops_heartbeat(j, 1))).collect();
        assert_eq!(draws, again);
        // At rate 512/4096 (1 in 8), 256 pickups should see both outcomes.
        assert!(draws.iter().any(|d| d.0), "some pickups draw a kill");
        assert!(draws.iter().any(|d| !d.0), "most pickups do not");
    }

    #[test]
    fn retried_attempts_draw_fresh_decisions() {
        let p = ChaosPlan { seed: 3, kill_worker: 2048, ..ChaosPlan::none() };
        let flips = (0..512).filter(|&j| p.kills_worker(j, 1) != p.kills_worker(j, 2)).count();
        assert!(flips > 0, "attempt number participates in the draw");
    }

    #[test]
    fn scripted_faults_target_one_exact_pickup() {
        let p = ChaosPlan { kill_at: Some((5, 1)), stall_at: Some((9, 2)), ..ChaosPlan::none() };
        assert!(p.kills_worker(5, 1));
        assert!(!p.kills_worker(5, 2), "retry of the killed job survives");
        assert!(!p.kills_worker(4, 1));
        assert!(p.drops_heartbeat(9, 2));
        assert!(!p.drops_heartbeat(9, 1));
    }
}
