//! `phast-serve`: a persistent, fault-tolerant simulation daemon.
//!
//! The batch binary (`phast-experiments`) runs one sweep and exits; this
//! module turns the same engine into a **service**: a daemon that
//! accepts sweep submissions over a TCP JSON-lines protocol, executes
//! them on a persistent [work-stealing scheduler](sched) whose every job
//! runs under a [lease](lease) with a progress heartbeat, survives
//! worker death and wedged runs by reclaiming leases and retrying with
//! the established reseed policy, journals everything write-ahead so the
//! merged artifacts stay byte-identical to a batch run's, and drains
//! gracefully on `SIGTERM` with the established exit-code taxonomy.
//!
//! Module map (data flows top to bottom):
//!
//! * [`proto`] — wire protocol: requests/events, checked rendering,
//!   fail-closed parsing;
//! * [`server`] — TCP accept loop, admission control/backpressure,
//!   artifact index, graceful drain;
//! * [`runner`] — sweep ↔ scheduler adapter: cells out, journal lines
//!   and sealed artifacts in;
//! * [`sched`] — persistent workers, per-worker deques with stealing,
//!   park/unpark, the housekeeping thread;
//! * [`lease`] — the lease table: progress heartbeats, stall detection,
//!   at-most-once delivery;
//! * [`chaos`] — seeded service-layer fault injection (worker kills,
//!   heartbeat loss) driving the chaos tests;
//! * [`client`] — the blocking client the CLI, CI, and tests share.
//!
//! Protocol and semantics are specified in `docs/SERVICE.md`.

pub mod chaos;
pub mod client;
pub mod lease;
pub mod proto;
pub mod runner;
pub mod sched;
pub mod server;

pub use chaos::ChaosPlan;
pub use client::Client;
pub use lease::{LeaseConfig, LeaseTable};
pub use proto::{Event, Request, StatusBody};
pub use runner::{submit_sweep, SweepOutcome, SweepRun, SweepSpec};
pub use sched::{BatchHandle, JobCtx, JobSpec, SchedConfig, SchedStats, Scheduler, SubmitError};
pub use server::{ServeConfig, Server};
