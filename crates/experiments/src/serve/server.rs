//! The daemon itself: TCP accept loop, per-connection protocol threads,
//! admission control, artifact index, and graceful drain.
//!
//! Connection model: one thread per client, blocking JSON-lines reads.
//! A `submit` with `watch` dedicates the connection to that sweep — the
//! thread streams [`Event::Cell`] lines and the final [`Event::Done`].
//! If the client vanishes mid-stream (torn connection, closed socket),
//! the sweep is **not** cancelled: it downgrades to fire-and-forget, the
//! daemon finishes it, journals it, writes the artifact, and serves it
//! later by digest via `fetch` — client lifetime and result lifetime are
//! deliberately decoupled.
//!
//! Admission control: at most `max_active_sweeps` sweeps may be in
//! flight; excess submissions are rejected with a typed
//! [`Event::Rejected`] carrying `retry_after_ms`, so clients back off
//! instead of piling work onto a saturated queue.
//!
//! Graceful drain ([`Server::shutdown`] or the `shutdown` op): stop
//! accepting connections and admitting sweeps, let in-flight sweeps
//! finish (lease reclaims and retries included), flush their artifacts,
//! drain the scheduler, and publish a process exit code from the
//! established taxonomy (`0` ok / `1` degraded / `3` integrity / `4`
//! deadline) covering everything the daemon ran.

use super::proto::{self, Event, Request, StatusBody};
use super::runner::{submit_sweep, SweepRun, SweepSpec};
use super::sched::{SchedConfig, Scheduler};
use crate::harness::exit_code;
use crate::journal::Journal;
use crate::predictors::PredictorKind;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
pub struct ServeConfig {
    /// Bind address; use port `0` to let the OS pick (tests).
    pub addr: String,
    /// Scheduler shape and resilience policy.
    pub sched: SchedConfig,
    /// Admission cap: sweeps in flight before submissions are rejected
    /// with backpressure.
    pub max_active_sweeps: usize,
    /// Where finished `BENCH_<id>.json` artifacts are written (`None`
    /// keeps them in memory only, served by digest).
    pub json_dir: Option<PathBuf>,
    /// Daemon journal: every sweep journals its cells here under its id
    /// as scope, and resubmitted cells replay.
    pub journal: Option<Journal>,
    /// Per-run wall-clock watchdog applied to every cell.
    pub run_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            sched: SchedConfig::default(),
            max_active_sweeps: 2,
            json_dir: None,
            journal: None,
            run_timeout: None,
        }
    }
}

/// One finished artifact in the daemon's in-memory index.
struct ArtifactEntry {
    id: String,
    digest: String,
    body: String,
}

struct ServerShared {
    sched: Scheduler,
    json_dir: Option<PathBuf>,
    journal: Option<Journal>,
    run_timeout: Option<Duration>,
    max_active_sweeps: usize,
    addr: SocketAddr,
    active_sweeps: AtomicUsize,
    artifacts: Mutex<Vec<ArtifactEntry>>,
    shutdown: AtomicBool,
    any_degraded: AtomicBool,
    any_deadline: AtomicBool,
    any_integrity: AtomicBool,
    exit: Mutex<Option<i32>>,
    exited: Condvar,
}

/// A running `phast-serve` daemon. [`Server::start`] binds and spawns
/// everything; [`Server::join`] blocks until a graceful drain completes
/// and returns the process exit code.
pub struct Server {
    shared: Arc<ServerShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds `cfg.addr`, starts the scheduler, and begins accepting
    /// connections.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            sched: Scheduler::start(cfg.sched),
            json_dir: cfg.json_dir,
            journal: cfg.journal,
            run_timeout: cfg.run_timeout,
            max_active_sweeps: cfg.max_active_sweeps.max(1),
            addr,
            active_sweeps: AtomicUsize::new(0),
            artifacts: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            any_degraded: AtomicBool::new(false),
            any_deadline: AtomicBool::new(false),
            any_integrity: AtomicBool::new(false),
            exit: Mutex::new(None),
            exited: Condvar::new(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server { shared, accept: Mutex::new(Some(accept)) })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests a graceful drain (idempotent; also triggered by the
    /// `shutdown` op and, in the binary, by `SIGTERM`).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the drain completes and returns the daemon's exit
    /// code: the worst outcome across every sweep it ran.
    pub fn join(&self) -> i32 {
        let mut exit = self.shared.exit.lock().expect("exit slot");
        while exit.is_none() {
            exit = self.shared.exited.wait(exit).expect("exit condvar");
        }
        let code = exit.expect("published");
        drop(exit);
        if let Some(h) = self.accept.lock().expect("accept handle").take() {
            let _ = h.join();
        }
        code
    }
}

/// Accept connections until shutdown, then run the drain sequence.
fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || client_thread(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    drop(listener); // stop accepting: new connections are refused
    // Let every admitted sweep finish and flush its artifact...
    while shared.active_sweeps.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...then take the scheduler down (no outstanding jobs remain).
    shared.sched.drain();
    let code = if shared.any_integrity.load(Ordering::SeqCst) {
        exit_code::INTEGRITY
    } else {
        exit_code::for_outcome(
            shared.any_degraded.load(Ordering::SeqCst),
            shared.any_deadline.load(Ordering::SeqCst),
        )
    };
    *shared.exit.lock().expect("exit slot") = Some(code);
    shared.exited.notify_all();
}

/// Writes one event line; an error means the client is gone.
fn send(stream: &mut TcpStream, ev: &Event) -> std::io::Result<()> {
    let mut line = proto::render_event(ev);
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// One connection: read request lines until EOF, serving each.
fn client_thread(stream: TcpStream, shared: Arc<ServerShared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed or tore the connection
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request = match proto::parse_request(trimmed) {
            Ok(r) => r,
            Err(reason) => {
                if send(&mut writer, &Event::Error { reason }).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Ping => send(
                &mut writer,
                &Event::Pong { workers: shared.sched.workers() as u64 },
            )
            .is_ok(),
            Request::Status => send(&mut writer, &status_event(&shared)).is_ok(),
            Request::Fetch { digest } => {
                let found = shared
                    .artifacts
                    .lock()
                    .expect("artifact index")
                    .iter()
                    .find(|a| a.digest == digest)
                    .map(|a| (a.digest.clone(), a.body.clone()));
                let ev = match found {
                    Some((digest, body)) => Event::Artifact { digest, body },
                    None => Event::Error { reason: format!("no artifact with digest {digest}") },
                };
                send(&mut writer, &ev).is_ok()
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                send(&mut writer, &Event::Draining).is_ok()
            }
            Request::Submit { id, kinds, budget, watch } => {
                handle_submit(&shared, &mut writer, id, kinds, budget, watch)
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// The `status` reply: scheduler health plus the artifact index.
fn status_event(shared: &ServerShared) -> Event {
    let stats = shared.sched.stats();
    let artifacts = shared
        .artifacts
        .lock()
        .expect("artifact index")
        .iter()
        .map(|a| (a.id.clone(), a.digest.clone()))
        .collect();
    Event::Status(StatusBody {
        workers: shared.sched.workers() as u64,
        queue_depth: shared.sched.queue_depth() as u64,
        outstanding: shared.sched.outstanding() as u64,
        active_sweeps: shared.active_sweeps.load(Ordering::SeqCst) as u64,
        draining: shared.shutdown.load(Ordering::SeqCst) || shared.sched.draining(),
        reclaimed: stats.reclaimed,
        lost: stats.lost,
        respawns: stats.respawns,
        artifacts,
    })
}

/// Admission control, submission, and (for watchers) the event stream.
/// Returns whether the connection is still usable.
fn handle_submit(
    shared: &Arc<ServerShared>,
    writer: &mut TcpStream,
    id: String,
    kinds: Vec<String>,
    budget: String,
    watch: bool,
) -> bool {
    if shared.shutdown.load(Ordering::SeqCst) || shared.sched.draining() {
        return send(
            writer,
            &Event::Rejected { reason: "draining".to_string(), retry_after_ms: None },
        )
        .is_ok();
    }
    // Backpressure: admit up to the cap, atomically.
    let admitted = shared
        .active_sweeps
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.max_active_sweeps).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        let backlog = shared.sched.outstanding() as u64;
        return send(
            writer,
            &Event::Rejected {
                reason: "queue-full".to_string(),
                retry_after_ms: Some(250 * (backlog + 1)),
            },
        )
        .is_ok();
    }
    // Past admission: every early return must release the slot.
    let release = |shared: &ServerShared| {
        shared.active_sweeps.fetch_sub(1, Ordering::SeqCst);
    };
    let Some(budget) = proto::parse_budget(&budget) else {
        release(shared);
        return send(writer, &Event::Error { reason: format!("unknown budget tier '{budget}'") })
            .is_ok();
    };
    let mut parsed: Vec<PredictorKind> = Vec::with_capacity(kinds.len());
    for label in &kinds {
        match PredictorKind::from_label(label) {
            Some(k) => parsed.push(k),
            None => {
                release(shared);
                return send(
                    writer,
                    &Event::Error { reason: format!("unknown predictor label '{label}'") },
                )
                .is_ok();
            }
        }
    }
    if id.is_empty() || !id.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
        release(shared);
        return send(
            writer,
            &Event::Error { reason: format!("bad sweep id '{id}' (want [A-Za-z0-9_-]+)") },
        )
        .is_ok();
    }
    let spec = SweepSpec {
        id: id.clone(),
        kinds: parsed,
        budget,
        cfg: phast_ooo::CoreConfig::alder_lake(),
        run_timeout: shared.run_timeout,
    };
    let scope = shared.journal.as_ref().map(|j| j.scope(&id));
    let run = match submit_sweep(spec, &shared.sched, scope) {
        Ok(run) => run,
        Err(e) => {
            release(shared);
            return send(writer, &Event::Rejected { reason: e.to_string(), retry_after_ms: None })
                .is_ok();
        }
    };
    let accepted = Event::Accepted {
        id: id.clone(),
        cells: run.cells() as u64,
        replayed: run.replayed() as u64,
    };
    if send(writer, &accepted).is_err() {
        // Client died between submit and ack: fire-and-forget from here.
        drive_sweep(Arc::clone(shared), run);
        return false;
    }
    if watch {
        // The connection is dedicated to this sweep until Done (or until
        // the client tears it down, which downgrades to fire-and-forget).
        drive_sweep_inline(shared, run, writer)
    } else {
        let shared2 = Arc::clone(shared);
        std::thread::spawn(move || drive_sweep(shared2, run));
        true
    }
}

/// Drives a sweep to completion on the calling (connection) thread,
/// streaming events until the client disconnects. Returns whether the
/// connection survived.
fn drive_sweep_inline(shared: &Arc<ServerShared>, run: SweepRun, writer: &mut TcpStream) -> bool {
    let mut attached = true;
    while let Some(cell) = run.next_event() {
        if attached {
            let ev = Event::Cell {
                workload: cell.workload,
                predictor: cell.predictor,
                status: cell.status,
                attempts: cell.attempts,
            };
            if send(writer, &ev).is_err() {
                // Torn connection: downgrade to fire-and-forget. The
                // sweep keeps running; the artifact will be served by
                // digest.
                attached = false;
            }
        }
    }
    let done = finish_sweep(shared, run);
    if attached {
        attached = send(writer, &done).is_ok();
    }
    attached
}

/// Detached driver for fire-and-forget sweeps (no client, or the client
/// died before acknowledgement).
fn drive_sweep(shared: Arc<ServerShared>, run: SweepRun) {
    while run.next_event().is_some() {}
    let _ = finish_sweep(&shared, run);
}

/// Completes a sweep: assemble + persist the artifact, index it, fold
/// its verdict into the daemon's exit taxonomy, release the admission
/// slot, and build the `done` event.
fn finish_sweep(shared: &Arc<ServerShared>, run: SweepRun) -> Event {
    let outcome = run.finish(shared.sched.workers(), shared.json_dir.as_deref());
    if !outcome.degraded.is_empty() {
        shared.any_degraded.store(true, Ordering::SeqCst);
    }
    if outcome.deadline_runs > 0 {
        shared.any_deadline.store(true, Ordering::SeqCst);
    }
    if outcome.exit == exit_code::INTEGRITY {
        shared.any_integrity.store(true, Ordering::SeqCst);
    }
    if let Some(e) = &outcome.write_error {
        eprintln!("warning: artifact write failed ({e}); serving from memory only");
    }
    let done = Event::Done {
        id: outcome.artifact.id.clone(),
        digest: outcome.digest.clone(),
        runs: outcome.artifact.runs.len() as u64,
        degraded: outcome.degraded.len() as u64,
        deadline_runs: outcome.deadline_runs as u64,
        exit: outcome.exit as u64,
    };
    shared.artifacts.lock().expect("artifact index").push(ArtifactEntry {
        id: outcome.artifact.id.clone(),
        digest: outcome.digest,
        body: outcome.body,
    });
    shared.active_sweeps.fetch_sub(1, Ordering::SeqCst);
    done
}
