//! Sweep execution on the daemon scheduler: cells in, artifact out.
//!
//! [`submit_sweep`] decomposes a [`SweepSpec`] into one scheduler job per
//! (predictor kind × workload) cell — the same kind-major cell order
//! [`Sweep::run_grid`](crate::harness::Sweep::run_grid) uses, so a daemon
//! sweep's `BENCH_*.json` is **byte-identical** to a batch sweep's
//! (modulo the wall-clock/attempt metadata the resilience docs carve
//! out). Each job:
//!
//! * journals a write-ahead `start` line with its attempt number and
//!   per-attempt fault reseed (the PR 5 retry policy, driven here by
//!   lease reclamation instead of an in-thread loop),
//! * runs [`execute_cell_once`] under a `Deadline` carrying the lease's
//!   cancellation flag and progress heartbeat,
//! * journals a `done` line **once, at delivery** — stale attempts from
//!   reclaimed leases never journal, so a resumed daemon journal replays
//!   exactly what the artifact recorded.
//!
//! Cells the journal already holds as `ok` are replayed without touching
//! the scheduler, exactly as `--resume` does for batch sweeps.

use super::sched::{BatchHandle, CellEvent, JobCtx, JobSpec, LaneCell, Scheduler, SubmitError};
use crate::artifact::{git_describe, RunRecord, SweepArtifact};
use crate::harness::{
    build_lane_job, cell_key, exit_code, execute_cell_once, lane_run_result, replayed_result,
    reseed_for_attempt, Budget, RunFailure, RunResult,
};
use crate::journal::JournalScope;
use crate::predictors::PredictorKind;
use phast_ooo::{CoreConfig, Deadline};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One sweep as a client submits it: which grid to run, under what
/// budget and core, with what per-run watchdog.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Artifact id (`BENCH_<id>.json`); also the journal scope.
    pub id: String,
    /// Predictor kinds, in row order.
    pub kinds: Vec<PredictorKind>,
    /// Budget tier.
    pub budget: Budget,
    /// Core configuration every cell runs on.
    pub cfg: CoreConfig,
    /// Per-run wall-clock watchdog (`None` disarms it).
    pub run_timeout: Option<Duration>,
}

impl SweepSpec {
    /// Total cells in the grid.
    pub fn cells(&self) -> usize {
        self.kinds.len() * self.budget.workloads().len()
    }
}

/// A sweep in flight on the scheduler.
pub struct SweepRun {
    spec: SweepSpec,
    handle: BatchHandle,
    /// Journal-replayed results, indexed by cell position (kind-major).
    replayed: Vec<Option<RunResult>>,
    started: Instant,
}

impl SweepRun {
    /// Blocks for the next cell-delivery event; `None` once every *live*
    /// (non-replayed) cell has delivered. Event indices are positions in
    /// the live batch — use the workload/predictor labels for display.
    pub fn next_event(&self) -> Option<CellEvent> {
        self.handle.next_event()
    }

    /// Total cells in the sweep, replayed ones included.
    pub fn cells(&self) -> usize {
        self.replayed.len()
    }

    /// Cells replayed verbatim from the journal (never scheduled).
    pub fn replayed(&self) -> usize {
        self.replayed.iter().filter(|r| r.is_some()).count()
    }

    /// Waits for every live cell, merges in the replays, and assembles
    /// the sealed artifact. `workers` is recorded in the artifact (pass
    /// the scheduler's count); `json_dir` writes `BENCH_<id>.json` when
    /// given.
    pub fn finish(self, workers: usize, json_dir: Option<&Path>) -> SweepOutcome {
        let live = self.handle.wait();
        let mut live = live.into_iter();
        let results: Vec<RunResult> = self
            .replayed
            .into_iter()
            .map(|slot| match slot {
                Some(r) => r,
                None => live.next().expect("one live result per non-replayed cell"),
            })
            .collect();
        let records: Vec<RunRecord> = results
            .iter()
            .map(|r| match &r.replay {
                Some(record) => record.clone(),
                None => r.to_record(),
            })
            .collect();
        let degraded: Vec<String> =
            results.iter().filter_map(RunResult::degraded_entry).collect();
        let deadline_runs = results
            .iter()
            .filter(|r| r.failure.as_ref().is_some_and(|f| f.kind() == "deadline"))
            .count();
        let artifact = SweepArtifact {
            id: self.spec.id.clone(),
            git: git_describe(),
            workers,
            budget_insts: self.spec.budget.insts,
            budget_iters: self.spec.budget.workload_iters,
            workloads: self.spec.budget.workloads().len(),
            wall_s: self.started.elapsed().as_secs_f64(),
            runs: records,
            degraded: degraded.clone(),
        };
        let body = artifact.to_json();
        // Fail-closed self-check: the rendered artifact must verify
        // against its own digest before anyone is told it is good.
        let integrity_ok = SweepArtifact::verify_json(&body).is_ok();
        let digest = artifact.digest();
        let (path, write_error) = match json_dir {
            Some(dir) if integrity_ok => match artifact.write_to(dir) {
                Ok(p) => (Some(p), None),
                Err(e) => (None, Some(format!("{}: {e}", dir.display()))),
            },
            _ => (None, None),
        };
        let exit = if !integrity_ok {
            exit_code::INTEGRITY
        } else {
            exit_code::for_outcome(!degraded.is_empty(), deadline_runs > 0)
        };
        SweepOutcome {
            artifact,
            body,
            digest,
            path,
            write_error,
            degraded,
            deadline_runs,
            exit,
        }
    }
}

/// The finished sweep: the artifact, its sealed rendering, and the
/// resilience verdict.
pub struct SweepOutcome {
    /// The assembled artifact.
    pub artifact: SweepArtifact,
    /// The sealed JSON rendering (`digest` field included) — what
    /// `BENCH_<id>.json` contains and what `fetch` serves by digest.
    pub body: String,
    /// The artifact's integrity digest (`crc32:xxxxxxxx`).
    pub digest: String,
    /// Where the artifact was written, if a directory was given and the
    /// write succeeded.
    pub path: Option<PathBuf>,
    /// The write failure, if the artifact could not be persisted (the
    /// in-memory body is still valid and served by digest).
    pub write_error: Option<String>,
    /// Degraded-run descriptions, in cell order.
    pub degraded: Vec<String>,
    /// Cells cut off by the per-run watchdog.
    pub deadline_runs: usize,
    /// Exit-taxonomy verdict for this sweep
    /// ([`exit_code`](crate::harness::exit_code)): `0` clean, `1`
    /// degraded, `3` integrity failure, `4` deadline overruns.
    pub exit: i32,
}

/// Submits every live cell of `spec` to the scheduler. Cells the journal
/// holds as `ok` are replayed and never scheduled.
///
/// # Errors
///
/// [`SubmitError::Draining`] once the scheduler is shutting down.
pub fn submit_sweep(
    spec: SweepSpec,
    sched: &Scheduler,
    journal: Option<JournalScope>,
) -> Result<SweepRun, SubmitError> {
    let workloads = spec.budget.workloads();
    let mut replayed: Vec<Option<RunResult>> = Vec::with_capacity(spec.cells());
    let mut jobs: Vec<JobSpec> = Vec::new();
    for kind in &spec.kinds {
        let label = kind.label();
        for workload in &workloads {
            let key = cell_key(workload.name, &label, &spec.cfg, &spec.budget, None);
            if let Some(done) = journal.as_ref().and_then(|j| j.lookup(&key)) {
                replayed.push(Some(replayed_result(done)));
                continue;
            }
            replayed.push(None);
            jobs.push(cell_job(
                *workload,
                kind.clone(),
                &spec,
                key,
                journal.clone(),
            ));
        }
    }
    let handle = sched.submit(jobs)?;
    Ok(SweepRun { spec, handle, replayed, started: Instant::now() })
}

/// Builds the scheduler job for one live cell: owned data only (the
/// scheduler's workers outlive any caller stack frame).
fn cell_job(
    workload: phast_workloads::Workload,
    kind: PredictorKind,
    spec: &SweepSpec,
    key: String,
    journal: Option<JournalScope>,
) -> JobSpec {
    let cfg = spec.cfg.clone();
    let budget = spec.budget.clone();
    let run_timeout = spec.run_timeout;
    let journal_run = journal.clone();
    let key_run = key.clone();
    let kind_run = kind.clone();
    // The lane-batched form of the same cell: identical reseed, journal
    // `start` line, and deadline wiring — only the cycle loop it runs
    // under differs, and that is byte-identical by the LaneBatch contract.
    let cfg_lane = spec.cfg.clone();
    let budget_lane = spec.budget.clone();
    let journal_lane = journal.clone();
    let key_lane = key.clone();
    let kind_lane = kind.clone();
    let label = kind.label();
    let lane = LaneCell {
        build: Arc::new(move |ctx: &JobCtx| {
            let (cfg_attempt, seed) = reseed_for_attempt(&cfg_lane, ctx.attempt);
            if let Some(j) = &journal_lane {
                j.log_start(&key_lane, ctx.attempt, seed);
            }
            let deadline = match run_timeout {
                Some(t) => Deadline::after(t),
                None => Deadline::none(),
            }
            .with_cancel(Arc::clone(&ctx.cancel))
            .with_progress(Arc::clone(&ctx.progress));
            build_lane_job(&workload, &kind_lane, &cfg_attempt, &budget_lane, deadline)
        }),
        finish: Arc::new(move |report| lane_run_result(workload.name, &label, report)),
    };
    JobSpec {
        workload: workload.name.to_string(),
        predictor: kind.label(),
        run: Arc::new(move |ctx: &JobCtx| {
            let (cfg_attempt, seed) = reseed_for_attempt(&cfg, ctx.attempt);
            if let Some(j) = &journal_run {
                j.log_start(&key_run, ctx.attempt, seed);
            }
            let deadline = match run_timeout {
                Some(t) => Deadline::after(t),
                None => Deadline::none(),
            }
            .with_cancel(Arc::clone(&ctx.cancel))
            .with_progress(Arc::clone(&ctx.progress));
            execute_cell_once(&workload, &kind_run, &cfg_attempt, &budget, &deadline)
        }),
        lane: Some(lane),
        on_delivered: Some(Arc::new(move |run: &RunResult| {
            if let Some(j) = &journal {
                let status = run.failure.as_ref().map_or("ok", RunFailure::kind);
                j.log_done(&key, &run.to_record(), status, run.attempts);
            }
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Sweep;
    use crate::serve::sched::SchedConfig;

    fn tiny_budget() -> Budget {
        Budget { insts: 4_000, workload_iters: 30_000, max_workloads: Some(2) }
    }

    fn spec(id: &str) -> SweepSpec {
        SweepSpec {
            id: id.to_string(),
            kinds: vec![PredictorKind::Blind, PredictorKind::StoreSets],
            budget: tiny_budget(),
            cfg: CoreConfig::alder_lake(),
            run_timeout: None,
        }
    }

    /// Strips the per-execution metadata the resilience docs carve out of
    /// byte-identity: wall-clock, throughput, attempts, and the digest
    /// (which covers them).
    fn normalize(body: &str) -> String {
        body.lines()
            .filter(|l| {
                !["\"wall_s\"", "\"mips\"", "\"simulated_mips\"", "\"attempts\"", "\"digest\"", "\"git\"", "\"workers\""]
                    .iter()
                    .any(|k| l.trim_start().starts_with(k))
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn daemon_sweep_matches_a_serial_batch_sweep_byte_for_byte() {
        let sched = Scheduler::start(SchedConfig { workers: 4, ..SchedConfig::default() });
        let run = submit_sweep(spec("svc"), &sched, None).expect("admitted");
        assert_eq!(run.cells(), 4);
        let outcome = run.finish(sched.workers(), None);
        assert_eq!(outcome.exit, exit_code::OK, "degraded: {:?}", outcome.degraded);
        sched.drain();

        // The serial reference: same grid through the batch harness.
        let serial = Sweep::serial();
        let s = spec("svc");
        let t = Instant::now();
        serial.run_grid(&s.kinds, &s.cfg, &s.budget);
        let reference = serial.artifact("svc", &s.budget, t.elapsed()).to_json();

        assert_eq!(
            normalize(&outcome.body),
            normalize(&reference),
            "daemon artifact diverges from the serial reference"
        );
    }

    #[test]
    fn lane_batched_daemon_sweep_matches_the_solo_daemon_sweep() {
        let batched = Scheduler::start(SchedConfig { workers: 2, lanes: 4, ..SchedConfig::default() });
        let run = submit_sweep(spec("svc-lanes"), &batched, None).expect("admitted");
        let outcome = run.finish(batched.workers(), None);
        assert_eq!(outcome.exit, exit_code::OK, "degraded: {:?}", outcome.degraded);
        batched.drain();

        let solo = Scheduler::start(SchedConfig { workers: 2, lanes: 1, ..SchedConfig::default() });
        let reference = submit_sweep(spec("svc-lanes"), &solo, None)
            .expect("admitted")
            .finish(solo.workers(), None);
        solo.drain();
        assert_eq!(
            normalize(&outcome.body),
            normalize(&reference.body),
            "lane-batched daemon sweep diverges from the solo daemon sweep"
        );
    }

    #[test]
    fn journal_replay_skips_completed_cells() {
        let dir = std::env::temp_dir().join(format!("phast-serve-runner-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = crate::journal::Journal::create(&dir.join("journal.jsonl"), "phast-serve-v1")
            .expect("journal");
        let sched = Scheduler::start(SchedConfig { workers: 2, ..SchedConfig::default() });

        let first = submit_sweep(spec("replay"), &sched, Some(journal.scope("replay")))
            .expect("admitted");
        assert_eq!(first.replayed(), 0);
        let first = first.finish(sched.workers(), None);
        drop(journal);

        // Resume the journal: every cell is now replayed, nothing runs.
        let resumed =
            crate::journal::Journal::resume(&dir.join("journal.jsonl"), "phast-serve-v1")
                .expect("resumes");
        let second = submit_sweep(spec("replay"), &sched, Some(resumed.scope("replay")))
            .expect("admitted");
        assert_eq!(second.replayed(), 4, "all cells replay from the journal");
        let second = second.finish(sched.workers(), None);
        assert_eq!(normalize(&first.body), normalize(&second.body));
        sched.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
