//! A blocking JSON-lines client for `phast-serve`, shared by the CLI
//! (`phast-serve --client ...`), the CI `service` job, and the chaos
//! tests — which also use it to *misbehave*: dropping the connection
//! mid-stream is one line ([`Client::into_stream`] + drop).

use super::proto::{self, Event, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Maps a protocol-level defect (unparseable event) onto `io::Error` so
/// callers handle one error type.
fn protocol_err(reason: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, reason)
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Connects, retrying for up to `patience` while the daemon binds —
    /// for scripts that start the daemon and connect immediately.
    ///
    /// # Errors
    ///
    /// The final connection failure once patience is exhausted.
    pub fn connect_with_patience(addr: &str, patience: Duration) -> std::io::Result<Client> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        let mut line = proto::render_request(req);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads the next event line (blocking).
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the daemon closed the connection; `InvalidData`
    /// for an unparseable event; socket errors otherwise.
    pub fn recv(&mut self) -> std::io::Result<Event> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return proto::parse_event(trimmed).map_err(protocol_err);
            }
        }
    }

    /// Sends a request and returns the single reply event.
    ///
    /// # Errors
    ///
    /// As for [`Client::send`] and [`Client::recv`].
    pub fn request(&mut self, req: &Request) -> std::io::Result<Event> {
        self.send(req)?;
        self.recv()
    }

    /// Submits a sweep with `watch` on and returns the first reply
    /// (`accepted`, `rejected`, or `error`); stream the cells with
    /// [`Client::recv`] until [`Event::Done`].
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn submit_watch(
        &mut self,
        id: &str,
        kinds: &[&str],
        budget: &str,
    ) -> std::io::Result<Event> {
        self.request(&Request::Submit {
            id: id.to_string(),
            kinds: kinds.iter().map(|k| k.to_string()).collect(),
            budget: budget.to_string(),
            watch: true,
        })
    }

    /// Reads events until [`Event::Done`] (returned last) or EOF.
    ///
    /// # Errors
    ///
    /// As for [`Client::recv`].
    pub fn stream_to_done(&mut self) -> std::io::Result<Vec<Event>> {
        let mut events = Vec::new();
        loop {
            let ev = self.recv()?;
            let done = matches!(ev, Event::Done { .. });
            events.push(ev);
            if done {
                return Ok(events);
            }
        }
    }

    /// Fetches a finished artifact body by digest.
    ///
    /// # Errors
    ///
    /// `InvalidData` carrying the daemon's reason if the digest is
    /// unknown (or the reply is not an artifact); socket errors
    /// otherwise.
    pub fn fetch(&mut self, digest: &str) -> std::io::Result<String> {
        match self.request(&Request::Fetch { digest: digest.to_string() })? {
            Event::Artifact { body, .. } => Ok(body),
            Event::Error { reason } => Err(protocol_err(reason)),
            other => Err(protocol_err(format!("unexpected reply to fetch: {other:?}"))),
        }
    }

    /// Surrenders the underlying stream — dropping the return value
    /// tears the connection, which is exactly what the chaos tests do to
    /// simulate a client dying mid-watch.
    pub fn into_stream(self) -> TcpStream {
        self.writer
    }
}
