//! In-tree scoped-thread worker pool for the sweep engine.
//!
//! The experiment matrices (workload × predictor × config) are
//! embarrassingly parallel: every run builds its own program and predictor
//! from deterministic seeds and shares nothing with its neighbours. This
//! module fans a task slice across `std::thread::scope` workers while
//! keeping the *output* deterministic: results land in a slot vector
//! indexed by task position, so callers observe exactly the order a serial
//! loop would produce, regardless of which worker finished first.
//!
//! No external dependencies — like the `crates/compat-*` stand-ins, this
//! is deliberately the smallest thing that does the job: an atomic
//! work-stealing cursor plus one `Mutex<Option<R>>` per slot (uncontended;
//! each slot is locked exactly once).

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count picked by
/// [`default_workers`] (`PHAST_WORKERS=1` forces serial execution).
pub const WORKERS_ENV: &str = "PHAST_WORKERS";

/// Parses a worker-count override: a positive decimal integer.
///
/// # Errors
///
/// Returns a human-readable description of what was wrong with the value
/// — the callers (`PHAST_WORKERS`, `--workers=N`) print it and exit
/// rather than silently falling back to a default the user did not ask
/// for.
pub fn parse_workers(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!("worker count must be at least 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("expected a positive integer worker count, got '{raw}'")),
    }
}

/// The worker count a parallel sweep uses by default:
/// `std::thread::available_parallelism()`, overridable with the
/// `PHAST_WORKERS` environment variable. A malformed override is a hard
/// error (exit 2), not a silent fallback.
pub fn default_workers() -> usize {
    match std::env::var(WORKERS_ENV) {
        Ok(raw) => match parse_workers(&raw) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: invalid {WORKERS_ENV}: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
    }
}

/// Environment variable overriding the lane count picked by
/// [`default_lanes`] (`PHAST_LANES=1` forces the solo per-cell path).
pub const LANES_ENV: &str = "PHAST_LANES";

/// Parses a lane-count override: a positive decimal integer — the same
/// reject-garbage contract as [`parse_workers`].
///
/// # Errors
///
/// Returns a human-readable description of what was wrong with the value
/// — the callers (`PHAST_LANES`, `--lanes=N`) print it and exit 2 rather
/// than silently falling back to a default the user did not ask for.
pub fn parse_lanes(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!("lane count must be at least 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("expected a positive integer lane count, got '{raw}'")),
    }
}

/// The lane count grid sweeps batch cells at by default: 1 (solo
/// execution — lane batching is opt-in via `--lanes=N`), overridable
/// with the `PHAST_LANES` environment variable. A malformed override is
/// a hard error (exit 2), not a silent fallback.
pub fn default_lanes() -> usize {
    match std::env::var(LANES_ENV) {
        Ok(raw) => match parse_lanes(&raw) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: invalid {LANES_ENV}: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => 1,
    }
}

/// Runs `run(index, &task)` for every task, fanned across at most
/// `workers` scoped threads, and returns the results **in task order**.
///
/// With `workers <= 1` (or a single task) this degenerates to the plain
/// serial loop — byte-identical behaviour, no threads spawned. A panic in
/// any worker propagates to the caller once the scope joins.
pub fn run_matrix<T, R, F>(workers: usize, tasks: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.min(tasks.len());
    if workers <= 1 {
        return tasks.iter().enumerate().map(|(i, t)| run(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let result = run(i, task);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot").expect("worker filled every slot"))
        .collect()
}

/// A panic caught at a job boundary, reduced to its payload message.
///
/// The sweep engine treats a panicking run like any other degraded run: it
/// is recorded, reported, and *does not* take the rest of the matrix down
/// with it. The backtrace (if any) has already been printed by the default
/// panic hook; what survives here is the payload, for the degraded-run
/// registry and the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case); `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

/// Runs `f` with panics caught and converted to [`JobPanic`].
///
/// The `AssertUnwindSafe` is sound for sweep jobs: each job owns its
/// program, predictor and core outright, and on panic the job's result is
/// discarded wholesale — no partially mutated state is observed afterward.
///
/// # Errors
///
/// [`JobPanic`] if `f` panicked.
pub fn catch_job<R>(f: impl FnOnce() -> R) -> Result<R, JobPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        JobPanic { message }
    })
}

/// [`run_matrix`] with per-job panic isolation: each slot holds
/// `Ok(result)` or `Err(JobPanic)` and a panicking job never unwinds
/// through the pool — every other task still runs, and results still
/// arrive in task order.
pub fn run_matrix_isolated<T, R, F>(
    workers: usize,
    tasks: &[T],
    run: F,
) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_matrix(workers, tasks, |i, t| catch_job(|| run(i, t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        let tasks: Vec<usize> = (0..64).collect();
        for workers in [1, 2, 7, 64, 200] {
            let out = run_matrix(workers, &tasks, |i, &t| {
                assert_eq!(i, t);
                t * 3
            });
            assert_eq!(out, tasks.iter().map(|t| t * 3).collect::<Vec<_>>(), "{workers} workers");
        }
    }

    #[test]
    fn empty_and_single_task_matrices() {
        let none: Vec<u32> = run_matrix(8, &[], |_, &t: &u32| t);
        assert!(none.is_empty());
        assert_eq!(run_matrix(8, &[41], |_, &t| t + 1), vec![42]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..137).collect();
        let out = run_matrix(5, &tasks, |_, &t| {
            hits.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(hits.load(Ordering::Relaxed), 137);
        assert_eq!(out.len(), 137);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn parse_workers_accepts_positive_integers() {
        assert_eq!(parse_workers("1"), Ok(1));
        assert_eq!(parse_workers(" 16 "), Ok(16));
    }

    #[test]
    fn isolated_matrix_survives_panicking_jobs() {
        let tasks: Vec<usize> = (0..40).collect();
        for workers in [1, 4, 40] {
            let out = run_matrix_isolated(workers, &tasks, |_, &t| {
                assert!(t % 7 != 3, "task {t} exploded");
                t * 2
            });
            assert_eq!(out.len(), 40, "{workers} workers: every slot filled");
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let p = r.as_ref().expect_err("panicking slot is Err");
                    assert!(p.message.contains("exploded"), "payload preserved: {p}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 2), "clean slot unaffected");
                }
            }
        }
    }

    #[test]
    fn catch_job_preserves_string_payloads() {
        assert_eq!(catch_job(|| 7), Ok(7));
        let p = catch_job(|| -> u32 { panic!("boom {}", 42) }).unwrap_err();
        assert_eq!(p.message, "boom 42");
        let p = catch_job(|| -> u32 { std::panic::panic_any(9u8) }).unwrap_err();
        assert_eq!(p.message, "<non-string panic payload>");
    }

    #[test]
    fn parse_workers_rejects_garbage_and_zero() {
        for bad in ["0", "", "four", "-2", "3.5", "8x"] {
            let err = parse_workers(bad).expect_err(bad);
            assert!(err.contains(bad.trim()) || bad.trim().is_empty(), "{bad}: {err}");
        }
    }
}
