//! Reading side of the in-tree JSON story: a recursive-descent parser
//! into [`JsonValue`] plus the accessors the resilience layer needs.
//!
//! The workspace has no `serde`; `artifact.rs` writes JSON with a small
//! hand renderer, and this module reads it back. The parser accepts
//! exactly standard JSON (objects, arrays, strings with escapes, numbers,
//! booleans, null) and is **total**: any input yields `Ok` or a typed
//! [`JsonParseError`] with a byte offset — never a panic. Because it also
//! fronts the `phast-serve` wire protocol it is hardened fail-closed:
//! duplicate object keys are rejected rather than resolved by position
//! (last-wins vs first-wins ambiguity is a classic request-smuggling
//! vector on protocol boundaries).
//!
//! Round-trip fidelity matters more than generality here: the `BENCH_*`
//! digest and the journal's per-record digests are verified by
//! *re-rendering* parsed values and comparing CRCs, which works because
//! numbers parse into the same variants the writer renders from
//! (unsigned integers into [`JsonValue::UInt`], everything else into
//! [`JsonValue::Float`]) and Rust's shortest-roundtrip float formatting
//! guarantees `format(parse(s)) == s` for any `s` the writer produced.

use crate::artifact::JsonValue;

/// A JSON syntax error with the byte offset where parsing stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
///
/// # Errors
///
/// [`JsonParseError`] on any syntactically invalid input.
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            // Duplicate keys are ambiguous (last-wins vs first-wins differs
            // between consumers) and a classic smuggling vector on protocol
            // boundaries — fail closed. The in-tree writer never emits them.
            if fields.iter().any(|(k, _): &(String, JsonValue)| *k == key) {
                return Err(JsonParseError {
                    offset: key_offset,
                    message: format!("duplicate object key '{key}'"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // The in-tree writer only emits \u for control
                            // characters; reject surrogates rather than
                            // implementing pair recombination nobody emits.
                            match char::from_u32(u32::from(code)) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("unpaired surrogate escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            code = code << 4 | u16::from(d);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(JsonValue::Float(x)),
            Err(_) => Err(JsonParseError { offset: start, message: format!("bad number '{text}'") }),
        }
    }
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes and returns `key` from an object, preserving the order of
    /// the remaining fields; `None` for missing keys and non-objects.
    pub fn remove(&mut self, key: &str) -> Option<JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                let i = fields.iter().position(|(k, _)| k == key)?;
                Some(fields.remove(i).1)
            }
            _ => None,
        }
    }

    /// The value as a u64, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an f64; integers coerce (the writer renders an
    /// integral float as a bare integer, so readers of float-typed fields
    /// must accept both variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(x) => Some(*x),
            JsonValue::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` for [`JsonValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert!(matches!(parse("null").unwrap(), JsonValue::Null));
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("2.75").unwrap().as_f64(), Some(2.75));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
        assert_eq!(parse("\"\\u0001\"").unwrap().as_str(), Some("\u{1}"));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{ "a": [1, 2, {"b": null}], "c": "x" }"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].get("b").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input_with_offsets() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "01x", "{}extra"] {
            let e = parse(bad).expect_err(bad);
            assert!(e.offset <= bad.len(), "{bad}: {e}");
        }
    }

    #[test]
    fn writer_output_roundtrips_byte_identically() {
        let v = JsonValue::obj(vec![
            ("s", JsonValue::Str("a\"b\\c\nd\u{1}".into())),
            ("u", JsonValue::UInt(18_446_744_073_709_551_615)),
            ("f", JsonValue::Float(std::f64::consts::PI)),
            ("whole", JsonValue::Float(26.0)),
            ("nested", JsonValue::Array(vec![JsonValue::Bool(false), JsonValue::Null])),
        ]);
        for text in [v.render(), v.render_compact()] {
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed.render(), v.render(), "re-render matches");
            assert_eq!(parsed.render_compact(), v.render_compact());
        }
    }

    #[test]
    fn duplicate_object_keys_are_rejected_fail_closed() {
        for bad in [
            r#"{"a":1,"a":2}"#,
            r#"{"a":1,"b":{"x":1,"x":2}}"#,
            r#"[{"k":true,"k":false}]"#,
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(e.message.contains("duplicate object key"), "{bad}: {e}");
        }
        // Same key at different nesting depths is fine.
        let v = parse(r#"{"a":{"a":1},"b":[{"a":2}]}"#).unwrap();
        assert_eq!(v.get("a").and_then(|x| x.get("a")).and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn remove_preserves_field_order() {
        let mut v = parse(r#"{"a": 1, "b": 2, "c": 3}"#).unwrap();
        assert_eq!(v.remove("b").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.render_compact(), r#"{"a":1,"c":3}"#);
        assert!(v.remove("b").is_none());
    }
}
