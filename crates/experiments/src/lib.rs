//! Experiment harness reproducing every table and figure of the PHAST
//! paper's evaluation (see DESIGN.md §4 for the full index).
//!
//! Each `figN` module exposes a `run(&Budget)` function returning a
//! structured, `Display`able result; the `phast-experiments` binary maps
//! experiment ids to these functions, and the Criterion benches in
//! `phast-bench` call them at reduced budgets.
//!
//! Absolute numbers differ from the paper (our substrate is a synthetic
//! workload suite on a from-scratch simulator, not SPEC on the authors'
//! testbed); the *shape* — who wins, roughly by how much, where the
//! crossovers are — is the reproduction target. EXPERIMENTS.md records
//! paper-versus-measured for every artifact.

#![warn(missing_docs)]

pub mod ablations;
pub mod figures;
pub mod harness;
pub mod predictors;
pub mod tablefmt;

pub use harness::{geomean, Budget, RunResult};
pub use predictors::PredictorKind;
