//! Experiment harness reproducing every table and figure of the PHAST
//! paper's evaluation (see DESIGN.md §4 for the full index, and
//! docs/PIPELINE.md for an end-to-end walkthrough of the pipeline).
//!
//! Each `figN` module exposes a `run(&Sweep, &Budget)` function returning
//! a structured, `Display`able result; the `phast-experiments` binary
//! maps experiment ids to these functions, and the Criterion benches in
//! `phast-bench` call them at reduced budgets.
//!
//! # Budgets and parallelism
//!
//! A [`Budget`] picks the tier — [`Budget::full`] for the paper numbers,
//! [`Budget::quick`] for smoke tests and CI, [`Budget::bench`] for the
//! Criterion benches — and a [`Sweep`] supplies the engine: worker count
//! ([`Sweep::parallel`] fans the run matrix across
//! `std::thread::available_parallelism()` threads, overridable with
//! `PHAST_WORKERS`), the sweep-scoped degraded-run registry, and the run
//! log behind the machine-readable `BENCH_<id>.json` artifacts
//! ([`artifact`]). Parallel and serial sweeps produce byte-identical
//! reports; see [`harness`] for the determinism contract.
//!
//! Absolute numbers differ from the paper (our substrate is a synthetic
//! workload suite on a from-scratch simulator, not SPEC on the authors'
//! testbed); the *shape* — who wins, roughly by how much, where the
//! crossovers are — is the reproduction target. EXPERIMENTS.md records
//! paper-versus-measured for every artifact.

#![warn(missing_docs)]

pub mod ablations;
pub mod artifact;
pub mod figures;
pub mod harness;
pub mod journal;
pub mod jsonio;
pub mod pool;
pub mod predictors;
pub mod serve;
pub mod tablefmt;

pub use artifact::{ArtifactError, JsonWriteError, SamplingMeta, SweepArtifact};
pub use harness::{exit_code, geomean, Budget, RunFailure, RunResult, Sweep};
pub use journal::{CompletedRun, Journal, JournalError, JournalScope};
pub use phast_sample::SampleConfig;
pub use predictors::PredictorKind;
