//! Ablations of the design choices DESIGN.md calls out. These go beyond
//! the paper's figures: each isolates one mechanism the paper argues for
//! and measures the system without it.
//!
//! * **N+1 rule** (§IV-A2 / Fig. 5): PHAST keyed with L+1 entries (the
//!   oldest carrying the pre-store branch destination) versus plain
//!   L-entry histories.
//! * **Training point** (§IV-A1): PHAST trained at commit versus at
//!   detection.
//! * **Squash policy** (§IV-A1): lazy (commit-time) versus eager
//!   (detect-time) memory-order squash.
//! * **Confidence width**: PHAST's 4-bit confidence counter versus 2 and
//!   6 bits.
//! * **History-length set**: PHAST's MDP-tuned lengths versus TAGE's
//!   branch-prediction lengths (the paper's "an Omnipredictor cannot be
//!   tuned for both" claim, §IV-B).
//!
//! Every variant fans its per-workload runs across the [`Sweep`]'s worker
//! pool via [`Sweep::map`] + [`simulate_run`], then records them in
//! workload order so output stays deterministic.

use crate::harness::{geomean, normalized_ipc, simulate_run, Budget, RunResult, Sweep};
use crate::predictors::PredictorKind;
use crate::tablefmt::TextTable;
use phast::{Phast, PhastConfig};
use phast_ooo::{CoreConfig, MemSquashPolicy, TrainPoint};

fn run_phast_variant(
    sweep: &Sweep,
    cfg_fn: impl Fn() -> PhastConfig + Sync,
    core: &CoreConfig,
    budget: &Budget,
) -> Vec<RunResult> {
    let workloads = budget.workloads();
    let runs = sweep.map(&workloads, |_, w| {
        let program = w.build(budget.workload_iters);
        let mut pred = Phast::new(cfg_fn());
        simulate_run(w.name, "phast-variant", &program, core, &mut pred, budget.insts)
    });
    sweep.record_all(&runs);
    runs
}

/// Runs all ablations and renders the report.
pub fn run(sweep: &Sweep, budget: &Budget) -> String {
    let base_core = {
        let mut c = CoreConfig::alder_lake();
        c.train_point = TrainPoint::Commit;
        c
    };
    let ideal = sweep.run_all(&PredictorKind::Ideal, &CoreConfig::alder_lake(), budget);
    let score = |runs: &[RunResult]| {
        let g = geomean(&normalized_ipc(runs, &ideal));
        let n = runs.len() as f64;
        let fnm = runs.iter().map(|r| r.stats.violation_mpki()).sum::<f64>() / n;
        let fpm = runs.iter().map(|r| r.stats.false_dep_mpki()).sum::<f64>() / n;
        (g, fnm, fpm)
    };

    let mut t = TextTable::new(vec!["variant", "norm. IPC", "MPKI FN", "MPKI FP"]);
    let mut add = |name: &str, runs: &[RunResult]| {
        let (g, fnm, fpm) = score(runs);
        t.row(vec![name.to_string(), format!("{g:.4}"), format!("{fnm:.3}"), format!("{fpm:.3}")]);
    };

    // Baseline: the paper's PHAST.
    let base = run_phast_variant(sweep, PhastConfig::paper, &base_core, budget);
    add("phast (paper)", &base);

    // (1) Without the N+1 destination rule.
    let no_n1 = run_phast_variant(sweep, PhastConfig::without_n_plus_one, &base_core, budget);
    add("no N+1 rule", &no_n1);

    // (2) Trained at detection instead of commit.
    let detect_core = {
        let mut c = base_core.clone();
        c.train_point = TrainPoint::Detect;
        c
    };
    let at_detect = run_phast_variant(sweep, PhastConfig::paper, &detect_core, budget);
    add("train at detect", &at_detect);

    // (3) Eager memory-order squash.
    let eager_core = {
        let mut c = base_core.clone();
        c.mem_squash = MemSquashPolicy::Eager;
        c
    };
    let eager = run_phast_variant(sweep, PhastConfig::paper, &eager_core, budget);
    add("eager mem squash", &eager);

    // (4) Confidence width.
    for bits in [2u32, 6] {
        let runs =
            run_phast_variant(sweep, || PhastConfig::with_confidence_bits(bits), &base_core, budget);
        add(&format!("{bits}-bit confidence"), &runs);
    }

    // (5) TAGE's branch-prediction history lengths instead of the
    // MDP-tuned set (the Omnipredictor claim).
    let tage_lengths = || PhastConfig {
        history_lengths: vec![2, 4, 8, 16, 32, 64, 96, 128],
        ..PhastConfig::paper()
    };
    let tage_len = run_phast_variant(sweep, tage_lengths, &base_core, budget);
    add("TAGE history lengths", &tage_len);

    format!(
        "Ablations — PHAST design choices (IPC normalized to ideal)\n\n{t}\n\
         Expected: the paper configuration wins or ties every row; the\n\
         no-N+1 and TAGE-lengths variants lose on path-sensitive workloads.\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_render_on_tiny_budget() {
        let b = Budget { insts: 4_000, workload_iters: 20_000, max_workloads: Some(2) };
        let out = run(&Sweep::parallel(), &b);
        assert!(out.contains("phast (paper)"));
        assert!(out.contains("no N+1 rule"));
        assert!(out.contains("eager mem squash"));
    }
}
