//! `phast-trace`: run one workload under one predictor and print
//! per-interval statistics — IPC, violation/false-dependence MPKI and
//! branch MPKI over time. Useful for watching predictors warm up and for
//! spotting phase behaviour.
//!
//! ```text
//! cargo run --release -p phast-experiments --bin phast-trace -- \
//!     gcc_1 phast --insts 300000 --interval 20000 --config alderlake
//! ```

use phast_branch::{Tage, TageConfig};
use phast_experiments::PredictorKind;
use phast_ooo::{Core, CoreConfig};

fn parse_predictor(name: &str) -> Option<PredictorKind> {
    Some(match name {
        "ideal" => PredictorKind::Ideal,
        "blind" => PredictorKind::Blind,
        "total-order" => PredictorKind::TotalOrder,
        "phast" => PredictorKind::Phast,
        "unl-phast" => PredictorKind::UnlimitedPhast(None),
        "nosq" => PredictorKind::NoSq,
        "store-sets" => PredictorKind::StoreSets,
        "store-vector" => PredictorKind::StoreVector,
        "cht" => PredictorKind::Cht,
        "mdp-tage" => PredictorKind::MdpTage,
        "mdp-tage-s" => PredictorKind::MdpTageS,
        _ => return None,
    })
}

fn parse_config(name: &str) -> Option<CoreConfig> {
    CoreConfig::generations().into_iter().find(|c| c.name == name)
}

fn flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let usage = "usage: phast-trace <workload> <predictor> [--insts N] [--interval N] \
                 [--config alderlake|skylake|haswell|nehalem]\n\
                 predictors: ideal blind total-order phast unl-phast nosq store-sets \
                 store-vector cht mdp-tage mdp-tage-s";
    let (Some(wname), Some(pname)) = (positional.first(), positional.get(1)) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };

    let Some(workload) = phast_workloads::by_name(wname) else {
        eprintln!("unknown workload '{wname}'; see phast_workloads::all_workloads()");
        std::process::exit(2);
    };
    let Some(kind) = parse_predictor(pname) else {
        eprintln!("unknown predictor '{pname}'\n{usage}");
        std::process::exit(2);
    };
    let insts = flag(&args, "--insts", 300_000);
    let interval = flag(&args, "--interval", 20_000).max(1_000);
    let cfg_name = args
        .iter()
        .position(|a| a == "--config")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "alderlake".to_string());
    let Some(mut cfg) = parse_config(&cfg_name) else {
        eprintln!("unknown config '{cfg_name}'");
        std::process::exit(2);
    };
    cfg.train_point = kind.train_point();

    let program = workload.build(10 * insts); // never loop-bound
    let mut predictor = kind.build(&program, insts);
    let mut core =
        Core::new(&program, cfg, predictor.as_mut(), Box::new(Tage::new(TageConfig::default())));

    println!(
        "workload={} predictor={} insts={} interval={}\n",
        workload.name,
        kind.label(),
        insts,
        interval
    );
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "committed", "IPC", "MPKI-FN", "MPKI-FP", "br-MPKI", "fwd-loads"
    );

    let mut prev = phast_ooo::SimStats::default();
    let mut target = interval;
    while target <= insts {
        let s = core.run(target, u64::MAX);
        let d_insts = s.committed - prev.committed;
        let d_cycles = s.cycles - prev.cycles;
        if d_insts == 0 {
            break;
        }
        let mpki = |d: u64| 1000.0 * d as f64 / d_insts as f64;
        println!(
            "{:>10} {:>8.3} {:>10.3} {:>10.3} {:>10.3} {:>10}",
            s.committed,
            d_insts as f64 / d_cycles.max(1) as f64,
            mpki(s.violations - prev.violations),
            mpki(s.false_dependences - prev.false_dependences),
            mpki(s.branch_mispredicts - prev.branch_mispredicts),
            s.forwarded_loads - prev.forwarded_loads,
        );
        if s.halted {
            break;
        }
        prev = s;
        target += interval;
    }
}
