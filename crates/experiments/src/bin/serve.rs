//! `phast-serve` — the persistent, fault-tolerant simulation daemon.
//!
//! ```text
//! # daemon (default mode): bind, accept sweeps, drain on SIGTERM
//! phast-serve --addr=127.0.0.1:7878 --workers=4 --json-dir=bench
//!
//! # client mode: talk to a running daemon over the same wire protocol
//! phast-serve --client=ping    --addr=127.0.0.1:7878
//! phast-serve --client=status  --addr=127.0.0.1:7878
//! phast-serve --client=submit  --addr=... --id=ci --kinds=phast,storesets --budget=quick
//! phast-serve --client=fetch   --addr=... --digest=crc32:deadbeef
//! phast-serve --client=shutdown --addr=...
//! ```
//!
//! The daemon accepts sweep submissions over a TCP JSON-lines protocol
//! (`docs/SERVICE.md`), executes them on a work-stealing scheduler whose
//! every job runs under a lease with a progress heartbeat, and survives
//! worker death, wedged runs, and client disconnects. `SIGTERM` (or the
//! `shutdown` op) triggers a graceful drain: admission stops, in-flight
//! sweeps finish and flush their artifacts, and the process exits with
//! the worst outcome across everything it ran — the same exit-code
//! taxonomy as `phast-experiments` (0 ok / 1 degraded / 2 usage /
//! 3 integrity / 4 deadline).
//!
//! The `--chaos-*` flags arm seeded service-layer fault injection
//! (worker kills, heartbeat loss) — the CI `service` job uses them to
//! prove the lease/retry machinery on a live daemon.

use phast_experiments::exit_code;
use phast_experiments::pool;
use phast_experiments::serve::{ChaosPlan, Client, Event, Request, ServeConfig, Server};
use phast_experiments::Journal;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Raw `SIGTERM`/`SIGINT` handling without a signal-handling crate: a C
/// handler flips an atomic that the watcher thread polls. Only flag
/// stores happen in the handler (async-signal-safe).
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the signal handler; polled by the watcher thread.
    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for `SIGTERM` and `SIGINT`.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: phast-serve [--addr=HOST:PORT] [--workers=N] [--lanes=N] [--max-active=N] \
         [--json-dir=DIR | --no-json] [--resume] [--run-timeout=SECS] \
         [--heartbeat-ms=N] [--lease-secs=N] \
         [--chaos-seed=N] [--chaos-kill=K] [--chaos-stall=K]"
    );
    eprintln!(
        "       phast-serve --client=ping|status|shutdown [--addr=HOST:PORT]\n\
         \x20      phast-serve --client=submit --id=ID --kinds=A,B --budget=TIER \\\n\
         \x20                  [--no-watch] [--drop-after=N] [--addr=HOST:PORT]\n\
         \x20      phast-serve --client=fetch --digest=DIGEST [--addr=HOST:PORT]"
    );
    eprintln!("(--help for semantics and the exit-code taxonomy)");
    std::process::exit(exit_code::USAGE);
}

fn help() {
    println!(
        "phast-serve — persistent fault-tolerant simulation daemon\n\
         \n\
         daemon mode (default):\n\
         \x20 --addr=HOST:PORT    bind address (default 127.0.0.1:7878; port 0 = OS pick)\n\
         \x20 --workers=N         persistent worker threads (default: all cores)\n\
         \x20 --lanes=N           cells a worker drains from its deque into one\n\
         \x20                     interleaved lane batch; --lanes=1 (the default,\n\
         \x20                     also PHAST_LANES) runs every cell solo; results\n\
         \x20                     are byte-identical at any lane count\n\
         \x20 --max-active=N      sweeps in flight before submissions are rejected\n\
         \x20                     with retry_after_ms backpressure (default 2)\n\
         \x20 --json-dir=DIR      where BENCH_<id>.json artifacts and the write-ahead\n\
         \x20                     journal.jsonl land (default: current directory)\n\
         \x20 --no-json           keep artifacts in memory only (served by digest)\n\
         \x20 --resume            replay DIR/journal.jsonl: resubmitted sweep ids skip\n\
         \x20                     their completed cells\n\
         \x20 --run-timeout=SECS  per-cell watchdog; hung cells end as 'deadline'\n\
         \x20 --heartbeat-ms=N    lease heartbeat window: a job whose progress counter\n\
         \x20                     stalls this long is reclaimed and retried (default 10000)\n\
         \x20 --lease-secs=N      absolute lease age cap (default 600)\n\
         \n\
         chaos injection (seeded, deterministic; for CI and tests):\n\
         \x20 --chaos-seed=N      fault-draw seed\n\
         \x20 --chaos-kill=K      kill the worker mid-job on K of 4096 draws\n\
         \x20 --chaos-stall=K     drop the job's heartbeat on K of 4096 draws\n\
         \x20 --chaos-kill-at=J:A scripted: kill the worker serving job J, attempt A\n\
         \x20 --chaos-stall-at=J:A scripted: drop job J's heartbeat on attempt A\n\
         \n\
         client mode (--client=OP talks to a running daemon):\n\
         \x20 ping                liveness probe; prints worker count\n\
         \x20 status              scheduler health + artifact index\n\
         \x20 submit              submit a sweep: --id=ID --kinds=A,B --budget=TIER\n\
         \x20                     (tiers: full quick bench sampled); streams cell events\n\
         \x20                     and exits with the sweep's exit code. --no-watch\n\
         \x20                     returns after acceptance; --drop-after=N tears the\n\
         \x20                     connection after N cell events (the sweep continues\n\
         \x20                     fire-and-forget; fetch the artifact by digest later)\n\
         \x20 fetch               print an artifact body by --digest=DIGEST\n\
         \x20 shutdown            ask the daemon to drain gracefully\n\
         \n\
         exit codes (daemon: worst outcome across every sweep it ran):\n\
         \x20 0 ok   1 degraded   2 usage   3 integrity   4 deadline\n"
    );
}

/// Parses the value of a `--flag=N` unsigned-integer option, exiting
/// with a clear error (status 2) otherwise.
fn parse_u64(flag: &str, raw: &str) -> u64 {
    match raw.trim().parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects an unsigned integer, got '{raw}'");
            std::process::exit(exit_code::USAGE);
        }
    }
}

/// Parses a scripted chaos target `JOB:ATTEMPT` (both 1-based), exiting
/// with a clear error (status 2) otherwise.
fn parse_job_attempt(flag: &str, raw: &str) -> (u64, u64) {
    let parsed = raw.split_once(':').and_then(|(j, a)| {
        Some((j.trim().parse::<u64>().ok()?, a.trim().parse::<u64>().ok()?))
    });
    match parsed {
        Some(pair) => pair,
        None => {
            eprintln!("error: {flag} expects JOB:ATTEMPT (e.g. 3:1), got '{raw}'");
            std::process::exit(exit_code::USAGE);
        }
    }
}

/// Looks up `--flag=VALUE` in `args`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let prefix = format!("{flag}=");
    args.iter().find_map(|a| a.strip_prefix(prefix.as_str()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        help();
        return;
    }
    for a in &args {
        let known = a.starts_with("--addr=")
            || a.starts_with("--workers=")
            || a.starts_with("--lanes=")
            || a.starts_with("--max-active=")
            || a.starts_with("--json-dir=")
            || a == "--no-json"
            || a == "--resume"
            || a.starts_with("--run-timeout=")
            || a.starts_with("--heartbeat-ms=")
            || a.starts_with("--lease-secs=")
            || a.starts_with("--chaos-seed=")
            || a.starts_with("--chaos-kill=")
            || a.starts_with("--chaos-stall=")
            || a.starts_with("--chaos-kill-at=")
            || a.starts_with("--chaos-stall-at=")
            || a.starts_with("--client=")
            || a.starts_with("--id=")
            || a.starts_with("--kinds=")
            || a.starts_with("--budget=")
            || a == "--no-watch"
            || a.starts_with("--drop-after=")
            || a.starts_with("--digest=");
        if !known {
            eprintln!("error: unknown argument '{a}'");
            usage();
        }
    }
    let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7878").to_string();
    if let Some(op) = flag_value(&args, "--client") {
        std::process::exit(run_client(op, &addr, &args));
    }
    run_daemon(addr, &args);
}

/// Daemon mode: build the configuration from flags, start the server,
/// and wait for a drain (SIGTERM, SIGINT, or the `shutdown` op).
fn run_daemon(addr: String, args: &[String]) -> ! {
    let mut cfg = ServeConfig { addr, ..ServeConfig::default() };
    if let Some(v) = flag_value(args, "--workers") {
        cfg.sched.workers = parse_u64("--workers", v).max(1) as usize;
    }
    if let Some(v) = flag_value(args, "--lanes") {
        cfg.sched.lanes = pool::parse_lanes(v).unwrap_or_else(|e| {
            eprintln!("error: --lanes: {e}");
            std::process::exit(exit_code::USAGE);
        });
    }
    if let Some(v) = flag_value(args, "--max-active") {
        cfg.max_active_sweeps = parse_u64("--max-active", v).max(1) as usize;
    }
    if let Some(v) = flag_value(args, "--run-timeout") {
        cfg.run_timeout = Some(Duration::from_secs(parse_u64("--run-timeout", v)));
    }
    if let Some(v) = flag_value(args, "--heartbeat-ms") {
        cfg.sched.lease.heartbeat = Duration::from_millis(parse_u64("--heartbeat-ms", v).max(1));
    }
    if let Some(v) = flag_value(args, "--lease-secs") {
        cfg.sched.lease.max_age = Duration::from_secs(parse_u64("--lease-secs", v).max(1));
    }
    let chaos = ChaosPlan {
        seed: flag_value(args, "--chaos-seed").map_or(0, |v| parse_u64("--chaos-seed", v)),
        kill_worker: flag_value(args, "--chaos-kill").map_or(0, |v| parse_u64("--chaos-kill", v)),
        drop_heartbeat: flag_value(args, "--chaos-stall")
            .map_or(0, |v| parse_u64("--chaos-stall", v)),
        kill_at: flag_value(args, "--chaos-kill-at").map(|v| parse_job_attempt("--chaos-kill-at", v)),
        stall_at: flag_value(args, "--chaos-stall-at")
            .map(|v| parse_job_attempt("--chaos-stall-at", v)),
    };
    if !chaos.is_inert() {
        eprintln!(
            "chaos armed: seed={} kill={}/4096 stall={}/4096 kill_at={:?} stall_at={:?}",
            chaos.seed, chaos.kill_worker, chaos.drop_heartbeat, chaos.kill_at, chaos.stall_at
        );
        cfg.sched.chaos = chaos;
    }
    let no_json = args.iter().any(|a| a == "--no-json");
    let resume = args.iter().any(|a| a == "--resume");
    if no_json {
        cfg.json_dir = None;
        cfg.journal = None;
    } else {
        let dir =
            flag_value(args, "--json-dir").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join("journal.jsonl");
        // The daemon serves many sweep shapes from one journal, so the
        // fingerprint versions the *service*, not one sweep; each sweep
        // journals under its id as scope.
        let opened = if resume {
            Journal::resume(&path, "phast-serve-v1")
        } else {
            Journal::create(&path, "phast-serve-v1")
        };
        match opened {
            Ok(j) => {
                if resume {
                    eprintln!(
                        "resuming from {} ({} completed run(s) will be replayed)",
                        j.path().display(),
                        j.completed_runs()
                    );
                }
                cfg.journal = Some(j);
            }
            Err(e) => {
                eprintln!("error: journal: {e}");
                std::process::exit(exit_code::INTEGRITY);
            }
        }
        cfg.json_dir = Some(dir);
    }
    let server = match Server::start(cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            std::process::exit(exit_code::USAGE);
        }
    };
    eprintln!("phast-serve listening on {}", server.local_addr());
    #[cfg(unix)]
    {
        sigterm::install();
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            while !sigterm::TERM.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("signal received: draining (in-flight sweeps will finish)");
            server.shutdown();
        });
    }
    // Blocks until a graceful drain completes — via signal above or the
    // wire-level `shutdown` op.
    let code = server.join();
    eprintln!("phast-serve drained; exit {code}");
    std::process::exit(code);
}

/// Client mode: one op per invocation, speaking the same protocol the
/// tests and CI use.
fn run_client(op: &str, addr: &str, args: &[String]) -> i32 {
    let mut client = match Client::connect_with_patience(addr, Duration::from_secs(5)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connect {addr}: {e}");
            return 1;
        }
    };
    let outcome = match op {
        "ping" => client.request(&Request::Ping).map(|ev| match ev {
            Event::Pong { workers } => {
                println!("pong: {workers} worker(s)");
                exit_code::OK
            }
            other => unexpected(&other),
        }),
        "status" => client.request(&Request::Status).map(|ev| match ev {
            Event::Status(s) => {
                println!(
                    "workers={} queue_depth={} outstanding={} active_sweeps={} draining={}",
                    s.workers, s.queue_depth, s.outstanding, s.active_sweeps, s.draining
                );
                println!(
                    "reclaimed={} lost={} respawns={}",
                    s.reclaimed, s.lost, s.respawns
                );
                for (id, digest) in &s.artifacts {
                    println!("artifact {id} {digest}");
                }
                exit_code::OK
            }
            other => unexpected(&other),
        }),
        "shutdown" => client.request(&Request::Shutdown).map(|ev| match ev {
            Event::Draining => {
                println!("draining");
                exit_code::OK
            }
            other => unexpected(&other),
        }),
        "fetch" => {
            let Some(digest) = flag_value(args, "--digest") else {
                eprintln!("error: --client=fetch needs --digest=DIGEST");
                return exit_code::USAGE;
            };
            client.fetch(digest).map(|body| {
                println!("{body}");
                exit_code::OK
            })
        }
        "submit" => return client_submit(&mut client, args),
        other => {
            eprintln!("error: unknown client op '{other}'");
            return exit_code::USAGE;
        }
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// An off-protocol reply (the daemon answered, but not what this op
/// expects) — report and fail.
fn unexpected(ev: &Event) -> i32 {
    eprintln!("error: unexpected reply: {ev:?}");
    1
}

/// `--client=submit`: submit a sweep and (unless `--no-watch`) stream
/// its cell events; exits with the sweep's exit code. `--drop-after=N`
/// tears the connection after N cell events to exercise the daemon's
/// fire-and-forget downgrade.
fn client_submit(client: &mut Client, args: &[String]) -> i32 {
    let Some(id) = flag_value(args, "--id") else {
        eprintln!("error: --client=submit needs --id=ID");
        return exit_code::USAGE;
    };
    let Some(kinds) = flag_value(args, "--kinds") else {
        eprintln!("error: --client=submit needs --kinds=A,B,...");
        return exit_code::USAGE;
    };
    let budget = flag_value(args, "--budget").unwrap_or("quick");
    let watch = !args.iter().any(|a| a == "--no-watch");
    let drop_after: Option<u64> =
        flag_value(args, "--drop-after").map(|v| parse_u64("--drop-after", v));
    let req = Request::Submit {
        id: id.to_string(),
        kinds: kinds.split(',').map(|k| k.trim().to_string()).filter(|k| !k.is_empty()).collect(),
        budget: budget.to_string(),
        watch,
    };
    let first = match client.request(&req) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("error: submit: {e}");
            return 1;
        }
    };
    match first {
        Event::Accepted { id, cells, replayed } => {
            println!("accepted {id}: {cells} cell(s), {replayed} replayed");
        }
        Event::Rejected { reason, retry_after_ms } => {
            match retry_after_ms {
                Some(ms) => eprintln!("rejected: {reason} (retry after {ms} ms)"),
                None => eprintln!("rejected: {reason}"),
            }
            return 1;
        }
        Event::Error { reason } => {
            eprintln!("error: {reason}");
            return exit_code::USAGE;
        }
        other => return unexpected(&other),
    }
    if !watch {
        return exit_code::OK;
    }
    let mut seen: u64 = 0;
    loop {
        match client.recv() {
            Ok(Event::Cell { workload, predictor, status, attempts }) => {
                seen += 1;
                println!("cell {workload}/{predictor}: {status} (attempt {attempts})");
                if drop_after.is_some_and(|n| seen >= n) {
                    // Deliberate torn connection: the daemon downgrades
                    // the sweep to fire-and-forget and serves the
                    // artifact by digest later.
                    println!("dropping connection after {seen} cell event(s)");
                    return exit_code::OK;
                }
            }
            Ok(Event::Done { id, digest, runs, degraded, deadline_runs, exit }) => {
                println!(
                    "done {id}: digest={digest} runs={runs} degraded={degraded} \
                     deadline_runs={deadline_runs} exit={exit}"
                );
                return exit as i32;
            }
            Ok(other) => return unexpected(&other),
            Err(e) => {
                eprintln!("error: stream: {e}");
                return 1;
            }
        }
    }
}
