//! Command-line entry point regenerating any table or figure of the paper.
//!
//! ```text
//! cargo run -p phast-experiments --release -- fig15
//! cargo run -p phast-experiments --release -- all
//! cargo run -p phast-experiments --release -- --quick fig6
//! ```

use phast_experiments::figures;
use phast_experiments::Budget;

const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "table1", "table2", "ablations",
];

fn run_experiment(id: &str, budget: &Budget) -> Option<String> {
    let out = match id {
        "fig1" => figures::fig1::run(budget),
        "fig2" => figures::fig2::run(budget),
        "fig4" => figures::fig4::run(budget),
        // Figs. 7, 8 and 9 share one characterization run.
        "fig6" => figures::fig6::run(budget),
        "fig7" | "fig8" | "fig9" => figures::fig789::run(budget),
        "fig10" => figures::fig10::run(budget),
        "fig11" => figures::fig11::run(budget),
        "fig12" => figures::fig12::run(budget),
        "fig13" => figures::fig13::run(budget),
        "fig14" => figures::fig14::run(budget),
        "fig15" => figures::fig15::run(budget).report,
        "fig16" => figures::fig16::run(budget),
        "table1" => figures::table1::run(budget),
        "table2" => figures::table2::run(budget),
        "ablations" => phast_experiments::ablations::run(budget),
        _ => return None,
    };
    Some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let budget = if quick { Budget::quick() } else { Budget::full() };
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    if ids.is_empty() {
        eprintln!("usage: phast-experiments [--quick] <experiment>...");
        eprintln!("experiments: {} all", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids == ["all"] {
        let mut v = EXPERIMENTS.to_vec();
        // fig7/8/9 share a runner; keep one instance.
        v.retain(|e| *e != "fig8" && *e != "fig9");
        v
    } else {
        ids
    };

    for id in selected {
        let start = std::time::Instant::now();
        match run_experiment(id, &budget) {
            Some(out) => {
                println!("=== {id} ===\n{out}");
                println!("[{id} took {:.1?}]\n", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment '{id}'; known: {}", EXPERIMENTS.join(" "));
                std::process::exit(2);
            }
        }
    }

    // Degraded (failed but recovered) runs are collected by the harness so
    // one bad (workload, predictor) pair cannot abort a whole sweep; they
    // still must be visible at the end rather than scrolled away.
    let degraded = phast_experiments::harness::take_degraded();
    if !degraded.is_empty() {
        eprintln!("{} degraded run(s) — their statistics are partial:", degraded.len());
        for d in &degraded {
            eprintln!("  - {d}");
        }
        std::process::exit(1);
    }
}
