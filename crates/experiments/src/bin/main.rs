//! Command-line entry point regenerating any table or figure of the paper.
//!
//! ```text
//! cargo run -p phast-experiments --release -- fig15
//! cargo run -p phast-experiments --release -- all
//! cargo run -p phast-experiments --release -- --quick fig6
//! cargo run -p phast-experiments --release -- --serial fig15      # 1 worker
//! cargo run -p phast-experiments --release -- --workers=4 fig15
//! cargo run -p phast-experiments --release -- --json-dir=bench fig15
//! ```
//!
//! Sweeps run in parallel by default (`available_parallelism()` workers,
//! also overridable with `PHAST_WORKERS`); parallel and serial sweeps
//! produce byte-identical reports. Unless `--no-json` is given, every
//! experiment also drops a machine-readable `BENCH_<id>.json` artifact
//! (per-run IPC/MPKI/wall-clock, worker count, budget, git describe) into
//! the current directory or `--json-dir`, plus a write-ahead
//! `journal.jsonl` that `--resume` replays after a crash or kill — only
//! the missing runs re-execute, and the merged artifact matches an
//! uninterrupted sweep byte for byte (modulo wall-clock and attempt
//! metadata). `--run-timeout` arms a per-run watchdog, `--retries` caps
//! re-attempts, and the exit code distinguishes clean (0), degraded (1),
//! usage (2), integrity (3) and deadline (4) outcomes; see
//! docs/RESILIENCE.md. `--verify <BENCH.json>...` checks existing
//! artifacts against their sealed digests without running anything,
//! exiting 3 on any mismatch.

use phast_experiments::figures;
use phast_experiments::{
    exit_code, pool, Budget, Journal, PredictorKind, SampleConfig, Sweep, SweepArtifact,
};
use std::path::PathBuf;
use std::time::Duration;

const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "table1", "table2", "ablations", "sampled",
];

fn run_experiment(id: &str, sweep: &Sweep, budget: &Budget) -> Option<String> {
    let out = match id {
        "fig1" => figures::fig1::run(sweep, budget),
        "fig2" => figures::fig2::run(sweep, budget),
        "fig4" => figures::fig4::run(sweep, budget),
        // Figs. 7, 8 and 9 share one characterization run.
        "fig6" => figures::fig6::run(sweep, budget),
        "fig7" | "fig8" | "fig9" => figures::fig789::run(sweep, budget),
        "fig10" => figures::fig10::run(sweep, budget),
        "fig11" => figures::fig11::run(sweep, budget),
        "fig12" => figures::fig12::run(sweep, budget),
        "fig13" => figures::fig13::run(sweep, budget),
        "fig14" => figures::fig14::run(sweep, budget),
        "fig15" => figures::fig15::run(sweep, budget).report,
        "fig16" => figures::fig16::run(sweep, budget),
        "table1" => figures::table1::run(sweep, budget),
        "table2" => figures::table2::run(sweep, budget),
        "ablations" => phast_experiments::ablations::run(sweep, budget),
        "sampled" => figures::sampled::run(sweep, budget).report,
        _ => return None,
    };
    Some(out)
}

fn usage() -> ! {
    eprintln!(
        "usage: phast-experiments [--quick] [--sampled] [--windows=N] [--warm=M] \
         [--serial | --workers=N] [--lanes=N] [--json-dir=DIR | --no-json] \
         [--resume] [--run-timeout=SECS] [--retries=N] <experiment>..."
    );
    eprintln!("       phast-experiments --list-workloads | --list-predictors");
    eprintln!("       phast-experiments --verify <BENCH.json>...");
    eprintln!("experiments: {} all", EXPERIMENTS.join(" "));
    eprintln!("(--help for resilience flags and the exit-code taxonomy)");
    std::process::exit(exit_code::USAGE);
}

fn help() {
    println!(
        "phast-experiments — regenerate any table or figure of the paper\n\
         \n\
         usage: phast-experiments [OPTIONS] <experiment>...\n\
         \n\
         budget / sampling:\n\
         \x20 --quick             quick grid (smoke-test budget)\n\
         \x20 --sampled           sampled-simulation horizon\n\
         \x20 --windows=N         override the sampled window count\n\
         \x20 --warm=M            override the per-window warm-up instructions\n\
         \n\
         execution:\n\
         \x20 --serial            one worker (determinism reference)\n\
         \x20 --workers=N         explicit worker count (default: all cores)\n\
         \x20 --lanes=N           batch N (workload, predictor) cells per worker\n\
         \x20                     through one interleaved cycle loop; --lanes=1\n\
         \x20                     (the default, also PHAST_LANES) forces the\n\
         \x20                     serial per-cell path; artifacts are byte-\n\
         \x20                     identical at any lane count\n\
         \x20 --run-timeout=SECS  per-run watchdog; hung runs end as 'deadline'\n\
         \x20 --retries=N         attempts per run before it is recorded degraded\n\
         \n\
         artifacts / crash resilience:\n\
         \x20 --json-dir=DIR      where BENCH_<id>.json and journal.jsonl land\n\
         \x20 --no-json           no artifacts, no journal\n\
         \x20 --verify FILE...    verify artifact digests and exit (0 intact, 3 not)\n\
         \x20 --resume            replay completed runs from DIR/journal.jsonl and\n\
         \x20                     execute only what is missing; the merged artifact\n\
         \x20                     is byte-identical to an uninterrupted sweep\n\
         \x20                     (modulo wall-clock and attempt metadata)\n\
         \n\
         exit codes:\n\
         \x20 0  every run completed cleanly\n\
         \x20 1  sweep finished but some runs are degraded (partial statistics)\n\
         \x20 2  usage error (unknown flag/experiment, malformed value)\n\
         \x20 3  integrity failure (corrupt journal, artifact digest mismatch)\n\
         \x20 4  at least one run hit the --run-timeout deadline\n"
    );
}

/// Parses the value of a `--flag=N` unsigned-integer option, exiting with
/// a clear error (status 2) on anything that is not a positive integer.
fn parse_count(flag: &str, raw: &str) -> u64 {
    match raw.trim().parse::<u64>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("error: {flag} expects a positive integer, got '{raw}'");
            std::process::exit(exit_code::USAGE);
        }
    }
}

fn list_workloads() {
    for w in phast_workloads::all_workloads() {
        println!("{:<12} {}", w.name, w.description);
    }
}

fn list_predictors() {
    let catalog: &[(PredictorKind, &str)] = &[
        (PredictorKind::Ideal, "perfect oracle (upper bound for every figure)"),
        (PredictorKind::Blind, "no prediction: every load speculates"),
        (PredictorKind::TotalOrder, "every load waits for all older stores"),
        (PredictorKind::Phast, "PHAST at the paper's 14.5 KB configuration"),
        (PredictorKind::PhastSets(64), "PHAST scaled to N sets per table (--: fig13 sweep)"),
        (PredictorKind::UnlimitedPhast(None), "UnlimitedPHAST (optionally history-capped)"),
        (PredictorKind::NoSq, "NoSQ at the paper's 19 KB configuration"),
        (PredictorKind::NoSqSets(256), "NoSQ scaled to N sets per table"),
        (PredictorKind::UnlimitedNoSq(8), "UnlimitedNoSQ at a fixed history length"),
        (PredictorKind::StoreSets, "Store Sets at the paper's 18.5 KB configuration"),
        (PredictorKind::StoreSetsSized(4096, 2048), "Store Sets with explicit SSIT/LFST sizes"),
        (PredictorKind::StoreVector, "Store Vectors"),
        (PredictorKind::Cht, "CHT collision predictor"),
        (PredictorKind::MdpTage, "MDP-TAGE at the paper's 38.625 KB configuration"),
        (PredictorKind::MdpTageScaled(1, 2), "MDP-TAGE with set counts scaled by num/den"),
        (PredictorKind::MdpTageS, "MDP-TAGE-S (PHAST table layout, 13 KB)"),
        (PredictorKind::UnlimitedMdpTage, "UnlimitedMDPTAGE"),
    ];
    for (kind, desc) in catalog {
        println!("{:<20} {desc}", kind.label());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        help();
        return;
    }
    if args.iter().any(|a| a == "--list-workloads") {
        list_workloads();
        return;
    }
    if args.iter().any(|a| a == "--list-predictors") {
        list_predictors();
        return;
    }
    // Verification mode: check existing artifacts against their sealed
    // digests and exit — nothing is simulated. Files come from
    // `--verify=PATH` and/or positional operands after a bare `--verify`.
    if args.iter().any(|a| a == "--verify" || a.starts_with("--verify=")) {
        let mut files: Vec<PathBuf> = args
            .iter()
            .filter_map(|a| a.strip_prefix("--verify="))
            .map(PathBuf::from)
            .collect();
        files.extend(args.iter().filter(|a| !a.starts_with("--")).map(PathBuf::from));
        if files.is_empty() {
            eprintln!("error: --verify expects at least one BENCH_<id>.json path");
            std::process::exit(exit_code::USAGE);
        }
        let mut intact = true;
        for file in &files {
            match SweepArtifact::verify_file(file) {
                Ok(()) => println!("ok      {}", file.display()),
                Err(e) => {
                    intact = false;
                    eprintln!("FAILED  {}: {e}", file.display());
                }
            }
        }
        std::process::exit(if intact { exit_code::OK } else { exit_code::INTEGRITY });
    }
    let quick = args.iter().any(|a| a == "--quick");
    let sampled = args.iter().any(|a| a == "--sampled");
    let no_json = args.iter().any(|a| a == "--no-json");
    let serial = args.iter().any(|a| a == "--serial");
    let resume = args.iter().any(|a| a == "--resume");
    // `--run-timeout=0` is legal: the watchdog expires at the first poll,
    // which is how CI smokes the deadline exit path without a slow run.
    let run_timeout: Option<Duration> = args
        .iter()
        .find_map(|a| a.strip_prefix("--run-timeout="))
        .map(|v| match v.trim().parse::<u64>() {
            Ok(secs) => Duration::from_secs(secs),
            Err(_) => {
                eprintln!("error: --run-timeout expects a whole number of seconds, got '{v}'");
                std::process::exit(exit_code::USAGE);
            }
        });
    let retries: Option<u64> =
        args.iter().find_map(|a| a.strip_prefix("--retries=")).map(|v| parse_count("--retries", v));
    let workers: Option<usize> = args.iter().find_map(|a| a.strip_prefix("--workers=")).map(|v| {
        pool::parse_workers(v).unwrap_or_else(|e| {
            eprintln!("error: --workers: {e}");
            std::process::exit(exit_code::USAGE);
        })
    });
    // `--lanes=1` (the default) forces the solo per-cell path; any N > 1
    // batches N (workload, predictor) cells per worker through LaneBatch.
    let lanes: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--lanes="))
        .map(|v| {
            pool::parse_lanes(v).unwrap_or_else(|e| {
                eprintln!("error: --lanes: {e}");
                std::process::exit(exit_code::USAGE);
            })
        })
        .unwrap_or_else(pool::default_lanes);
    let windows: Option<u64> =
        args.iter().find_map(|a| a.strip_prefix("--windows=")).map(|v| parse_count("--windows", v));
    let warm: Option<u64> =
        args.iter().find_map(|a| a.strip_prefix("--warm=")).map(|v| parse_count("--warm", v));
    let json_dir: PathBuf = args
        .iter()
        .find_map(|a| a.strip_prefix("--json-dir="))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    // --sampled raises the horizon to the sampled tier; --quick keeps the
    // quick grid (the combination is what the CI validation step runs).
    let budget = if quick {
        Budget::quick()
    } else if sampled {
        Budget::sampled()
    } else {
        Budget::full()
    };
    let sampling: Option<SampleConfig> = (sampled || windows.is_some() || warm.is_some()).then(|| {
        let mut scfg = budget.default_sampling();
        if let Some(n) = windows {
            scfg.windows = n as usize;
        }
        if let Some(m) = warm {
            scfg.warm_insts = m;
        }
        scfg
    });
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    if ids.is_empty() {
        usage();
    }

    let selected: Vec<&str> = if ids == ["all"] {
        let mut v = EXPERIMENTS.to_vec();
        // fig7/8/9 share a runner; keep one instance. The sampled-vs-full
        // validation runs its own full-detail reference grid, so it is
        // opt-in rather than part of "all".
        v.retain(|e| *e != "fig8" && *e != "fig9" && *e != "sampled");
        v
    } else {
        ids
    };

    // The journal fingerprints the sweep *shape*: resuming under a
    // different budget or sampling configuration must be refused up front
    // (exit 3), never silently merged into a nonsense artifact.
    let journal: Option<Journal> = if no_json {
        None
    } else {
        let path = json_dir.join("journal.jsonl");
        let fingerprint = format!(
            "insts={} iters={} max_workloads={:?} sampling={:?}",
            budget.insts, budget.workload_iters, budget.max_workloads, sampling
        );
        let opened = if resume {
            Journal::resume(&path, &fingerprint)
        } else {
            Journal::create(&path, &fingerprint)
        };
        match opened {
            Ok(j) => {
                if resume {
                    eprintln!(
                        "resuming from {} ({} completed run(s) will be replayed)",
                        j.path().display(),
                        j.completed_runs()
                    );
                }
                Some(j)
            }
            Err(e) => {
                eprintln!("error: journal {}: {e}", path.display());
                std::process::exit(exit_code::INTEGRITY);
            }
        }
    };

    let mut all_degraded: Vec<String> = Vec::new();
    let mut deadline_runs: usize = 0;
    for id in selected {
        // One sweep per experiment: its degraded-run registry and run log
        // are scoped to the experiment, so each BENCH_<id>.json describes
        // exactly the runs that produced this report.
        let mut sweep = if serial {
            Sweep::serial()
        } else {
            workers.map_or_else(Sweep::parallel, Sweep::with_workers)
        };
        // The validation experiment reads the sampling config off the
        // sweep but runs its full-detail reference through simulate_run
        // directly, so setting sampled mode here is safe for every id.
        if lanes > 1 {
            sweep = sweep.with_lanes(lanes);
        }
        if let Some(scfg) = sampling {
            sweep = sweep.with_sampling(scfg);
        }
        if let Some(t) = run_timeout {
            sweep = sweep.with_run_timeout(t);
        }
        if let Some(n) = retries {
            sweep = sweep.with_retries(n);
        }
        if let Some(j) = &journal {
            sweep = sweep.with_journal(j.scope(id));
        }
        let start = std::time::Instant::now();
        match run_experiment(id, &sweep, &budget) {
            Some(out) => {
                println!("=== {id} ===\n{out}");
                println!(
                    "[{id} took {:.1?} on {} worker(s)]\n",
                    start.elapsed(),
                    sweep.workers()
                );
                if !no_json {
                    let artifact = sweep.artifact(id, &budget, start.elapsed());
                    match artifact.write_to(&json_dir) {
                        // Fail closed: re-read what actually landed on disk
                        // and check its digest, so a torn or bit-flipped
                        // artifact is caught here and not by a consumer.
                        Ok(path) => match SweepArtifact::verify_file(&path) {
                            Ok(()) => eprintln!("wrote {}", path.display()),
                            Err(e) => {
                                eprintln!("error: {} failed self-verification: {e}", path.display());
                                std::process::exit(exit_code::INTEGRITY);
                            }
                        },
                        Err(e) => eprintln!("warning: could not write {}: {e}", artifact.file_name()),
                    }
                }
                all_degraded.extend(sweep.take_degraded());
                deadline_runs += sweep.deadline_count();
            }
            None => {
                eprintln!("unknown experiment '{id}'; known: {}", EXPERIMENTS.join(" "));
                std::process::exit(exit_code::USAGE);
            }
        }
    }

    // Degraded (failed but recovered) runs are collected per sweep so one
    // bad (workload, predictor) pair cannot abort a whole experiment; they
    // still must be visible at the end rather than scrolled away.
    if !all_degraded.is_empty() {
        eprintln!("{} degraded run(s) — their statistics are partial:", all_degraded.len());
        for d in &all_degraded {
            eprintln!("  - {d}");
        }
    }
    if deadline_runs > 0 {
        eprintln!("{deadline_runs} run(s) hit the --run-timeout deadline");
    }
    std::process::exit(exit_code::for_outcome(!all_degraded.is_empty(), deadline_runs > 0));
}
