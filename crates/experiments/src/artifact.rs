//! Machine-readable sweep artifacts (`BENCH_<id>.json`).
//!
//! Every sweep the engine runs can be serialized to a small JSON record —
//! per-run IPC, MPKI (false negatives and false positives), simulated
//! wall-clock, worker count, budget, and the repository's `git describe`
//! — so the performance trajectory of the repo is data, not prose. The
//! experiment binary drops one `BENCH_<id>.json` per experiment id and CI
//! uploads them as build artifacts.
//!
//! The writer is in-tree (the build environment has no crates.io access,
//! so there is no `serde`): [`JsonValue`] covers exactly the subset these
//! records need, with correct string escaping and `null` for non-finite
//! floats.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A JSON value, sufficient for the sweep artifacts.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float (serialized as `null` when not finite).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Float(_) => out.push_str("null"),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Sampling metadata for a run whose statistics were *estimated* from
/// detailed windows (see `phast-sample` and `docs/SAMPLING.md`) rather
/// than measured over the whole horizon. `None` on a [`RunRecord`] means
/// the run was full-detail.
#[derive(Clone, Debug)]
pub struct SamplingMeta {
    /// Detailed windows that produced a measurement.
    pub windows: usize,
    /// Instructions measured cycle-accurately per window.
    pub window_insts: u64,
    /// Instructions of microarchitectural warming per window.
    pub warm_insts: u64,
    /// Total instructions measured cycle-accurately.
    pub measured_insts: u64,
    /// Total instructions spent in warm phases.
    pub warmed_insts: u64,
    /// Instructions covered only by functional fast-forward.
    pub fast_forwarded_insts: u64,
    /// The instruction horizon the sample represents.
    pub horizon: u64,
    /// Half-width of the 95% confidence interval on the per-window IPC
    /// mean.
    pub ipc_ci_half: f64,
    /// Full-detail IPC of the same (workload, predictor) pair, when a
    /// validation pass measured it.
    pub full_ipc: Option<f64>,
    /// `|sampled IPC − full IPC|`, when a validation pass measured it.
    pub ipc_error: Option<f64>,
}

impl SamplingMeta {
    fn to_json(&self) -> JsonValue {
        let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Float);
        JsonValue::obj(vec![
            ("windows", JsonValue::UInt(self.windows as u64)),
            ("window_insts", JsonValue::UInt(self.window_insts)),
            ("warm_insts", JsonValue::UInt(self.warm_insts)),
            ("measured_insts", JsonValue::UInt(self.measured_insts)),
            ("warmed_insts", JsonValue::UInt(self.warmed_insts)),
            ("fast_forwarded_insts", JsonValue::UInt(self.fast_forwarded_insts)),
            ("horizon", JsonValue::UInt(self.horizon)),
            ("ipc_ci_half", JsonValue::Float(self.ipc_ci_half)),
            ("full_ipc", opt(self.full_ipc)),
            ("ipc_error", opt(self.ipc_error)),
        ])
    }
}

/// One row of the sweep's run log: everything the perf trajectory needs
/// about a single (workload, predictor) simulation.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Workload name.
    pub workload: String,
    /// Predictor label.
    pub predictor: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Memory-order violations (MDP false negatives) per kilo-instruction.
    pub violation_mpki: f64,
    /// False dependences (MDP false positives) per kilo-instruction.
    pub false_dep_mpki: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Paths tracked (unlimited predictors; 0 for table-based ones).
    pub num_paths: u64,
    /// Host wall-clock seconds this run took to simulate.
    pub wall_s: f64,
    /// Simulation throughput in committed mega-instructions per host
    /// second (`committed / wall_s / 1e6`); 0 when the run took no
    /// measurable time.
    pub mips: f64,
    /// The degradation message if the run failed, `None` if it ran clean.
    pub degraded: Option<String>,
    /// Sampling metadata when this run was estimated from detailed
    /// windows; `None` for a full-detail run.
    pub sampling: Option<SamplingMeta>,
}

impl RunRecord {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("workload", JsonValue::Str(self.workload.clone())),
            ("predictor", JsonValue::Str(self.predictor.clone())),
            ("ipc", JsonValue::Float(self.ipc)),
            ("violation_mpki", JsonValue::Float(self.violation_mpki)),
            ("false_dep_mpki", JsonValue::Float(self.false_dep_mpki)),
            ("cycles", JsonValue::UInt(self.cycles)),
            ("committed", JsonValue::UInt(self.committed)),
            ("num_paths", JsonValue::UInt(self.num_paths)),
            ("wall_s", JsonValue::Float(self.wall_s)),
            ("mips", JsonValue::Float(self.mips)),
            (
                "degraded",
                match &self.degraded {
                    Some(msg) => JsonValue::Str(msg.clone()),
                    None => JsonValue::Null,
                },
            ),
            (
                "sampling",
                match &self.sampling {
                    Some(meta) => meta.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// The machine-readable record of one whole sweep, written as
/// `BENCH_<id>.json`.
#[derive(Clone, Debug)]
pub struct SweepArtifact {
    /// Experiment id (`fig15`, `ablations`, ...).
    pub id: String,
    /// `git describe --always --dirty` of the tree that produced the data.
    pub git: String,
    /// Worker threads the sweep ran with (1 = serial).
    pub workers: usize,
    /// Instruction budget per run.
    pub budget_insts: u64,
    /// Workload outer-loop iterations.
    pub budget_iters: u64,
    /// Number of workloads the budget covered.
    pub workloads: usize,
    /// End-to-end host wall-clock seconds for the sweep.
    pub wall_s: f64,
    /// Every simulation run, in deterministic matrix order.
    pub runs: Vec<RunRecord>,
    /// Degraded-run descriptions, in matrix order.
    pub degraded: Vec<String>,
}

impl SweepArtifact {
    /// Aggregate simulation throughput: total committed instructions of
    /// clean runs divided by their summed per-run host wall-clock, in
    /// millions per second. The per-run walls are used (not the sweep
    /// wall) so the figure is comparable between serial and parallel
    /// sweeps.
    pub fn simulated_mips(&self) -> f64 {
        let clean = self.runs.iter().filter(|r| r.degraded.is_none());
        let (committed, wall_s) = clean
            .fold((0u64, 0.0f64), |(c, w), r| (c + r.committed, w + r.wall_s));
        if wall_s > 0.0 {
            committed as f64 / wall_s / 1e6
        } else {
            0.0
        }
    }

    /// Renders the artifact as JSON.
    pub fn to_json(&self) -> String {
        let mut out = JsonValue::obj(vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("git", JsonValue::Str(self.git.clone())),
            ("workers", JsonValue::UInt(self.workers as u64)),
            (
                "budget",
                JsonValue::obj(vec![
                    ("insts", JsonValue::UInt(self.budget_insts)),
                    ("workload_iters", JsonValue::UInt(self.budget_iters)),
                    ("workloads", JsonValue::UInt(self.workloads as u64)),
                ]),
            ),
            ("wall_s", JsonValue::Float(self.wall_s)),
            ("simulated_mips", JsonValue::Float(self.simulated_mips())),
            ("runs", JsonValue::Array(self.runs.iter().map(RunRecord::to_json).collect())),
            (
                "degraded",
                JsonValue::Array(self.degraded.iter().cloned().map(JsonValue::Str).collect()),
            ),
        ])
        .render();
        out.push('\n');
        out
    }

    /// The artifact's file name: `BENCH_<id>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.id)
    }

    /// Writes `BENCH_<id>.json` into `dir` (created if missing) and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable.
pub fn git_describe() -> String {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str) -> RunRecord {
        RunRecord {
            workload: workload.into(),
            predictor: "phast".into(),
            ipc: 3.25,
            violation_mpki: 0.5,
            false_dep_mpki: 0.25,
            cycles: 1000,
            committed: 3250,
            num_paths: 0,
            wall_s: 0.125,
            mips: 3250.0 / 0.125 / 1e6,
            degraded: None,
            sampling: None,
        }
    }

    #[test]
    fn sampling_metadata_serializes_when_present() {
        let mut r = record("mcf");
        r.sampling = Some(SamplingMeta {
            windows: 8,
            window_insts: 1_000,
            warm_insts: 2_000,
            measured_insts: 8_000,
            warmed_insts: 16_000,
            fast_forwarded_insts: 276_000,
            horizon: 300_000,
            ipc_ci_half: 0.04,
            full_ipc: Some(3.2),
            ipc_error: Some(0.05),
        });
        let s = r.to_json().render();
        for needle in
            ["\"windows\": 8", "\"fast_forwarded_insts\": 276000", "\"full_ipc\": 3.2"]
        {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        assert!(record("mcf").to_json().render().contains("\"sampling\": null"));
    }

    #[test]
    fn json_escaping_and_non_finite_floats() {
        let v = JsonValue::obj(vec![
            ("s", JsonValue::Str("a\"b\\c\nd\u{1}".into())),
            ("nan", JsonValue::Float(f64::NAN)),
            ("inf", JsonValue::Float(f64::INFINITY)),
        ]);
        let s = v.render();
        assert!(s.contains(r#""a\"b\\c\nd\u0001""#), "{s}");
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"inf\": null"));
    }

    #[test]
    fn artifact_round_trip_shape() {
        let a = SweepArtifact {
            id: "fig15".into(),
            git: "abc1234-dirty".into(),
            workers: 8,
            budget_insts: 300_000,
            budget_iters: 1_000_000,
            workloads: 23,
            wall_s: 12.5,
            runs: vec![record("gcc_1"), record("mcf")],
            degraded: vec!["gcc_1 × blind: deadlock".into()],
        };
        assert_eq!(a.file_name(), "BENCH_fig15.json");
        let s = a.to_json();
        for needle in
            ["\"id\": \"fig15\"", "\"workers\": 8", "\"insts\": 300000", "\"gcc_1\"", "deadlock"]
        {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        // Exactly one run object per record.
        assert_eq!(s.matches("\"predictor\"").count(), 2);
    }

    #[test]
    fn simulated_mips_aggregates_clean_runs_only() {
        let mut bad = record("mcf");
        bad.degraded = Some("mcf × phast: deadlock".into());
        let a = SweepArtifact {
            id: "fig15".into(),
            git: "abc1234".into(),
            workers: 1,
            budget_insts: 300_000,
            budget_iters: 1_000_000,
            workloads: 2,
            wall_s: 0.5,
            runs: vec![record("gcc_1"), record("gcc_2"), bad],
            degraded: vec![],
        };
        // Two clean runs: (3250 + 3250) / (0.125 + 0.125) / 1e6.
        let expect = 6500.0 / 0.25 / 1e6;
        assert!((a.simulated_mips() - expect).abs() < 1e-12, "{}", a.simulated_mips());
        assert!(a.to_json().contains("\"simulated_mips\""));
        assert!(a.to_json().contains("\"mips\""));
    }

    #[test]
    fn simulated_mips_is_zero_without_runs() {
        let a = SweepArtifact {
            id: "empty".into(),
            git: "unknown".into(),
            workers: 1,
            budget_insts: 1,
            budget_iters: 1,
            workloads: 0,
            wall_s: 0.0,
            runs: vec![],
            degraded: vec![],
        };
        assert_eq!(a.simulated_mips(), 0.0);
    }

    #[test]
    fn artifact_writes_to_disk() {
        let dir = std::env::temp_dir().join("phast-artifact-test");
        let a = SweepArtifact {
            id: "smoke".into(),
            git: "unknown".into(),
            workers: 1,
            budget_insts: 1,
            budget_iters: 1,
            workloads: 0,
            wall_s: 0.0,
            runs: vec![],
            degraded: vec![],
        };
        let path = a.write_to(&dir).expect("writes");
        let body = std::fs::read_to_string(&path).expect("reads back");
        assert!(body.contains("\"id\": \"smoke\""));
        assert!(body.ends_with('\n'));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn git_describe_never_panics() {
        assert!(!git_describe().is_empty());
    }
}
