//! Machine-readable sweep artifacts (`BENCH_<id>.json`).
//!
//! Every sweep the engine runs can be serialized to a small JSON record —
//! per-run IPC, MPKI (false negatives and false positives), simulated
//! wall-clock, worker count, budget, and the repository's `git describe`
//! — so the performance trajectory of the repo is data, not prose. The
//! experiment binary drops one `BENCH_<id>.json` per experiment id and CI
//! uploads them as build artifacts.
//!
//! The writer is in-tree (the build environment has no crates.io access,
//! so there is no `serde`): [`JsonValue`] covers exactly the subset these
//! records need, with correct string escaping and `null` for non-finite
//! floats.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A JSON value, sufficient for the sweep artifacts.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float (serialized as `null` when not finite).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON (2-space indent, one
    /// field per line — the `BENCH_*.json` layout).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Renders the value as compact single-line JSON — the journal's
    /// line format and the digest base for per-record CRCs.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// [`render`](Self::render), but a non-finite float anywhere in the
    /// document is a typed error instead of a silent `null`. The lossy
    /// `render` is correct for *artifacts* (a panicked run's `0/0` IPC is
    /// honestly unknowable and `null` is its faithful encoding, pinned by
    /// the digest scheme); on a **protocol boundary** silent nulls turn a
    /// producer bug into a consumer's missing-field error two hops later,
    /// so the wire layer renders through this checked path.
    ///
    /// # Errors
    ///
    /// [`JsonWriteError::NonFinite`] naming the JSON path of the first
    /// offending value.
    pub fn try_render(&self) -> Result<String, JsonWriteError> {
        self.check_finite("$")?;
        Ok(self.render())
    }

    /// [`render_compact`](Self::render_compact) with the same non-finite
    /// check as [`try_render`](Self::try_render).
    ///
    /// # Errors
    ///
    /// [`JsonWriteError::NonFinite`] naming the JSON path of the first
    /// offending value.
    pub fn try_render_compact(&self) -> Result<String, JsonWriteError> {
        self.check_finite("$")?;
        Ok(self.render_compact())
    }

    /// Depth-first scan for non-finite floats, tracking the JSON path for
    /// the error message.
    fn check_finite(&self, path: &str) -> Result<(), JsonWriteError> {
        match self {
            JsonValue::Float(x) if !x.is_finite() => {
                Err(JsonWriteError::NonFinite { path: path.to_string(), value: *x })
            }
            JsonValue::Array(items) => items
                .iter()
                .enumerate()
                .try_for_each(|(i, v)| v.check_finite(&format!("{path}[{i}]"))),
            JsonValue::Object(fields) => fields
                .iter()
                .try_for_each(|(k, v)| v.check_finite(&format!("{path}.{k}"))),
            _ => Ok(()),
        }
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Float(_) => out.push_str("null"),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    write_escaped(out, k);
                    out.push_str(if pretty { ": " } else { ":" });
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

/// Why a [`JsonValue`] could not be rendered on a checked path.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonWriteError {
    /// A float in the document is `NaN` or infinite; emitting it would
    /// either produce invalid JSON (`NaN` has no JSON spelling) or
    /// silently degrade it to `null`.
    NonFinite {
        /// JSON path of the offending value (`$.runs[3].ipc`).
        path: String,
        /// The non-finite value itself.
        value: f64,
    },
}

impl std::fmt::Display for JsonWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonWriteError::NonFinite { path, value } => {
                write!(f, "non-finite float {value} at {path} has no JSON encoding")
            }
        }
    }
}

impl std::error::Error for JsonWriteError {}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Sampling metadata for a run whose statistics were *estimated* from
/// detailed windows (see `phast-sample` and `docs/SAMPLING.md`) rather
/// than measured over the whole horizon. `None` on a [`RunRecord`] means
/// the run was full-detail.
#[derive(Clone, Debug)]
pub struct SamplingMeta {
    /// Detailed windows that produced a measurement.
    pub windows: usize,
    /// Instructions measured cycle-accurately per window.
    pub window_insts: u64,
    /// Instructions of microarchitectural warming per window.
    pub warm_insts: u64,
    /// Total instructions measured cycle-accurately.
    pub measured_insts: u64,
    /// Total instructions spent in warm phases.
    pub warmed_insts: u64,
    /// Instructions covered only by functional fast-forward.
    pub fast_forwarded_insts: u64,
    /// The instruction horizon the sample represents.
    pub horizon: u64,
    /// Half-width of the 95% confidence interval on the per-window IPC
    /// mean.
    pub ipc_ci_half: f64,
    /// Full-detail IPC of the same (workload, predictor) pair, when a
    /// validation pass measured it.
    pub full_ipc: Option<f64>,
    /// `|sampled IPC − full IPC|`, when a validation pass measured it.
    pub ipc_error: Option<f64>,
}

impl SamplingMeta {
    pub(crate) fn to_json(&self) -> JsonValue {
        let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Float);
        JsonValue::obj(vec![
            ("windows", JsonValue::UInt(self.windows as u64)),
            ("window_insts", JsonValue::UInt(self.window_insts)),
            ("warm_insts", JsonValue::UInt(self.warm_insts)),
            ("measured_insts", JsonValue::UInt(self.measured_insts)),
            ("warmed_insts", JsonValue::UInt(self.warmed_insts)),
            ("fast_forwarded_insts", JsonValue::UInt(self.fast_forwarded_insts)),
            ("horizon", JsonValue::UInt(self.horizon)),
            ("ipc_ci_half", JsonValue::Float(self.ipc_ci_half)),
            ("full_ipc", opt(self.full_ipc)),
            ("ipc_error", opt(self.ipc_error)),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json), for journal replay.
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub(crate) fn from_json(v: &JsonValue) -> Result<SamplingMeta, String> {
        let u = |k: &str| req_u64(v, k);
        let f = |k: &str| req_f64(v, k);
        Ok(SamplingMeta {
            windows: u("windows")? as usize,
            window_insts: u("window_insts")?,
            warm_insts: u("warm_insts")?,
            measured_insts: u("measured_insts")?,
            warmed_insts: u("warmed_insts")?,
            fast_forwarded_insts: u("fast_forwarded_insts")?,
            horizon: u("horizon")?,
            ipc_ci_half: f("ipc_ci_half")?,
            full_ipc: opt_f64(v, "full_ipc")?,
            ipc_error: opt_f64(v, "ipc_error")?,
        })
    }
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing or non-integer '{key}'"))
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key).and_then(JsonValue::as_f64).ok_or_else(|| format!("missing or non-number '{key}'"))
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn opt_f64(v: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None => Err(format!("missing '{key}'")),
        Some(x) if x.is_null() => Ok(None),
        Some(x) => {
            x.as_f64().map(Some).ok_or_else(|| format!("non-number '{key}'"))
        }
    }
}

/// One row of the sweep's run log: everything the perf trajectory needs
/// about a single (workload, predictor) simulation.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Workload name.
    pub workload: String,
    /// Predictor label.
    pub predictor: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Memory-order violations (MDP false negatives) per kilo-instruction.
    pub violation_mpki: f64,
    /// False dependences (MDP false positives) per kilo-instruction.
    pub false_dep_mpki: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Paths tracked (unlimited predictors; 0 for table-based ones).
    pub num_paths: u64,
    /// Host wall-clock seconds this run took to simulate.
    pub wall_s: f64,
    /// Simulation throughput in committed mega-instructions per host
    /// second (`committed / wall_s / 1e6`); 0 when the run took no
    /// measurable time.
    pub mips: f64,
    /// Attempts this run took (1 = first try; >1 means the retry policy
    /// re-ran a degraded run).
    pub attempts: u64,
    /// The degradation message if the run failed, `None` if it ran clean.
    pub degraded: Option<String>,
    /// Sampling metadata when this run was estimated from detailed
    /// windows; `None` for a full-detail run.
    pub sampling: Option<SamplingMeta>,
}

impl RunRecord {
    pub(crate) fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("workload", JsonValue::Str(self.workload.clone())),
            ("predictor", JsonValue::Str(self.predictor.clone())),
            ("ipc", JsonValue::Float(self.ipc)),
            ("violation_mpki", JsonValue::Float(self.violation_mpki)),
            ("false_dep_mpki", JsonValue::Float(self.false_dep_mpki)),
            ("cycles", JsonValue::UInt(self.cycles)),
            ("committed", JsonValue::UInt(self.committed)),
            ("num_paths", JsonValue::UInt(self.num_paths)),
            ("wall_s", JsonValue::Float(self.wall_s)),
            ("mips", JsonValue::Float(self.mips)),
            ("attempts", JsonValue::UInt(self.attempts)),
            (
                "degraded",
                match &self.degraded {
                    Some(msg) => JsonValue::Str(msg.clone()),
                    None => JsonValue::Null,
                },
            ),
            (
                "sampling",
                match &self.sampling {
                    Some(meta) => meta.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json): reconstructs the record a
    /// journal `done` line embedded, so a resumed sweep can replay
    /// completed runs without re-simulating them.
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub(crate) fn from_json(v: &JsonValue) -> Result<RunRecord, String> {
        let degraded = match v.get("degraded") {
            None => return Err("missing 'degraded'".to_string()),
            Some(x) if x.is_null() => None,
            Some(x) => Some(
                x.as_str().map(str::to_string).ok_or_else(|| "non-string 'degraded'".to_string())?,
            ),
        };
        let sampling = match v.get("sampling") {
            None => return Err("missing 'sampling'".to_string()),
            Some(x) if x.is_null() => None,
            Some(x) => Some(SamplingMeta::from_json(x)?),
        };
        Ok(RunRecord {
            workload: req_str(v, "workload")?,
            predictor: req_str(v, "predictor")?,
            ipc: req_f64(v, "ipc")?,
            violation_mpki: req_f64(v, "violation_mpki")?,
            false_dep_mpki: req_f64(v, "false_dep_mpki")?,
            cycles: req_u64(v, "cycles")?,
            committed: req_u64(v, "committed")?,
            num_paths: req_u64(v, "num_paths")?,
            wall_s: req_f64(v, "wall_s")?,
            mips: req_f64(v, "mips")?,
            attempts: req_u64(v, "attempts")?,
            degraded,
            sampling,
        })
    }
}

/// The machine-readable record of one whole sweep, written as
/// `BENCH_<id>.json`.
#[derive(Clone, Debug)]
pub struct SweepArtifact {
    /// Experiment id (`fig15`, `ablations`, ...).
    pub id: String,
    /// `git describe --always --dirty` of the tree that produced the data.
    pub git: String,
    /// Worker threads the sweep ran with (1 = serial).
    pub workers: usize,
    /// Instruction budget per run.
    pub budget_insts: u64,
    /// Workload outer-loop iterations.
    pub budget_iters: u64,
    /// Number of workloads the budget covered.
    pub workloads: usize,
    /// End-to-end host wall-clock seconds for the sweep.
    pub wall_s: f64,
    /// Every simulation run, in deterministic matrix order.
    pub runs: Vec<RunRecord>,
    /// Degraded-run descriptions, in matrix order.
    pub degraded: Vec<String>,
}

impl SweepArtifact {
    /// Aggregate simulation throughput: total committed instructions of
    /// clean runs divided by their summed per-run host wall-clock, in
    /// millions per second. The per-run walls are used (not the sweep
    /// wall) so the figure is comparable between serial and parallel
    /// sweeps.
    pub fn simulated_mips(&self) -> f64 {
        let clean = self.runs.iter().filter(|r| r.degraded.is_none());
        let (committed, wall_s) = clean
            .fold((0u64, 0.0f64), |(c, w), r| (c + r.committed, w + r.wall_s));
        if wall_s > 0.0 {
            committed as f64 / wall_s / 1e6
        } else {
            0.0
        }
    }

    /// The artifact as a [`JsonValue`], *without* the `digest` field.
    fn to_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("git", JsonValue::Str(self.git.clone())),
            ("workers", JsonValue::UInt(self.workers as u64)),
            (
                "budget",
                JsonValue::obj(vec![
                    ("insts", JsonValue::UInt(self.budget_insts)),
                    ("workload_iters", JsonValue::UInt(self.budget_iters)),
                    ("workloads", JsonValue::UInt(self.workloads as u64)),
                ]),
            ),
            ("wall_s", JsonValue::Float(self.wall_s)),
            ("simulated_mips", JsonValue::Float(self.simulated_mips())),
            ("runs", JsonValue::Array(self.runs.iter().map(RunRecord::to_json).collect())),
            (
                "degraded",
                JsonValue::Array(self.degraded.iter().cloned().map(JsonValue::Str).collect()),
            ),
        ])
    }

    /// Renders the artifact as JSON, sealed with a trailing `digest`
    /// field: the CRC32 of the document rendered *without* that field.
    /// [`verify_json`](Self::verify_json) checks it by reconstruction —
    /// parse, drop `digest`, re-render, re-hash — which is exact because
    /// the renderer/parser pair round-trips writer output byte-for-byte.
    pub fn to_json(&self) -> String {
        let mut v = self.to_value();
        let digest = phast_sample::crc32(Self::digest_base(&v).as_bytes());
        if let JsonValue::Object(fields) = &mut v {
            fields.push(("digest".to_string(), JsonValue::Str(format!("crc32:{digest:08x}"))));
        }
        let mut out = v.render();
        out.push('\n');
        out
    }

    /// The artifact's integrity digest (`crc32:xxxxxxxx`) — identical to
    /// the `digest` field [`to_json`](Self::to_json) seals the rendered
    /// document with. `phast-serve` indexes finished artifacts by this
    /// digest so clients can fetch results content-addressed after a
    /// disconnect.
    pub fn digest(&self) -> String {
        let v = self.to_value();
        format!("crc32:{:08x}", phast_sample::crc32(Self::digest_base(&v).as_bytes()))
    }

    /// The exact byte string the `digest` field hashes: the pretty render
    /// of the document without `digest`, plus the trailing newline.
    fn digest_base(v: &JsonValue) -> String {
        let mut s = v.render();
        s.push('\n');
        s
    }

    /// Verifies the integrity digest of a rendered artifact.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Parse`] if `text` is not valid JSON,
    /// [`ArtifactError::MissingDigest`] if it carries no `digest` field,
    /// [`ArtifactError::DigestMismatch`] if the recomputed CRC32 differs —
    /// the file was edited, truncated, or corrupted after it was written.
    pub fn verify_json(text: &str) -> Result<(), ArtifactError> {
        let mut v = crate::jsonio::parse(text).map_err(ArtifactError::Parse)?;
        let digest = v.remove("digest");
        let stored = match digest.as_ref().and_then(JsonValue::as_str) {
            Some(s) => s.to_string(),
            None => return Err(ArtifactError::MissingDigest),
        };
        let computed = format!("crc32:{:08x}", phast_sample::crc32(Self::digest_base(&v).as_bytes()));
        if computed != stored {
            return Err(ArtifactError::DigestMismatch { computed, stored });
        }
        Ok(())
    }

    /// [`verify_json`](Self::verify_json) over a file on disk.
    ///
    /// # Errors
    ///
    /// As for `verify_json`, plus [`ArtifactError::Io`].
    pub fn verify_file(path: &Path) -> Result<(), ArtifactError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
        Self::verify_json(&text)
    }

    /// The artifact's file name: `BENCH_<id>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.id)
    }

    /// Writes `BENCH_<id>.json` into `dir` (created if missing) and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Why a `BENCH_*.json` artifact failed integrity verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file could not be read.
    Io(String),
    /// The file is not valid JSON.
    Parse(crate::jsonio::JsonParseError),
    /// The file parses but carries no `digest` field (written by an older
    /// build, or stripped) — fail closed rather than assume it is intact.
    MissingDigest,
    /// The recomputed digest differs from the stored one.
    DigestMismatch {
        /// Digest recomputed from the file contents.
        computed: String,
        /// Digest the file claims.
        stored: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact unreadable: {e}"),
            ArtifactError::Parse(e) => write!(f, "artifact is not valid JSON: {e}"),
            ArtifactError::MissingDigest => write!(f, "artifact has no integrity digest"),
            ArtifactError::DigestMismatch { computed, stored } => write!(
                f,
                "artifact integrity failure: recomputed {computed} != stored {stored}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable.
pub fn git_describe() -> String {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str) -> RunRecord {
        RunRecord {
            workload: workload.into(),
            predictor: "phast".into(),
            ipc: 3.25,
            violation_mpki: 0.5,
            false_dep_mpki: 0.25,
            cycles: 1000,
            committed: 3250,
            num_paths: 0,
            wall_s: 0.125,
            mips: 3250.0 / 0.125 / 1e6,
            attempts: 1,
            degraded: None,
            sampling: None,
        }
    }

    #[test]
    fn sampling_metadata_serializes_when_present() {
        let mut r = record("mcf");
        r.sampling = Some(SamplingMeta {
            windows: 8,
            window_insts: 1_000,
            warm_insts: 2_000,
            measured_insts: 8_000,
            warmed_insts: 16_000,
            fast_forwarded_insts: 276_000,
            horizon: 300_000,
            ipc_ci_half: 0.04,
            full_ipc: Some(3.2),
            ipc_error: Some(0.05),
        });
        let s = r.to_json().render();
        for needle in
            ["\"windows\": 8", "\"fast_forwarded_insts\": 276000", "\"full_ipc\": 3.2"]
        {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        assert!(record("mcf").to_json().render().contains("\"sampling\": null"));
    }

    #[test]
    fn json_escaping_and_non_finite_floats() {
        let v = JsonValue::obj(vec![
            ("s", JsonValue::Str("a\"b\\c\nd\u{1}".into())),
            ("nan", JsonValue::Float(f64::NAN)),
            ("inf", JsonValue::Float(f64::INFINITY)),
        ]);
        let s = v.render();
        assert!(s.contains(r#""a\"b\\c\nd\u0001""#), "{s}");
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"inf\": null"));
    }

    #[test]
    fn checked_render_rejects_non_finite_floats_with_a_path() {
        let v = JsonValue::obj(vec![
            ("ok", JsonValue::Float(1.5)),
            (
                "runs",
                JsonValue::Array(vec![
                    JsonValue::obj(vec![("ipc", JsonValue::Float(2.0))]),
                    JsonValue::obj(vec![("ipc", JsonValue::Float(f64::NAN))]),
                ]),
            ),
        ]);
        let err = v.try_render().expect_err("NaN rejected");
        assert!(
            matches!(&err, JsonWriteError::NonFinite { path, .. } if path == "$.runs[1].ipc"),
            "{err}"
        );
        assert!(v.try_render_compact().is_err());
        assert!(err.to_string().contains("$.runs[1].ipc"), "{err}");

        let clean = JsonValue::obj(vec![("x", JsonValue::Float(0.25))]);
        assert_eq!(clean.try_render().unwrap(), clean.render());
        assert_eq!(clean.try_render_compact().unwrap(), clean.render_compact());
    }

    #[test]
    fn artifact_round_trip_shape() {
        let a = SweepArtifact {
            id: "fig15".into(),
            git: "abc1234-dirty".into(),
            workers: 8,
            budget_insts: 300_000,
            budget_iters: 1_000_000,
            workloads: 23,
            wall_s: 12.5,
            runs: vec![record("gcc_1"), record("mcf")],
            degraded: vec!["gcc_1 × blind: deadlock".into()],
        };
        assert_eq!(a.file_name(), "BENCH_fig15.json");
        let s = a.to_json();
        for needle in
            ["\"id\": \"fig15\"", "\"workers\": 8", "\"insts\": 300000", "\"gcc_1\"", "deadlock"]
        {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        // Exactly one run object per record.
        assert_eq!(s.matches("\"predictor\"").count(), 2);
    }

    #[test]
    fn simulated_mips_aggregates_clean_runs_only() {
        let mut bad = record("mcf");
        bad.degraded = Some("mcf × phast: deadlock".into());
        let a = SweepArtifact {
            id: "fig15".into(),
            git: "abc1234".into(),
            workers: 1,
            budget_insts: 300_000,
            budget_iters: 1_000_000,
            workloads: 2,
            wall_s: 0.5,
            runs: vec![record("gcc_1"), record("gcc_2"), bad],
            degraded: vec![],
        };
        // Two clean runs: (3250 + 3250) / (0.125 + 0.125) / 1e6.
        let expect = 6500.0 / 0.25 / 1e6;
        assert!((a.simulated_mips() - expect).abs() < 1e-12, "{}", a.simulated_mips());
        assert!(a.to_json().contains("\"simulated_mips\""));
        assert!(a.to_json().contains("\"mips\""));
    }

    #[test]
    fn simulated_mips_is_zero_without_runs() {
        let a = SweepArtifact {
            id: "empty".into(),
            git: "unknown".into(),
            workers: 1,
            budget_insts: 1,
            budget_iters: 1,
            workloads: 0,
            wall_s: 0.0,
            runs: vec![],
            degraded: vec![],
        };
        assert_eq!(a.simulated_mips(), 0.0);
    }

    #[test]
    fn artifact_writes_to_disk() {
        let dir = std::env::temp_dir().join("phast-artifact-test");
        let a = SweepArtifact {
            id: "smoke".into(),
            git: "unknown".into(),
            workers: 1,
            budget_insts: 1,
            budget_iters: 1,
            workloads: 0,
            wall_s: 0.0,
            runs: vec![],
            degraded: vec![],
        };
        let path = a.write_to(&dir).expect("writes");
        let body = std::fs::read_to_string(&path).expect("reads back");
        assert!(body.contains("\"id\": \"smoke\""));
        assert!(body.ends_with('\n'));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn git_describe_never_panics() {
        assert!(!git_describe().is_empty());
    }

    fn artifact() -> SweepArtifact {
        SweepArtifact {
            id: "fig15".into(),
            git: "abc1234".into(),
            workers: 4,
            budget_insts: 300_000,
            budget_iters: 1_000_000,
            workloads: 2,
            wall_s: 1.5,
            runs: vec![record("gcc_1"), record("mcf")],
            degraded: vec![],
        }
    }

    #[test]
    fn digest_verifies_and_catches_corruption() {
        let text = artifact().to_json();
        assert!(text.contains("\"digest\": \"crc32:"), "{text}");
        SweepArtifact::verify_json(&text).expect("freshly rendered artifact verifies");

        // Any content edit breaks it.
        let tampered = text.replace("\"workers\": 4", "\"workers\": 5");
        assert!(matches!(
            SweepArtifact::verify_json(&tampered),
            Err(ArtifactError::DigestMismatch { .. })
        ));

        // A missing digest fails closed.
        let mut v = crate::jsonio::parse(&text).unwrap();
        v.remove("digest");
        let stripped = v.render();
        assert_eq!(SweepArtifact::verify_json(&stripped), Err(ArtifactError::MissingDigest));

        // Garbage is a parse error, not a panic.
        assert!(matches!(
            SweepArtifact::verify_json("not json"),
            Err(ArtifactError::Parse(_))
        ));
    }

    #[test]
    fn verify_file_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("phast-artifact-verify-test");
        let path = artifact().write_to(&dir).expect("writes");
        SweepArtifact::verify_file(&path).expect("on-disk artifact verifies");

        // Flip one byte in the middle of the file: rejected.
        let mut bytes = std::fs::read(&path).expect("reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).expect("rewrites");
        assert!(SweepArtifact::verify_file(&path).is_err());
        let _ = std::fs::remove_file(&path);

        assert!(matches!(
            SweepArtifact::verify_file(Path::new("/nonexistent/bench.json")),
            Err(ArtifactError::Io(_))
        ));
    }

    #[test]
    fn run_record_json_round_trips() {
        let mut r = record("mcf");
        r.attempts = 3;
        r.degraded = Some("mcf × phast: deadlock".into());
        r.sampling = Some(SamplingMeta {
            windows: 8,
            window_insts: 1_000,
            warm_insts: 2_000,
            measured_insts: 8_000,
            warmed_insts: 16_000,
            fast_forwarded_insts: 276_000,
            horizon: 300_000,
            ipc_ci_half: 0.04,
            full_ipc: Some(3.2),
            ipc_error: None,
        });
        for rec in [record("gcc_1"), r] {
            let v = rec.to_json();
            let text = v.render_compact();
            let back = RunRecord::from_json(&crate::jsonio::parse(&text).unwrap())
                .expect("record reconstructs");
            assert_eq!(
                back.to_json().render_compact(),
                text,
                "reconstructed record re-renders byte-identically"
            );
        }
    }
}
