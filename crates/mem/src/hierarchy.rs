//! The full cache hierarchy: L1I, L1D, L2, L3, DRAM, plus the L1D
//! IP-stride prefetcher.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::prefetch::{StridePrefetcher, StridePrefetcherConfig};
use crate::line_of;
use phast_isa::Pc;

/// What kind of access is being performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (uses L1I).
    Fetch,
    /// Demand data load (uses L1D, trains the prefetcher).
    Load,
    /// Committed store writing back from the store buffer (uses L1D).
    Store,
}

/// Configuration of the whole hierarchy. Defaults follow Table I of the
/// paper (Alder-Lake-like).
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3 (all banks aggregated; latency is the banked latency).
    pub l3: CacheConfig,
    /// Flat DRAM access latency in cycles.
    pub dram_latency: u64,
    /// L1D prefetcher configuration.
    pub prefetcher: StridePrefetcherConfig,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig { size_bytes: 32 * 1024, ways: 8, hit_latency: 4, mshrs: 64 },
            l1d: CacheConfig { size_bytes: 48 * 1024, ways: 12, hit_latency: 5, mshrs: 64 },
            l2: CacheConfig { size_bytes: 1280 * 1024, ways: 10, hit_latency: 14, mshrs: 64 },
            l3: CacheConfig { size_bytes: 4 * 3 * 1024 * 1024, ways: 12, hit_latency: 36, mshrs: 64 },
            dram_latency: 100,
            prefetcher: StridePrefetcherConfig::default(),
        }
    }
}

/// Aggregated statistics for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// Per-level (l1i, l1d, l2, l3) stats.
    pub l1i: CacheStats,
    /// L1D stats.
    pub l1d: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// L3 stats.
    pub l3: CacheStats,
    /// Demand accesses that went all the way to DRAM.
    pub dram_accesses: u64,
}

/// The memory hierarchy latency model.
///
/// `access` returns the cycle at which the requested data is available,
/// updating tag state eagerly (a common simplification in trace-driven
/// simulators: the fill is installed at request time but timed correctly).
#[derive(Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram_latency: u64,
    prefetcher: StridePrefetcher,
    dram_accesses: u64,
    /// Reusable scratch buffer for prefetch candidates (keeps the access
    /// path allocation-free in steady state).
    pf_buf: Vec<u64>,
    /// Line of the most recent data-side *warm* access. A consecutive
    /// warm access to the same line is an L1D hit whose only effect is
    /// re-stamping an LRU entry that is already the youngest in its set,
    /// so the walk is skipped — exact as long as nothing else has touched
    /// L1D in between, which every other L1D-touching path guarantees by
    /// clearing the marker.
    warm_data_line: Option<u64>,
}

impl Hierarchy {
    /// Creates a hierarchy with cold caches.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dram_latency: cfg.dram_latency,
            prefetcher: StridePrefetcher::new(cfg.prefetcher),
            dram_accesses: 0,
            pf_buf: Vec::with_capacity(cfg.prefetcher.degree as usize),
            warm_data_line: None,
        }
    }

    /// Performs an access at cycle `now`; returns the completion cycle.
    ///
    /// For `Load` accesses, `pc` trains the IP-stride prefetcher and
    /// confirmed streams are prefetched into L1D.
    pub fn access(&mut self, kind: AccessKind, pc: Pc, addr: u64, now: u64) -> u64 {
        let line = line_of(addr);
        let done = match kind {
            AccessKind::Fetch => self.access_from(Level::L1I, line, now),
            AccessKind::Load | AccessKind::Store => {
                self.warm_data_line = None;
                self.access_from(Level::L1D, line, now)
            }
        };
        if kind == AccessKind::Load {
            let mut pf_buf = std::mem::take(&mut self.pf_buf);
            self.prefetcher.observe_into(pc, addr, &mut pf_buf);
            for &pf_addr in &pf_buf {
                self.prefetch(line_of(pf_addr), now);
            }
            self.pf_buf = pf_buf;
        }
        done
    }

    fn access_from(&mut self, first: Level, line: u64, now: u64) -> u64 {
        let l1 = match first {
            Level::L1I => &mut self.l1i,
            Level::L1D => &mut self.l1d,
        };
        let l1_lat = l1.hit_latency();
        if l1.probe(line) {
            l1.note_hit();
            return now + l1_lat;
        }
        // L1 miss: find the data below, charge cumulative latency.
        let fill_done = if self.l2.probe(line) {
            self.l2.note_hit();
            now + l1_lat + self.l2.hit_latency()
        } else if self.l3.probe(line) {
            self.l3.note_hit();
            let done = now + l1_lat + self.l2.hit_latency() + self.l3.hit_latency();
            self.l2.track_miss(line, now, done);
            self.l2.fill(line);
            done
        } else {
            self.dram_accesses += 1;
            let done = now
                + l1_lat
                + self.l2.hit_latency()
                + self.l3.hit_latency()
                + self.dram_latency;
            let done = self.l3.track_miss(line, now, done);
            self.l3.fill(line);
            self.l2.track_miss(line, now, done);
            self.l2.fill(line);
            done
        };
        let l1 = match first {
            Level::L1I => &mut self.l1i,
            Level::L1D => &mut self.l1d,
        };
        let done = l1.track_miss(line, now, fill_done);
        l1.fill(line);
        done
    }

    /// Warms the hierarchy with an access that moves tag/LRU state exactly
    /// like [`access`](Self::access) but records **no statistics** (no
    /// hit/miss counts, no MSHR timing, no DRAM accounting). Used by the
    /// sampled-simulation engine to warm caches during functional
    /// fast-forward without polluting the detailed window's demand stats.
    ///
    /// For `Load` accesses the prefetcher is trained and confirmed streams
    /// are installed (also stat-free), mirroring the demand path.
    pub fn warm(&mut self, kind: AccessKind, pc: Pc, addr: u64) {
        let line = line_of(addr);
        match kind {
            AccessKind::Fetch => self.warm_from(Level::L1I, line),
            AccessKind::Load | AccessKind::Store => {
                if self.warm_data_line != Some(line) {
                    self.warm_from(Level::L1D, line);
                    self.warm_data_line = Some(line);
                }
            }
        }
        if kind == AccessKind::Load {
            let mut pf_buf = std::mem::take(&mut self.pf_buf);
            self.prefetcher.observe_into(pc, addr, &mut pf_buf);
            if !pf_buf.is_empty() {
                // Prefetch probes/fills touch L1D, so the skip argument
                // above no longer holds for the next access.
                self.warm_data_line = None;
            }
            for &pf_addr in &pf_buf {
                let pf_line = line_of(pf_addr);
                if !self.l1d.probe(pf_line) {
                    self.warm_from(Level::L1D, pf_line);
                }
            }
            self.pf_buf = pf_buf;
        }
    }

    /// Stat-free tag walk of [`access_from`](Self::access_from): probes the
    /// same levels in the same order and fills the same lines, touching
    /// only replacement state.
    fn warm_from(&mut self, first: Level, line: u64) {
        let l1 = match first {
            Level::L1I => &mut self.l1i,
            Level::L1D => &mut self.l1d,
        };
        if l1.probe(line) {
            return;
        }
        if !self.l2.probe(line) {
            if !self.l3.probe(line) {
                self.l3.fill(line);
            }
            self.l2.fill(line);
        }
        let l1 = match first {
            Level::L1I => &mut self.l1i,
            Level::L1D => &mut self.l1d,
        };
        l1.fill(line);
    }

    fn prefetch(&mut self, line: u64, now: u64) {
        if self.l1d.probe(line) {
            return;
        }
        // Prefetches ride the regular path but are not demand misses for
        // accounting; install into L1D.
        let _ = self.access_from(Level::L1D, line, now);
        self.l1d.note_prefetch_fill();
    }

    /// Restores the hierarchy to the state `Hierarchy::new(cfg)` would
    /// produce — cold caches, untrained prefetcher, zero statistics —
    /// while keeping every slab allocation (the L3 tag array alone is
    /// ~12 MB). The lane batch recycles hierarchies across waves through
    /// this; the `reset_equivalence` tests pin that a reset hierarchy is
    /// observably identical to a fresh one.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.l2.reset();
        self.l3.reset();
        self.prefetcher.reset();
        self.dram_accesses = 0;
        self.pf_buf.clear();
        self.warm_data_line = None;
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            l3: *self.l3.stats(),
            dram_accesses: self.dram_accesses,
        }
    }
}

#[derive(Clone, Copy)]
enum Level {
    L1I,
    L1D,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_load_pays_full_latency() {
        let mut m = h();
        let done = m.access(AccessKind::Load, 0x40_0000, 0x1_0000, 0);
        assert_eq!(done, 5 + 14 + 36 + 100, "L1D + L2 + L3 + DRAM");
        assert_eq!(m.stats().dram_accesses, 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = h();
        m.access(AccessKind::Load, 0x40_0000, 0x1_0000, 0);
        let done = m.access(AccessKind::Load, 0x40_0000, 0x1_0000, 200);
        assert_eq!(done, 205, "L1D hit latency is 5");
    }

    #[test]
    fn fetch_uses_l1i() {
        let mut m = h();
        let done = m.access(AccessKind::Fetch, 0x40_0000, 0x40_0000, 0);
        assert_eq!(done, 4 + 14 + 36 + 100);
        let done2 = m.access(AccessKind::Fetch, 0x40_0000, 0x40_0000, 200);
        assert_eq!(done2, 204, "L1I hit latency is 4");
    }

    #[test]
    fn i_and_d_do_not_share_l1() {
        let mut m = h();
        m.access(AccessKind::Fetch, 0x40_0000, 0x5000, 0);
        // Same line through the D-side: misses L1D but hits L2.
        let done = m.access(AccessKind::Load, 0x40_0000, 0x5000, 200);
        assert_eq!(done, 200 + 5 + 14, "hits in L2 which was filled by the fetch path");
    }

    #[test]
    fn stride_stream_gets_prefetched() {
        let mut m = h();
        let pc = 0x40_0100;
        let mut t = 0;
        for i in 0..4u64 {
            t = m.access(AccessKind::Load, pc, 0x2_0000 + i * 64, t);
        }
        // The 4th access issued prefetches for +1..+3 lines; the 5th access
        // should now hit in L1D.
        let before = t;
        let done = m.access(AccessKind::Load, pc, 0x2_0000 + 4 * 64, before);
        assert_eq!(done, before + 5, "prefetched line hits in L1D");
        assert!(m.stats().l1d.prefetch_fills > 0);
    }

    #[test]
    fn warm_moves_tags_without_stats() {
        let mut m = h();
        m.warm(AccessKind::Load, 0x40_0000, 0x1_0000);
        let s = m.stats();
        assert_eq!(s.l1d.hits, 0);
        assert_eq!(s.l1d.misses, 0);
        assert_eq!(s.dram_accesses, 0, "warming must not count demand DRAM accesses");
        // The warmed line now hits at L1D latency like any resident line.
        let done = m.access(AccessKind::Load, 0x40_0000, 0x1_0000, 100);
        assert_eq!(done, 105, "warmed line hits in L1D");
        assert_eq!(m.stats().l1d.hits, 1);
    }

    #[test]
    fn warm_trains_prefetcher_like_demand_path() {
        let mut warm = h();
        let mut demand = h();
        let pc = 0x40_0100;
        let mut t = 0;
        for i in 0..4u64 {
            warm.warm(AccessKind::Load, pc, 0x2_0000 + i * 64);
            t = demand.access(AccessKind::Load, pc, 0x2_0000 + i * 64, t);
        }
        // Both hierarchies should have the +1 line resident after the
        // confirmed stride stream.
        let w = warm.access(AccessKind::Load, pc, 0x2_0000 + 4 * 64, 1000);
        let d = demand.access(AccessKind::Load, pc, 0x2_0000 + 4 * 64, 1000);
        assert_eq!(w, d, "warm path installs the same prefetch lines");
        assert_eq!(w, 1005);
    }

    /// End-to-end recycling contract: a hierarchy that simulated a whole
    /// (different) cell and was reset must behave exactly like a fresh
    /// one — latencies, prefetch behavior and statistics included.
    #[test]
    fn reset_equivalence() {
        fn drive(m: &mut Hierarchy) -> (Vec<u64>, String) {
            let mut lats = Vec::new();
            let mut t = 0;
            for i in 0..400u64 {
                let pc = 0x40_0000 + (i % 7) * 4;
                let addr = ((i * 131) % 4096) * 64 + (i % 3);
                let kind = match i % 5 {
                    0 => AccessKind::Store,
                    1 => AccessKind::Fetch,
                    _ => AccessKind::Load,
                };
                t = m.access(kind, pc, addr, t);
                lats.push(t);
                if i % 11 == 0 {
                    m.warm(AccessKind::Load, 0x40_0100, 0x9000 + i * 64);
                }
            }
            (lats, format!("{:?}", m.stats()))
        }
        let mut fresh = h();
        let mut recycled = h();
        // Dirty tags at every level, train the prefetcher, touch the warm
        // filter and the DRAM counter.
        for i in 0..600u64 {
            recycled.access(AccessKind::Load, 0x40_0000 + (i % 4) * 4, i * 64, i * 10);
            recycled.warm(AccessKind::Fetch, 0x41_0000, i * 64);
            recycled.warm(AccessKind::Load, 0x42_0000, (i % 9) * 64);
        }
        recycled.reset();
        assert_eq!(drive(&mut fresh), drive(&mut recycled));
    }

    #[test]
    fn stats_accumulate() {
        let mut m = h();
        m.access(AccessKind::Load, 0x40_0000, 0x9000, 0);
        m.access(AccessKind::Load, 0x40_0000, 0x9000, 100);
        let s = m.stats();
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l1d.hits, 1);
    }
}
