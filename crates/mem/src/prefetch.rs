//! IP-stride prefetcher (Table I: "IP-stride with a prefetch degree of 3").

use phast_isa::Pc;

/// Configuration of the [`StridePrefetcher`].
#[derive(Clone, Copy, Debug)]
pub struct StridePrefetcherConfig {
    /// Number of entries in the PC-indexed stride table (power of two).
    pub entries: usize,
    /// How many strides ahead to prefetch once a stride is confirmed.
    pub degree: u32,
    /// Confidence needed before issuing prefetches (stride repeats).
    pub threshold: u8,
}

impl Default for StridePrefetcherConfig {
    fn default() -> StridePrefetcherConfig {
        StridePrefetcherConfig { entries: 256, degree: 3, threshold: 2 }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    tag: u32,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// Classic per-instruction-pointer stride detector.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    cfg: StridePrefetcherConfig,
    table: Vec<Entry>,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(cfg: StridePrefetcherConfig) -> StridePrefetcher {
        assert!(cfg.entries.is_power_of_two(), "entries must be a power of two");
        StridePrefetcher { table: vec![Entry::default(); cfg.entries], cfg, issued: 0 }
    }

    /// Observes a demand load and returns the addresses to prefetch.
    pub fn observe(&mut self, pc: Pc, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(pc, addr, &mut out);
        out
    }

    /// Observes a demand load, appending the addresses to prefetch to
    /// `out` (cleared first). Allocation-free when `out` has capacity for
    /// the prefetch degree — the cycle-loop hot path reuses one buffer.
    pub fn observe_into(&mut self, pc: Pc, addr: u64, out: &mut Vec<u64>) {
        out.clear();
        let idx = ((pc >> 2) as usize) & (self.cfg.entries - 1);
        let tag = (pc >> 2) as u32;
        let e = &mut self.table[idx];
        if e.tag == tag && (e.confidence > 0 || e.last_addr != 0) {
            let stride = addr.wrapping_sub(e.last_addr) as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(7);
                if e.confidence >= self.cfg.threshold {
                    for d in 1..=self.cfg.degree {
                        out.push(addr.wrapping_add((stride * i64::from(d)) as u64));
                    }
                    self.issued += out.len() as u64;
                }
            } else {
                e.stride = stride;
                e.confidence = 0;
            }
            e.last_addr = addr;
        } else {
            *e = Entry { tag, last_addr: addr, stride: 0, confidence: 0 };
        }
    }

    /// Total prefetch addresses produced so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Restores the prefetcher to its freshly-constructed state, keeping
    /// the table allocation (the table is small — 256 entries by default —
    /// so a plain rewrite is already O(1) for recycling purposes).
    pub fn reset(&mut self) {
        self.table.fill(Entry::default());
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_constant_stride() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        let pc = 0x40_0010;
        assert!(p.observe(pc, 0x1000).is_empty(), "first touch trains");
        assert!(p.observe(pc, 0x1040).is_empty(), "stride learned");
        assert!(p.observe(pc, 0x1080).is_empty(), "confidence builds");
        let pf = p.observe(pc, 0x10c0);
        assert_eq!(pf, vec![0x1100, 0x1140, 0x1180], "degree-3 prefetch");
    }

    #[test]
    fn resets_on_stride_change() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        let pc = 0x40_0010;
        p.observe(pc, 0x1000);
        p.observe(pc, 0x1040);
        p.observe(pc, 0x1080);
        p.observe(pc, 0x10c0);
        assert!(p.observe(pc, 0x9000).is_empty(), "stride break stops prefetching");
        assert!(p.observe(pc, 0x9040).is_empty(), "must re-earn confidence");
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        p.observe(0x40_0010, 0x1000);
        p.observe(0x40_0014, 0x2000);
        p.observe(0x40_0010, 0x1040);
        p.observe(0x40_0014, 0x2040);
        p.observe(0x40_0010, 0x1080);
        p.observe(0x40_0014, 0x2080);
        assert!(!p.observe(0x40_0010, 0x10c0).is_empty());
        assert!(!p.observe(0x40_0014, 0x20c0).is_empty());
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        let pc = 0x40_0010;
        for _ in 0..10 {
            assert!(p.observe(pc, 0x5000).is_empty(), "same address repeatedly");
        }
    }
}
