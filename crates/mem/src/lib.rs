//! Memory hierarchy model for the PHAST reproduction.
//!
//! Models the Table I hierarchy of the paper: private L1I/L1D and L2, a
//! shared banked L3, an IP-stride L1D prefetcher, MSHR-limited miss
//! handling and a flat-latency DRAM. The model is a *latency calculator*:
//! the out-of-order core asks for the completion cycle of an access and the
//! hierarchy updates its tag state eagerly. Bandwidth is modelled through
//! MSHR occupancy; coherence is out of scope (single core, see DESIGN.md).

#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessKind, Hierarchy, HierarchyConfig, HierarchyStats};
pub use prefetch::{StridePrefetcher, StridePrefetcherConfig};

/// Cache line size in bytes, fixed across the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// Maps a byte address to its line address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
