//! A set-associative cache tag array with true-LRU replacement and
//! MSHR-limited miss tracking.

use crate::LINE_BYTES;
use std::collections::VecDeque;

/// Geometry and timing of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles (pipelined; adds to the request's total).
    pub hit_latency: u64,
    /// Number of miss-status holding registers.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    pub fn sets(&self) -> usize {
        let sets = (self.size_bytes / LINE_BYTES) as usize / self.ways;
        assert!(sets.is_power_of_two(), "cache sets must be a power of two, got {sets}");
        sets
    }

    /// Storage of the data array in bits (for reporting).
    pub fn storage_bits(&self) -> usize {
        (self.size_bytes * 8) as usize
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    lru: u32,
    /// A way is live iff its epoch matches the cache's current epoch.
    /// [`Cache::reset`] bumps the cache epoch, aging out every way in
    /// O(1) instead of rewriting the (multi-megabyte, for L3) slab.
    epoch: u32,
}

/// Per-level statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Misses merged into an already-outstanding line (MSHR hit).
    pub mshr_merges: u64,
    /// Cycles of stall charged because all MSHRs were busy.
    pub mshr_stall_cycles: u64,
    /// Lines installed by prefetch.
    pub prefetch_fills: u64,
}

/// One cache level: tag array + MSHRs.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Flat tag array, `cfg.ways` consecutive entries per set — one
    /// contiguous allocation so a probe walks a single cache-line-sized
    /// span instead of chasing a per-set pointer.
    ways: Vec<Way>,
    set_mask: usize,
    lru_clock: u32,
    /// Current validity epoch; ways whose epoch differs are empty.
    epoch: u32,
    /// Outstanding misses: (line, completion_cycle). Pruned lazily.
    inflight: VecDeque<(u64, u64)>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache {
            cfg,
            ways: vec![Way::default(); sets * cfg.ways],
            set_mask: sets - 1,
            lru_clock: 0,
            epoch: 1,
            inflight: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Restores the cache to the state `Cache::new(cfg)` would produce,
    /// keeping the tag-slab allocation.
    ///
    /// Validity is epoch-gated, so invalidating every way is a single
    /// epoch bump — stale ways read as empty to [`probe`](Cache::probe)
    /// and rank as free slots to [`fill`](Cache::fill)'s victim search,
    /// exactly like a fresh cache's default ways. `reset_equivalence`
    /// tests pin fresh/reset indistinguishability, which the lane batch's
    /// hierarchy recycling relies on for byte-identical statistics.
    pub fn reset(&mut self) {
        match self.epoch.checked_add(1) {
            Some(next) => self.epoch = next,
            None => {
                // One slab rewrite every 2^32 resets keeps the epoch
                // compare a plain equality test.
                self.ways.fill(Way::default());
                self.epoch = 1;
            }
        }
        self.lru_clock = 0;
        self.inflight.clear();
        self.stats = CacheStats::default();
    }

    /// The level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The level's statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The slice of ways holding `line`'s set.
    #[inline]
    fn set_of(&mut self, line: u64) -> &mut [Way] {
        let base = ((line as usize) & self.set_mask) * self.cfg.ways;
        &mut self.ways[base..base + self.cfg.ways]
    }

    /// Looks up `line`, updating LRU on hit. Returns true on hit.
    pub fn probe(&mut self, line: u64) -> bool {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let epoch = self.epoch;
        for way in self.set_of(line) {
            if way.epoch == epoch && way.tag == line {
                way.lru = clock;
                return true;
            }
        }
        false
    }

    /// Installs `line`, evicting the LRU way. Returns the evicted line.
    pub fn fill(&mut self, line: u64) -> Option<u64> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let epoch = self.epoch;
        let set = self.set_of(line);
        // Already present (e.g. a prefetch raced a demand fill): refresh.
        for way in set.iter_mut() {
            if way.epoch == epoch && way.tag == line {
                way.lru = clock;
                return None;
            }
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.epoch == epoch { w.lru } else { 0 })
            .expect("ways > 0");
        let evicted = (victim.epoch == epoch).then_some(victim.tag);
        *victim = Way { tag: line, lru: clock, epoch };
        evicted
    }

    fn prune_inflight(&mut self, now: u64) {
        while let Some(&(_, done)) = self.inflight.front() {
            if done <= now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Accounts a miss for `line` that will be filled by `fill_done`.
    ///
    /// Returns the actual completion cycle after MSHR constraints:
    /// * if the line is already outstanding, the request merges and
    ///   completes with the existing miss;
    /// * if all MSHRs are busy, the request is delayed until one frees.
    pub fn track_miss(&mut self, line: u64, now: u64, fill_done: u64) -> u64 {
        self.prune_inflight(now);
        if let Some(&(_, done)) = self.inflight.iter().find(|(l, _)| *l == line) {
            self.stats.mshr_merges += 1;
            return done;
        }
        let mut start = now;
        if self.inflight.len() >= self.cfg.mshrs {
            // Wait for the oldest outstanding miss to retire its MSHR.
            let free_at = self.inflight[self.inflight.len() - self.cfg.mshrs].1;
            self.stats.mshr_stall_cycles += free_at.saturating_sub(now);
            start = free_at;
        }
        let done = fill_done + (start - now);
        // Keep completion order sorted so pruning stays correct.
        let pos = self.inflight.partition_point(|&(_, d)| d <= done);
        self.inflight.insert(pos, (line, done));
        self.stats.misses += 1;
        done
    }

    /// Records a demand hit.
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Records a prefetch fill.
    pub fn note_prefetch_fill(&mut self) {
        self.stats.prefetch_fills += 1;
    }

    /// Hit latency of this level.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig { size_bytes: 4 * 64 * 2, ways: 2, hit_latency: 3, mshrs: 2 })
    }

    #[test]
    fn config_sets() {
        let c = CacheConfig { size_bytes: 48 * 1024, ways: 12, hit_latency: 5, mshrs: 64 };
        assert_eq!(c.sets(), 64, "48KB/12-way/64B lines = 64 sets (Alder Lake L1D)");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_bad_geometry() {
        let c = CacheConfig { size_bytes: 48 * 1024, ways: 10, hit_latency: 5, mshrs: 64 };
        let _ = c.sets();
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.probe(100));
        c.fill(100);
        assert!(c.probe(100));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(); // 4 sets, 2 ways
        // Lines 0, 4, 8 all map to set 0.
        c.fill(0);
        c.fill(4);
        assert!(c.probe(0), "refresh line 0");
        let evicted = c.fill(8);
        assert_eq!(evicted, Some(4), "line 4 is LRU");
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn mshr_merge_returns_same_completion() {
        let mut c = small();
        let d1 = c.track_miss(100, 10, 110);
        let d2 = c.track_miss(100, 12, 130);
        assert_eq!(d1, 110);
        assert_eq!(d2, 110, "second request merges into the outstanding miss");
        assert_eq!(c.stats().mshr_merges, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn mshr_exhaustion_delays() {
        let mut c = small(); // 2 MSHRs
        let d1 = c.track_miss(1, 0, 100);
        let _d2 = c.track_miss(2, 0, 100);
        let d3 = c.track_miss(3, 0, 100);
        assert_eq!(d1, 100);
        assert!(d3 > 100, "third concurrent miss must wait for an MSHR");
        assert!(c.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn mshrs_free_over_time() {
        let mut c = small();
        c.track_miss(1, 0, 50);
        c.track_miss(2, 0, 50);
        // At cycle 60, both are done; a new miss proceeds immediately.
        let d = c.track_miss(3, 60, 160);
        assert_eq!(d, 160);
    }

    #[test]
    fn fill_of_present_line_evicts_nothing() {
        let mut c = small();
        c.fill(0);
        assert_eq!(c.fill(0), None);
    }

    /// A dirtied-then-reset cache must be observably identical to a fresh
    /// one: same hits, same victims, same MSHR timing, same stats. The
    /// lane batch recycles tag slabs on the strength of this.
    #[test]
    fn reset_equivalence() {
        fn drive(c: &mut Cache) -> (Vec<(bool, Option<u64>, u64)>, CacheStats) {
            let mut log = Vec::new();
            for i in 0..96u64 {
                let hit = c.probe((i * 3) % 24);
                if hit {
                    c.note_hit();
                }
                let evicted = if i % 2 == 0 { c.fill(i % 24) } else { None };
                let done = c.track_miss(i % 8, i, i + 50);
                log.push((hit, evicted, done));
            }
            (log, *c.stats())
        }
        let mut fresh = small();
        let mut recycled = small();
        // Dirty every set, the LRU clock, the MSHRs and the stats.
        for i in 0..200u64 {
            recycled.probe(i);
            recycled.fill(i * 7);
            recycled.track_miss(i, i, i + 90);
        }
        recycled.reset();
        assert_eq!(drive(&mut fresh), drive(&mut recycled));
    }
}
