//! One Criterion bench per figure of the paper's evaluation. Each bench
//! invokes the same experiment runner the `phast-experiments` binary uses,
//! at a reduced budget (the shapes reported in EXPERIMENTS.md come from
//! the full-budget binary). Pass `--parallel` (or set `PHAST_WORKERS`) to
//! bench the parallel sweep engine instead of the serial path.

use criterion::{criterion_group, criterion_main, Criterion};
use phast_bench::{bench_budget, bench_sweep};
use phast_experiments::figures;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let budget = bench_budget();
    let sweep = bench_sweep();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig01_mpki_history", |b| {
        b.iter(|| black_box(figures::fig1::run(&sweep, &budget)))
    });
    g.bench_function("fig02_generations", |b| {
        b.iter(|| black_box(figures::fig2::run(&sweep, &budget)))
    });
    g.bench_function("fig04_multistore", |b| {
        b.iter(|| black_box(figures::fig4::run(&sweep, &budget)))
    });
    g.bench_function("fig06_unlimited", |b| {
        b.iter(|| black_box(figures::fig6::run(&sweep, &budget)))
    });
    g.bench_function("fig07_09_unlimited_phast", |b| {
        b.iter(|| black_box(figures::fig789::run(&sweep, &budget)))
    });
    g.bench_function("fig10_hist_lengths", |b| {
        b.iter(|| black_box(figures::fig10::run(&sweep, &budget)))
    });
    g.bench_function("fig11_max_history", |b| {
        b.iter(|| black_box(figures::fig11::run(&sweep, &budget)))
    });
    g.bench_function("fig12_fwd_filter", |b| {
        b.iter(|| black_box(figures::fig12::run(&sweep, &budget)))
    });
    g.bench_function("fig13_storage_sweep", |b| {
        b.iter(|| black_box(figures::fig13::run(&sweep, &budget)))
    });
    g.bench_function("fig14_mpki", |b| {
        b.iter(|| black_box(figures::fig14::run(&sweep, &budget)))
    });
    g.bench_function("fig15_ipc", |b| {
        b.iter(|| black_box(figures::fig15::run(&sweep, &budget)))
    });
    g.bench_function("fig16_energy", |b| {
        b.iter(|| black_box(figures::fig16::run(&sweep, &budget)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
