//! Microbenchmarks of the predictors' predict/train hot paths, isolated
//! from the core simulator. These quantify the software cost of each
//! lookup structure (the hardware cost is the Table II energy model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phast::{Phast, PhastConfig, UnlimitedPhast};
use phast_baselines::{MdpTage, MdpTageConfig, NoSqConfig, NoSqPredictor, StoreSets, StoreSetsConfig};
use phast_branch::{DivergentEvent, DivergentHistory};
use phast_mdp::{LoadQuery, MemDepPredictor, PredictionOutcome, Violation};
use std::hint::black_box;

fn history(n: usize) -> DivergentHistory {
    let mut h = DivergentHistory::new();
    for i in 0..n {
        h.push(DivergentEvent {
            indirect: i % 5 == 0,
            taken: i % 3 == 0,
            target: (i as u64).wrapping_mul(0x9E37_79B9),
        });
    }
    h
}

fn train(p: &mut dyn MemDepPredictor, h: &DivergentHistory, n: u64) {
    for i in 0..n {
        p.train_violation(&Violation {
            load_pc: 0x40_0000 + (i % 64) * 4,
            store_pc: 0x40_2000 + (i % 64) * 4,
            store_distance: (i % 16) as u32,
            history_len: (i % 12) as u32,
            history: h,
            load_token: i,
            store_token: i,
            prior: PredictionOutcome::none(),
        });
    }
}

fn bench_predict(c: &mut Criterion) {
    let h = history(256);
    let mut g = c.benchmark_group("predict_load");
    let mut subjects: Vec<(&str, Box<dyn MemDepPredictor>)> = vec![
        ("phast", Box::new(Phast::new(PhastConfig::paper()))),
        ("unlimited-phast", Box::new(UnlimitedPhast::new())),
        ("nosq", Box::new(NoSqPredictor::new(NoSqConfig::paper()))),
        ("store-sets", Box::new(StoreSets::new(StoreSetsConfig::paper()))),
        ("mdp-tage", Box::new(MdpTage::new(MdpTageConfig::paper()))),
        ("mdp-tage-s", Box::new(MdpTage::new(MdpTageConfig::short()))),
    ];
    for (name, p) in &mut subjects {
        train(p.as_mut(), &h, 512);
        g.bench_with_input(BenchmarkId::from_parameter(*name), &(), |b, ()| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let q = LoadQuery {
                    pc: 0x40_0000 + (i % 64) * 4,
                    token: i,
                    history: &h,
                    arch_seq: i,
                    older_stores: 32,
                };
                black_box(p.predict_load(&q))
            })
        });
    }
    g.finish();
}

fn bench_train(c: &mut Criterion) {
    let h = history(256);
    let mut g = c.benchmark_group("train_violation");
    let mut subjects: Vec<(&str, Box<dyn MemDepPredictor>)> = vec![
        ("phast", Box::new(Phast::new(PhastConfig::paper()))),
        ("nosq", Box::new(NoSqPredictor::new(NoSqConfig::paper()))),
        ("store-sets", Box::new(StoreSets::new(StoreSetsConfig::paper()))),
        ("mdp-tage", Box::new(MdpTage::new(MdpTageConfig::paper()))),
    ];
    for (name, p) in &mut subjects {
        g.bench_with_input(BenchmarkId::from_parameter(*name), &(), |b, ()| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                train(p.as_mut(), &h, 1);
                black_box(i)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_predict, bench_train);
criterion_main!(benches);
