//! Criterion benches for the paper's Table I and Table II.

use criterion::{criterion_group, criterion_main, Criterion};
use phast_bench::{bench_budget, bench_sweep};
use phast_experiments::figures;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let budget = bench_budget();
    let sweep = bench_sweep();
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_system_config", |b| {
        b.iter(|| black_box(figures::table1::run(&sweep, &budget)))
    });
    g.bench_function("table2_predictor_configs", |b| {
        b.iter(|| black_box(figures::table2::run(&sweep, &budget)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
