//! Microbenchmark of the OoO simulation kernel itself: full
//! fetch→commit simulation of a few representative workloads, reported
//! as host wall-clock plus simulation throughput (simulated cycles per
//! host second and committed mega-instructions per host second).
//!
//! This is the number the allocation-free hot-path work optimizes —
//! run it before and after a simulator change:
//!
//! ```text
//! cargo bench -p phast-bench --bench simkernel
//! ```
//!
//! Workloads are chosen to stress different parts of the kernel:
//! `lbm` (memory-heavy stores), `gcc_1` (branchy, big footprint),
//! `exchange2` (tight integer loops) and `perlbench_1` (mixed). Each
//! runs under the headline PHAST predictor and under blind speculation,
//! bounding the predictor's share of the kernel cost.

use criterion::{criterion_group, criterion_main, Criterion};
use phast_experiments::harness::simulate_run;
use phast_experiments::{Budget, PredictorKind};
use phast_ooo::CoreConfig;
use std::hint::black_box;

const WORKLOADS: [&str; 4] = ["lbm", "gcc_1", "exchange2", "perlbench_1"];
const PREDICTORS: [PredictorKind; 2] = [PredictorKind::Blind, PredictorKind::Phast];

fn bench_simkernel(c: &mut Criterion) {
    let budget = Budget::bench();
    let cfg = CoreConfig::alder_lake();
    let mut g = c.benchmark_group("simkernel");
    g.sample_size(10);

    for name in WORKLOADS {
        let w = phast_workloads::by_name(name).expect("bench workload exists");
        let program = w.build(budget.workload_iters);
        for kind in &PREDICTORS {
            let label = kind.label();
            // Throughput is derived from the run's own stats, so report
            // it once outside the timed samples (one warm run), then let
            // criterion time the same closure.
            let mut pred = kind.build(&program, budget.insts);
            let r = simulate_run(name, &label, &program, &cfg, pred.as_mut(), budget.insts);
            assert!(r.ok(), "simkernel bench run degraded: {:?}", r.failure);
            let wall = r.wall.as_secs_f64();
            println!(
                "simkernel {name:<12} {label:<12} {:>8} cycles {:>8} committed  \
                 {:>7.2} Mcycles/s  {:>7.2} MIPS",
                r.stats.cycles,
                r.stats.committed,
                if wall > 0.0 { r.stats.cycles as f64 / wall / 1e6 } else { 0.0 },
                if wall > 0.0 { r.stats.committed as f64 / wall / 1e6 } else { 0.0 },
            );
            g.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    let mut pred = kind.build(&program, budget.insts);
                    black_box(simulate_run(
                        name,
                        &label,
                        &program,
                        &cfg,
                        pred.as_mut(),
                        budget.insts,
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_simkernel);
criterion_main!(benches);
