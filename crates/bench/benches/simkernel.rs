//! Microbenchmark of the OoO simulation kernel itself: full
//! fetch→commit simulation of a few representative workloads, reported
//! as host wall-clock plus simulation throughput (simulated cycles per
//! host second and committed mega-instructions per host second).
//!
//! This is the number the allocation-free hot-path work optimizes —
//! run it before and after a simulator change:
//!
//! ```text
//! cargo bench -p phast-bench --bench simkernel
//! ```
//!
//! Workloads are chosen to stress different parts of the kernel:
//! `lbm` (memory-heavy stores), `gcc_1` (branchy, big footprint),
//! `exchange2` (tight integer loops) and `perlbench_1` (mixed). Each
//! runs under the headline PHAST predictor and under blind speculation,
//! bounding the predictor's share of the kernel cost.

use criterion::{criterion_group, criterion_main, Criterion};
use phast_experiments::harness::simulate_run;
use phast_experiments::{Budget, PredictorKind};
use phast_ooo::{CoreConfig, Deadline, LaneBatch, LaneJob, LaneOutcome};
use std::hint::black_box;
use std::time::Instant;

const WORKLOADS: [&str; 4] = ["lbm", "gcc_1", "exchange2", "perlbench_1"];
const PREDICTORS: [PredictorKind; 2] = [PredictorKind::Blind, PredictorKind::Phast];

fn bench_simkernel(c: &mut Criterion) {
    let budget = Budget::bench();
    let cfg = CoreConfig::alder_lake();
    let mut g = c.benchmark_group("simkernel");
    g.sample_size(10);

    for name in WORKLOADS {
        let w = phast_workloads::by_name(name).expect("bench workload exists");
        let program = w.build(budget.workload_iters);
        for kind in &PREDICTORS {
            let label = kind.label();
            // Throughput is derived from the run's own stats, so report
            // it once outside the timed samples (one warm run), then let
            // criterion time the same closure.
            let mut pred = kind.build(&program, budget.insts);
            let r = simulate_run(name, &label, &program, &cfg, pred.as_mut(), budget.insts);
            assert!(r.ok(), "simkernel bench run degraded: {:?}", r.failure);
            let wall = r.wall.as_secs_f64();
            println!(
                "simkernel {name:<12} {label:<12} {:>8} cycles {:>8} committed  \
                 {:>7.2} Mcycles/s  {:>7.2} MIPS",
                r.stats.cycles,
                r.stats.committed,
                if wall > 0.0 { r.stats.cycles as f64 / wall / 1e6 } else { 0.0 },
                if wall > 0.0 { r.stats.committed as f64 / wall / 1e6 } else { 0.0 },
            );
            g.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    let mut pred = kind.build(&program, budget.insts);
                    black_box(simulate_run(
                        name,
                        &label,
                        &program,
                        &cfg,
                        pred.as_mut(),
                        budget.insts,
                    ))
                })
            });
        }
    }
    g.finish();
}

/// Builds the full 4×2 grid as lane jobs (fresh program and predictor per
/// cell, exactly what one sweep cell constructs).
fn lane_grid(budget: &Budget, cfg: &CoreConfig) -> Vec<LaneJob> {
    let mut jobs = Vec::new();
    for name in WORKLOADS {
        let w = phast_workloads::by_name(name).expect("bench workload exists");
        for kind in &PREDICTORS {
            let program = w.build(budget.workload_iters);
            let mut core_cfg = cfg.clone();
            core_cfg.train_point = kind.train_point();
            let predictor = kind.build(&program, budget.insts);
            jobs.push(LaneJob::new(program, core_cfg, predictor, budget.insts, Deadline::none()));
        }
    }
    jobs
}

/// Aggregate throughput of the whole grid at a given lane count — the
/// number the `--lanes=N` sweep flag changes. `lanes=1` runs exactly what
/// the flag runs: the solo per-cell path (fresh hierarchy per cell);
/// `lanes=8` interleaves the grid through one [`LaneBatch`]. Prints one
/// machine-greppable line per lane count plus the lanes=8 / lanes=1
/// ratio; CI's perf-smoke gate bounds how far batching may fall below
/// solo (see `.github/workflows/ci.yml` and docs/KERNEL.md for the
/// honest single-host numbers).
fn bench_lanes(_c: &mut Criterion) {
    let budget = Budget::bench();
    let cfg = CoreConfig::alder_lake();
    let mut per_lanes = Vec::new();
    for lanes in [1usize, 8] {
        // One warm pass to populate the allocator and page cache, then
        // the measured pass.
        run_lane_grid(lanes, &budget, &cfg);
        let (cells, cycles, wall) = run_lane_grid(lanes, &budget, &cfg);
        let mcps = if wall > 0.0 { cycles as f64 / wall / 1e6 } else { 0.0 };
        println!(
            "simkernel-lanes lanes={lanes} cells={cells} total-cycles={cycles} \
             wall={wall:.3}s agg={mcps:.2} Mcycles/s",
        );
        per_lanes.push(mcps);
    }
    println!("simkernel-lanes ratio lanes8/lanes1={:.3}", per_lanes[1] / per_lanes[0]);
}

/// One timed pass of the grid: the solo path at `lanes == 1`, a
/// [`LaneBatch`] otherwise. Returns (cells, total simulated cycles, wall
/// seconds).
fn run_lane_grid(lanes: usize, budget: &Budget, cfg: &CoreConfig) -> (usize, u64, f64) {
    if lanes <= 1 {
        let mut cycles: u64 = 0;
        let mut cells = 0;
        let start = Instant::now();
        for name in WORKLOADS {
            let w = phast_workloads::by_name(name).expect("bench workload exists");
            for kind in &PREDICTORS {
                let program = w.build(budget.workload_iters);
                let mut core_cfg = cfg.clone();
                core_cfg.train_point = kind.train_point();
                let mut pred = kind.build(&program, budget.insts);
                let r =
                    simulate_run(name, &kind.label(), &program, &core_cfg, pred.as_mut(), budget.insts);
                assert!(r.ok(), "lane bench cell degraded: {:?}", r.failure);
                cycles += r.stats.cycles;
                cells += 1;
            }
        }
        return (cells, cycles, start.elapsed().as_secs_f64());
    }
    let start = Instant::now();
    let reports = LaneBatch::new(lanes).run(lane_grid(budget, cfg));
    let wall = start.elapsed().as_secs_f64();
    let mut cycles: u64 = 0;
    for r in &reports {
        match &r.outcome {
            LaneOutcome::Finished(stats) => cycles += stats.cycles,
            other => panic!("lane bench cell degraded: {other:?}"),
        }
    }
    (reports.len(), cycles, wall)
}

criterion_group!(benches, bench_simkernel, bench_lanes);
criterion_main!(benches);
