//! Criterion benches regenerating each table and figure of the PHAST
//! paper at a reduced budget.
//!
//! * `benches/figures.rs` — one bench per figure, driving the same
//!   runners as `cargo run -p phast-experiments` (use that binary for the
//!   full-budget numbers; the benches measure harness cost and guard
//!   against regressions).
//! * `benches/tables.rs` — Table I/II generation.
//! * `benches/predictor_micro.rs` — microbenchmarks of the predictors'
//!   predict/train paths in isolation.
//! * `benches/simkernel.rs` — the OoO simulation kernel end to end on a
//!   few representative workloads, reporting simulated cycles per host
//!   second and committed MIPS (the number the allocation-free hot-path
//!   work targets; see docs/PROFILING.md).
//!
//! # Budget tiers and parallelism
//!
//! Benches run at [`bench_budget`] — the [`Budget::bench`] tier, the
//! smallest of the three (full/quick/bench) so `cargo bench` stays
//! minutes. They default to a **serial** sweep so timings measure the
//! single-core harness cost; pass `--parallel` (`cargo bench -- --parallel`)
//! or set `PHAST_WORKERS` to fan the figure matrices across the same
//! worker pool the experiment binary uses, which benchmarks the parallel
//! sweep engine instead.

#![warn(missing_docs)]

use phast_experiments::{Budget, Sweep};

/// The budget benches run at ([`Budget::bench`]).
pub fn bench_budget() -> Budget {
    Budget::bench()
}

/// The sweep engine benches run on: serial by default (stable
/// single-core timings), parallel when `--parallel` is passed on the
/// bench command line or `PHAST_WORKERS` is set — the same knobs the
/// `phast-experiments` binary exposes.
pub fn bench_sweep() -> Sweep {
    let parallel = std::env::args().any(|a| a == "--parallel")
        || std::env::var(phast_experiments::pool::WORKERS_ENV).is_ok();
    if parallel {
        Sweep::parallel()
    } else {
        Sweep::serial()
    }
}
