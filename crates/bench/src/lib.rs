//! Criterion benches regenerating each table and figure of the PHAST
//! paper at a reduced budget.
//!
//! * `benches/figures.rs` — one bench per figure, driving the same
//!   runners as `cargo run -p phast-experiments` (use that binary for the
//!   full-budget numbers; the benches measure harness cost and guard
//!   against regressions).
//! * `benches/tables.rs` — Table I/II generation.
//! * `benches/predictor_micro.rs` — microbenchmarks of the predictors'
//!   predict/train paths in isolation.

/// The budget benches run at (small, so `cargo bench` stays minutes).
pub fn bench_budget() -> phast_experiments::Budget {
    phast_experiments::Budget { insts: 10_000, workload_iters: 60_000, max_workloads: Some(2) }
}
