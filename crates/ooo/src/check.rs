//! Simulation integrity: lockstep checking and fault injection.
//!
//! [`CommitChecker`] steps the `phast-isa` reference emulator once per
//! committed uop and cross-checks pc, destination value, effective address
//! and store data, so a value bug in the pipeline is caught at the first
//! diverging commit instead of (maybe) at the end of a run by a separate
//! equivalence test. [`CheckConfig`] selects which integrity machinery a
//! [`Core`](crate::Core) carries: lockstep, periodic structural-invariant
//! audits, and an optional seeded [`FaultPlan`] that deliberately corrupts
//! speculation state to prove the recovery paths restore architectural
//! correctness (the checker stays on and must stay silent).

use crate::error::DivergenceReport;
use phast_isa::{EmuError, Emulator, Pc, Program};
use phast_mdp::DepPrediction;

/// Which integrity machinery a core instance runs.
///
/// The default enables lockstep and invariant audits in debug builds
/// (where tests live) and disables everything in release builds (where
/// benchmarks live), so the checked configurations pay for checking and
/// the measured configurations do not.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Cross-check every commit against the reference emulator.
    pub lockstep: bool,
    /// Audit structural invariants periodically.
    pub invariants: bool,
    /// Cycles between invariant audits.
    pub invariant_interval: u64,
    /// Deliberate corruption of speculation state, for recovery testing.
    pub faults: Option<FaultPlan>,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        let on = cfg!(debug_assertions);
        CheckConfig { lockstep: on, invariants: on, invariant_interval: 4096, faults: None }
    }
}

impl CheckConfig {
    /// Everything on (regardless of build profile), auditing frequently.
    pub fn full() -> CheckConfig {
        CheckConfig { lockstep: true, invariants: true, invariant_interval: 512, faults: None }
    }

    /// Everything off (regardless of build profile).
    pub fn off() -> CheckConfig {
        CheckConfig { lockstep: false, invariants: false, invariant_interval: 4096, faults: None }
    }

    /// [`CheckConfig::full`] plus the given fault plan.
    pub fn with_faults(plan: FaultPlan) -> CheckConfig {
        CheckConfig { faults: Some(plan), ..CheckConfig::full() }
    }
}

/// Lockstep co-simulation of the reference emulator against the core's
/// commit stream.
pub struct CommitChecker<'p> {
    emu: Emulator<'p>,
    checked: u64,
}

impl<'p> CommitChecker<'p> {
    /// A checker positioned at the program entry.
    pub fn new(program: &'p Program) -> CommitChecker<'p> {
        CommitChecker { emu: Emulator::new(program), checked: 0 }
    }

    /// A checker resuming from an architectural snapshot, for cores booted
    /// mid-program from sampled-simulation checkpoints.
    pub fn from_snapshot(program: &'p Program, snap: &phast_isa::EmuSnapshot) -> CommitChecker<'p> {
        CommitChecker { emu: Emulator::from_snapshot(program, snap), checked: 0 }
    }

    /// Commits successfully cross-checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// The reference emulator (for inspecting architectural state).
    pub fn emulator(&self) -> &Emulator<'p> {
        &self.emu
    }

    /// Steps the reference emulator once and compares its retired record
    /// against one committed uop. Returns the first mismatch.
    pub fn check_commit(
        &mut self,
        arch_seq: u64,
        pc: Pc,
        dst_value: Option<u64>,
        eff_addr: Option<u64>,
        store_data: Option<u64>,
    ) -> Result<(), DivergenceReport> {
        let fail = |field, expected, got| {
            Err(DivergenceReport { arch_seq, core_pc: pc, field, expected, got })
        };
        let rec = match self.emu.step() {
            Ok(Some(rec)) => rec,
            // The reference halted earlier: the core fabricated commits.
            Ok(None) => return fail("past-halt", None, Some(pc)),
            // The reference faulted where the core committed normally.
            Err(EmuError::BadRetTarget { value }) => {
                return fail("emulator-error", Some(value), Some(pc))
            }
        };
        if rec.seq != arch_seq {
            return fail("arch-seq", Some(rec.seq), Some(arch_seq));
        }
        if rec.pc != pc {
            return fail("pc", Some(rec.pc), Some(pc));
        }
        if rec.dst_value != dst_value {
            return fail("dst-value", rec.dst_value, dst_value);
        }
        if rec.eff_addr != eff_addr {
            return fail("eff-addr", rec.eff_addr, eff_addr);
        }
        if rec.store_data != store_data {
            return fail("store-data", rec.store_data, store_data);
        }
        self.checked += 1;
        Ok(())
    }
}

/// Rates of deliberate speculation-state corruption, each out of 4096
/// opportunities, driven by a seeded deterministic RNG.
///
/// Every fault corrupts *speculative* state only — dependence predictions,
/// predictor training, squash decisions — so a correct core recovers and
/// the lockstep checker stays silent. A fault that makes the checker fire
/// is a real recovery bug.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// RNG seed; equal seeds reproduce the exact fault sequence.
    pub seed: u64,
    /// Rate of discarding a load's dependence prediction (forces
    /// speculation, provoking real violations and lazy squashes).
    pub drop_prediction: u32,
    /// Rate of flipping the low bit of a predicted store distance
    /// (mis-aims the wait at the wrong store).
    pub flip_distance: u32,
    /// Rate of fabricating a memory-order violation on a clean head load
    /// (forces a spurious squash-and-refetch).
    pub spurious_violation: u32,
    /// Rate of feeding the predictor a fabricated violation when a load
    /// commits (poisons predictor state).
    pub corrupt_training: u32,
}

impl FaultPlan {
    /// The named single-fault scenarios plus a combined one, used by the
    /// recovery test suite. Rates are per 4096.
    pub fn scenarios(seed: u64) -> Vec<(&'static str, FaultPlan)> {
        let zero = FaultPlan {
            seed,
            drop_prediction: 0,
            flip_distance: 0,
            spurious_violation: 0,
            corrupt_training: 0,
        };
        vec![
            ("drop-prediction", FaultPlan { drop_prediction: 128, ..zero }),
            ("flip-distance", FaultPlan { seed: seed ^ 0x5c5c, flip_distance: 128, ..zero }),
            (
                "spurious-violation",
                FaultPlan { seed: seed ^ 0xa3a3, spurious_violation: 16, ..zero },
            ),
            ("corrupt-training", FaultPlan { seed: seed ^ 0x7171, corrupt_training: 128, ..zero }),
            (
                "combined",
                FaultPlan {
                    seed: seed ^ 0x1f1f,
                    drop_prediction: 48,
                    flip_distance: 48,
                    spurious_violation: 8,
                    corrupt_training: 48,
                },
            ),
        ]
    }
}

/// Stateful executor of a [`FaultPlan`].
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    injected: u64,
    last_spurious_seq: Option<u64>,
}

impl FaultInjector {
    /// An injector at the start of the plan's deterministic sequence.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { state: plan.seed, plan, injected: 0, last_spurious_seq: None }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// SplitMix64.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(&mut self, rate_per_4096: u32) -> bool {
        rate_per_4096 > 0 && (self.next() & 0xfff) < u64::from(rate_per_4096)
    }

    /// Maybe corrupts a fresh load dependence prediction. Returns the
    /// replacement prediction if a fault fired.
    pub fn mangle_prediction(&mut self, dep: DepPrediction) -> Option<DepPrediction> {
        if !matches!(dep, DepPrediction::None) && self.roll(self.plan.drop_prediction) {
            self.injected += 1;
            return Some(DepPrediction::None);
        }
        if let DepPrediction::Distance(d) = dep {
            if self.roll(self.plan.flip_distance) {
                self.injected += 1;
                return Some(DepPrediction::Distance(d ^ 1));
            }
        }
        None
    }

    /// Maybe fires a fabricated memory-order violation on the clean head
    /// load with this architectural sequence number. Monotone in
    /// `arch_seq` so the re-fetched load cannot re-fire the same fault
    /// (which would livelock commit).
    pub fn spurious_violation(&mut self, arch_seq: u64) -> bool {
        if self.last_spurious_seq.is_some_and(|s| arch_seq <= s) {
            return false;
        }
        if self.roll(self.plan.spurious_violation) {
            self.injected += 1;
            self.last_spurious_seq = Some(arch_seq);
            true
        } else {
            false
        }
    }

    /// Maybe poisons predictor training at a load commit.
    pub fn corrupt_training(&mut self) -> bool {
        if self.roll(self.plan.corrupt_training) {
            self.injected += 1;
            true
        } else {
            false
        }
    }

    /// A small random store distance for fabricated training records.
    pub fn small_distance(&mut self) -> u32 {
        (self.next() & 3) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_isa::{MemSize, ProgramBuilder, Reg};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.at(e)
            .li(Reg(1), 0x2000)
            .li(Reg(2), 42)
            .store(Reg(1), 0, Reg(2), MemSize::B8)
            .load(Reg(3), Reg(1), 0, MemSize::B8)
            .halt();
        b.set_entry(e);
        b.build().unwrap()
    }

    #[test]
    fn checker_accepts_the_reference_stream() {
        let p = tiny_program();
        let mut reference = Emulator::new(&p);
        let mut checker = CommitChecker::new(&p);
        while let Some(rec) = reference.step().unwrap() {
            checker
                .check_commit(rec.seq, rec.pc, rec.dst_value, rec.eff_addr, rec.store_data)
                .unwrap();
        }
        assert_eq!(checker.checked(), 5);
    }

    #[test]
    fn checker_reports_first_divergence() {
        let p = tiny_program();
        let mut reference = Emulator::new(&p);
        let mut checker = CommitChecker::new(&p);
        let rec = reference.step().unwrap().unwrap();
        let report = checker
            .check_commit(rec.seq, rec.pc, Some(0xbad), rec.eff_addr, rec.store_data)
            .unwrap_err();
        assert_eq!(report.field, "dst-value");
        assert_eq!(report.expected, Some(0x2000));
        assert_eq!(report.got, Some(0xbad));
    }

    #[test]
    fn checker_flags_commits_past_halt() {
        let p = tiny_program();
        let mut checker = CommitChecker::new(&p);
        for seq in 0..5 {
            // Drive the checker with its own reference to stay aligned.
            let mut r = Emulator::new(&p);
            for _ in 0..seq {
                r.step().unwrap();
            }
            let rec = r.step().unwrap().unwrap();
            checker
                .check_commit(rec.seq, rec.pc, rec.dst_value, rec.eff_addr, rec.store_data)
                .unwrap();
        }
        let report = checker.check_commit(5, 0x99, None, None, None).unwrap_err();
        assert_eq!(report.field, "past-halt");
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 7,
            drop_prediction: 2048,
            flip_distance: 2048,
            spurious_violation: 2048,
            corrupt_training: 2048,
        };
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for i in 0..200 {
            assert_eq!(
                a.mangle_prediction(DepPrediction::Distance(i)),
                b.mangle_prediction(DepPrediction::Distance(i))
            );
            assert_eq!(a.spurious_violation(u64::from(i)), b.spurious_violation(u64::from(i)));
            assert_eq!(a.corrupt_training(), b.corrupt_training());
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "rates of 1/2 must fire within 600 rolls");
    }

    #[test]
    fn spurious_violation_never_refires_for_the_same_load() {
        let plan = FaultPlan {
            seed: 1,
            drop_prediction: 0,
            flip_distance: 0,
            spurious_violation: 4096, // always
            corrupt_training: 0,
        };
        let mut inj = FaultInjector::new(plan);
        assert!(inj.spurious_violation(10));
        // The squashed load re-reaches commit with the same arch_seq.
        assert!(!inj.spurious_violation(10));
        assert!(inj.spurious_violation(11));
    }

    #[test]
    fn scenarios_cover_every_fault_kind() {
        let s = FaultPlan::scenarios(42);
        assert_eq!(s.len(), 5);
        assert!(s.iter().any(|(_, p)| p.drop_prediction > 0));
        assert!(s.iter().any(|(_, p)| p.flip_distance > 0));
        assert!(s.iter().any(|(_, p)| p.spurious_violation > 0));
        assert!(s.iter().any(|(_, p)| p.corrupt_training > 0));
    }
}
