//! The value-accurate, cycle-level out-of-order core.
//!
//! The core executes a `phast-isa` program *in the pipeline*: instructions
//! are fetched down the predicted path, renamed onto producer tokens,
//! issued when operands and ports allow, and compute real values at issue.
//! Wrong-path execution, store-to-load forwarding, memory-order violations
//! and their squashes therefore arise from first principles rather than
//! being replayed from a trace. The committed instruction stream is
//! bit-identical to the reference emulator (asserted by integration
//! tests).
//!
//! Squash policy follows the paper's §V: **eager** recovery for branch
//! mispredictions (at branch resolution), **lazy** commit-time squash for
//! memory-order violations. The §IV-A1 forwarding filter (don't squash a
//! load when the "conflicting" store is older than the store that
//! forwarded the load's data, Fig. 3c) is a config toggle evaluated by
//! Fig. 12.

use crate::check::{CommitChecker, FaultInjector};
use crate::config::{CoreConfig, IndirectPredictorKind, MemSquashPolicy, TrainPoint};
use crate::deadline::Deadline;
use crate::error::{HeadUop, PipelineSnapshot, SimError};
use crate::stats::SimStats;
use phast_branch::{
    DirectionPredictor, DivergentEvent, DivergentHistory, HistoryCheckpoint, Ittage, IttageConfig,
    LastTargetPredictor, ReturnAddressStack,
};
use phast_isa::{
    compute_value, ranges_overlap, BlockId, EmuSnapshot, ExecClass, Inst, MemSize, Op, Pc,
    Program, Reg, SparseMemory, NUM_REGS,
};
use phast_mdp::{
    DepPrediction, LoadCommit, LoadQuery, MemDepPredictor, PredictionOutcome, StoreQuery,
    Violation,
};
use phast_mem::{line_of, AccessKind, Hierarchy};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How many wait tokens a [`TokenList`] stores inline before spilling.
const TOKENS_INLINE: usize = 8;

/// A small set of store tokens, inline up to [`TOKENS_INLINE`] entries.
///
/// Store Vectors is the only predictor that asks a load to wait on more
/// than one store, and its masked distances almost never name more than a
/// handful of live stores — so the common case stays off the heap and
/// dispatching a load allocates nothing.
#[derive(Clone, Debug)]
enum TokenList {
    Inline { len: u8, buf: [u64; TOKENS_INLINE] },
    Spilled(Vec<u64>),
}

impl TokenList {
    fn new() -> TokenList {
        TokenList::Inline { len: 0, buf: [0; TOKENS_INLINE] }
    }

    fn push(&mut self, t: u64) {
        match self {
            TokenList::Inline { len, buf } => {
                if (*len as usize) < TOKENS_INLINE {
                    buf[*len as usize] = t;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(TOKENS_INLINE * 2);
                    v.extend_from_slice(buf);
                    v.push(t);
                    *self = TokenList::Spilled(v);
                }
            }
            TokenList::Spilled(v) => v.push(t),
        }
    }

    fn as_slice(&self) -> &[u64] {
        match self {
            TokenList::Inline { len, buf } => &buf[..*len as usize],
            TokenList::Spilled(v) => v,
        }
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl PartialEq for TokenList {
    fn eq(&self, other: &TokenList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TokenList {}

/// What a load has been told to wait for.
#[derive(Clone, Debug, PartialEq, Eq)]
enum WaitSpec {
    /// No dependence predicted.
    None,
    /// Wait until one specific store token has executed.
    One(u64),
    /// Wait until each of these store tokens has executed (Store Vectors).
    Many(TokenList),
    /// Wait until every older in-flight store has executed.
    AllOlder,
}

/// A memory-order violation recorded on a load, pending its lazy squash.
#[derive(Clone, Copy, Debug)]
struct PendingViolation {
    store_pc: Pc,
    store_token: u64,
    store_distance: u32,
    history_len: u32,
}

/// One in-flight micro-operation.
struct Uop {
    token: u64,
    arch_seq: u64,
    block: BlockId,
    index: usize,
    pc: Pc,
    class: ExecClass,
    dst: Option<Reg>,
    srcs: [Option<Reg>; 2],
    src_producers: [Option<u64>; 2],
    imm: i64,
    is_halt: bool,

    // Lifecycle.
    issue_ready_at: u64,
    issued: bool,
    complete_at: u64,
    completed: bool,
    result: Option<u64>,

    // Rename undo (previous RAT mapping of `dst`).
    prev_rat: Option<u64>,

    // Front-end speculation state captured just before this uop's fetch.
    hist_cp: HistoryCheckpoint,
    ras_cp: phast_branch::RasCheckpoint,
    ghr_at_fetch: u128,
    /// Target-path history (1 outcome bit per conditional, 5 destination
    /// bits per indirect) at fetch — what ITTAGE keys on.
    path_ghr_at_fetch: u128,
    div_count: u64,

    // Control flow.
    predicted_next: Option<(BlockId, usize)>,
    actual_next: Option<(BlockId, usize)>,
    actual_event: Option<DivergentEvent>,
    actual_taken: bool,
    was_mispredicted: bool,

    // Memory.
    mem_size: u64,
    addr: Option<u64>,
    store_data: Option<u64>,
    forward_source: Option<u64>,
    forward_distance: Option<u32>,
    fully_forwarded: bool,
    violation: Option<PendingViolation>,

    // Memory dependence prediction.
    prediction: PredictionOutcome,
    wait: WaitSpec,
    mdp_delayed: bool,
}

/// The front end's indirect-target predictor (configurable flavour).
///
/// Public so the sampled-simulation engine (`phast-sample`) can warm the
/// same structure during functional fast-forward and hand it back to the
/// core via [`BootState`].
#[derive(Clone)]
pub enum IndirectPredictor {
    /// PC-indexed last-target table.
    LastTarget(LastTargetPredictor),
    /// Path-history-tagged geometric predictor.
    Ittage(Box<Ittage>),
}

impl IndirectPredictor {
    /// Creates a cold predictor of the configured flavour, sized exactly
    /// like the one [`Core::new`] builds.
    pub fn new(kind: IndirectPredictorKind) -> IndirectPredictor {
        match kind {
            IndirectPredictorKind::LastTarget => {
                IndirectPredictor::LastTarget(LastTargetPredictor::new(512))
            }
            IndirectPredictorKind::Ittage => {
                IndirectPredictor::Ittage(Box::new(Ittage::new(IttageConfig::default())))
            }
        }
    }

    /// Predicted target for the indirect branch at `pc` under path history
    /// `ghr`, if any.
    pub fn predict(&self, pc: Pc, ghr: u128) -> Option<BlockId> {
        match self {
            IndirectPredictor::LastTarget(p) => p.predict(pc),
            IndirectPredictor::Ittage(p) => p.predict(pc, ghr),
        }
    }

    /// Records the resolved target of the indirect branch at `pc`.
    pub fn update(&mut self, pc: Pc, ghr: u128, target: BlockId) {
        match self {
            IndirectPredictor::LastTarget(p) => p.update(pc, target),
            IndirectPredictor::Ittage(p) => p.update(pc, ghr, target),
        }
    }
}

/// Where fetch resumes after a squash.
enum Redirect {
    /// Re-fetch from this exact static location (violation squash).
    At((BlockId, usize)),
    /// Fetch is stalled until an older squash redirects it (corrupt
    /// indirect target on what is so far the speculative path).
    Stalled,
}

/// The out-of-order core, generic over the memory dependence predictor it
/// is evaluated with.
pub struct Core<'a> {
    program: &'a Program,
    cfg: CoreConfig,
    predictor: &'a mut dyn MemDepPredictor,
    direction: Box<dyn DirectionPredictor>,

    // Front end.
    cursor: Option<(BlockId, usize)>,
    fetch_stalled_until: u64,
    cur_fetch_line: Option<u64>,
    next_token: u64,
    next_arch_seq: u64,
    halt_fetched: bool,

    // Speculation state.
    cond_ghr: u128,
    path_ghr: u128,
    spec_hist: DivergentHistory,
    commit_hist: DivergentHistory,
    indirect: IndirectPredictor,
    ras: ReturnAddressStack,

    // Rename and architectural state.
    rat: [Option<u64>; NUM_REGS],
    arch_regs: [u64; NUM_REGS],
    memory_state: SparseMemory,

    // Back end. The ROB is the single source of truth; the queues below
    // are incrementally maintained scoreboards over it (all token-sorted
    // ascending, cross-checked against a from-scratch recount by
    // `audit_invariants`) so no stage has to scan the whole ROB.
    rob: VecDeque<Uop>,
    rob_head_token: u64,
    /// Unissued uops in age order — the issue queue. Replaces the
    /// per-cycle full-ROB issue scan.
    iq_tokens: VecDeque<u64>,
    /// In-flight loads in age order — the load queue. Stores search only
    /// the suffix younger than themselves.
    lq_tokens: VecDeque<u64>,
    /// In-flight stores in age order — the store queue. Sorted, so
    /// distance counts are two binary searches.
    sq_tokens: VecDeque<u64>,
    /// Pending writebacks as `Reverse((complete_at, token))`: uops are
    /// completed by popping this min-heap instead of scanning the ROB.
    /// Entries of squashed uops go stale and are recognized (and skipped)
    /// at pop time, so squash never has to rebuild the heap.
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// In-flight writers per architectural register (the producer index
    /// backing the RAT audit).
    reg_writers: [u32; NUM_REGS],
    /// Reused buffer for the violation search in `store_search_lq`.
    scratch_violations: Vec<u64>,
    sb_drains: VecDeque<u64>,
    mem: Hierarchy,

    cycle: u64,
    last_commit_cycle: u64,
    stats: SimStats,
    halted: bool,
    commit_log: Option<Vec<CommitRecord>>,

    // Integrity machinery (see `cfg.check`).
    checker: Option<CommitChecker<'a>>,
    injector: Option<FaultInjector>,
}

/// Warmed state a core boots from mid-program (sampled simulation).
///
/// Built by `phast-sample` after functional fast-forward + warming: the
/// architectural snapshot positions the core at an arbitrary point of the
/// program, and the remaining fields seed the front-end speculation
/// structures so the detailed window starts from realistic (not cold)
/// state. See [`Core::with_state`].
pub struct BootState {
    /// Architectural registers/memory/cursor/instruction count.
    pub arch: EmuSnapshot,
    /// Conditional-branch global history register at the boot point.
    pub cond_ghr: u128,
    /// Path (target) global history register at the boot point.
    pub path_ghr: u128,
    /// Divergent-branch history at the boot point (seeds both the
    /// speculative and the commit copy).
    pub history: DivergentHistory,
    /// Return-address stack at the boot point.
    pub ras: ReturnAddressStack,
    /// Warmed cache hierarchy (use a freshly created one for cold boots).
    pub hierarchy: Hierarchy,
    /// Warmed indirect-target predictor.
    pub indirect: IndirectPredictor,
}

/// Result of one bounded slice of simulation ([`Core::try_run_slice`]).
#[derive(Debug)]
// Boxing `Done` would allocate at run completion, inside the window
// `tests/alloc_free_lanes.rs` requires to be allocation-free; the value
// is moved once per run and never stored in a collection, so the size
// difference costs nothing.
#[allow(clippy::large_enum_variant)]
pub enum SliceOutcome {
    /// The run reached its goal (halt or `max_insts`); statistics follow.
    Done(SimStats),
    /// The slice's cycle budget ran out first; call again to continue.
    Pending,
}

/// One committed instruction, for equivalence checks against the
/// functional emulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Architectural sequence number (matches the emulator's `seq`).
    pub arch_seq: u64,
    /// Program counter.
    pub pc: Pc,
    /// Destination value written, if any.
    pub dst_value: Option<u64>,
    /// Effective address of loads/stores.
    pub eff_addr: Option<u64>,
}

impl<'a> Core<'a> {
    /// Creates a core at the program entry with cold predictors and caches.
    pub fn new(
        program: &'a Program,
        cfg: CoreConfig,
        predictor: &'a mut dyn MemDepPredictor,
        direction: Box<dyn DirectionPredictor>,
    ) -> Core<'a> {
        let mem = Hierarchy::new(cfg.memory);
        Core::with_mem(program, cfg, predictor, direction, mem)
    }

    /// Creates a core at the program entry, supplying the cache hierarchy.
    ///
    /// `mem` must be indistinguishable from `Hierarchy::new(cfg.memory)` —
    /// either freshly built or recycled through [`Hierarchy::reset`]
    /// (which is equivalence-tested). The lane batch uses this to reuse
    /// tag-array slabs across waves instead of reallocating ~12 MB of L3
    /// tags per cell.
    pub(crate) fn with_mem(
        program: &'a Program,
        cfg: CoreConfig,
        predictor: &'a mut dyn MemDepPredictor,
        direction: Box<dyn DirectionPredictor>,
        mem: Hierarchy,
    ) -> Core<'a> {
        let checker = cfg.check.lockstep.then(|| CommitChecker::new(program));
        let injector = cfg.check.faults.map(FaultInjector::new);
        Core {
            mem,
            cursor: Some((program.entry(), 0)),
            fetch_stalled_until: 0,
            cur_fetch_line: None,
            next_token: 0,
            next_arch_seq: 0,
            halt_fetched: false,
            cond_ghr: 0,
            path_ghr: 0,
            spec_hist: DivergentHistory::new(),
            commit_hist: DivergentHistory::new(),
            indirect: IndirectPredictor::new(cfg.indirect_predictor),
            ras: ReturnAddressStack::new(32),
            rat: [None; NUM_REGS],
            arch_regs: [0; NUM_REGS],
            memory_state: SparseMemory::new(),
            rob: VecDeque::with_capacity(cfg.rob_size),
            rob_head_token: 0,
            iq_tokens: VecDeque::with_capacity(cfg.iq_size),
            lq_tokens: VecDeque::with_capacity(cfg.lq_size),
            sq_tokens: VecDeque::with_capacity(cfg.sq_size),
            completions: BinaryHeap::with_capacity(2 * cfg.rob_size),
            reg_writers: [0; NUM_REGS],
            scratch_violations: Vec::with_capacity(16),
            sb_drains: VecDeque::with_capacity(cfg.sq_size),
            cycle: 0,
            last_commit_cycle: 0,
            stats: SimStats::default(),
            halted: false,
            commit_log: None,
            checker,
            injector,
            program,
            cfg,
            predictor,
            direction,
        }
    }

    /// Creates a core resuming mid-program from warmed [`BootState`].
    ///
    /// The pipeline itself starts empty (ROB/queues/RAT are per-window
    /// state that refills within tens of cycles); architectural state,
    /// branch histories, the RAS, the indirect predictor and the cache
    /// hierarchy come from the boot state. `program` must be the program
    /// the boot state was captured from.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is already halted — there is nothing left to
    /// simulate past a retired `Halt`.
    pub fn with_state(
        program: &'a Program,
        cfg: CoreConfig,
        predictor: &'a mut dyn MemDepPredictor,
        direction: Box<dyn DirectionPredictor>,
        boot: BootState,
    ) -> Core<'a> {
        let cursor = boot.arch.cursor;
        assert!(cursor.is_some(), "cannot boot a core from a halted snapshot");
        let checker = cfg.check.lockstep.then(|| CommitChecker::from_snapshot(program, &boot.arch));
        let injector = cfg.check.faults.map(FaultInjector::new);
        Core {
            mem: boot.hierarchy,
            cursor,
            fetch_stalled_until: 0,
            cur_fetch_line: None,
            next_token: 0,
            next_arch_seq: boot.arch.icount,
            halt_fetched: false,
            cond_ghr: boot.cond_ghr,
            path_ghr: boot.path_ghr,
            spec_hist: boot.history.clone(),
            commit_hist: boot.history,
            indirect: boot.indirect,
            ras: boot.ras,
            rat: [None; NUM_REGS],
            arch_regs: boot.arch.regs,
            memory_state: boot.arch.memory,
            rob: VecDeque::with_capacity(cfg.rob_size),
            rob_head_token: 0,
            iq_tokens: VecDeque::with_capacity(cfg.iq_size),
            lq_tokens: VecDeque::with_capacity(cfg.lq_size),
            sq_tokens: VecDeque::with_capacity(cfg.sq_size),
            completions: BinaryHeap::with_capacity(2 * cfg.rob_size),
            reg_writers: [0; NUM_REGS],
            scratch_violations: Vec::with_capacity(16),
            sb_drains: VecDeque::with_capacity(cfg.sq_size),
            cycle: 0,
            last_commit_cycle: 0,
            stats: SimStats::default(),
            halted: false,
            commit_log: None,
            checker,
            injector,
            program,
            cfg,
            predictor,
            direction,
        }
    }

    /// Runs until `max_insts` have committed, the program halts, or
    /// `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the watchdog trips (no commit for
    /// `deadlock_cycles`, or the cycle ceiling elapses before the run
    /// finishes), if the committed path executes a corrupt `Ret`, or —
    /// when enabled by [`CoreConfig::check`] — on the first lockstep
    /// divergence from the reference emulator or failed invariant audit.
    pub fn try_run(&mut self, max_insts: u64, max_cycles: u64) -> Result<SimStats, SimError> {
        self.try_run_within(max_insts, max_cycles, &Deadline::none())
    }

    /// Like [`Core::try_run`], but also polls a cooperative [`Deadline`]
    /// token on the cycle-ceiling path — once every
    /// [`DEADLINE_CHECK_INTERVAL`](crate::DEADLINE_CHECK_INTERVAL) cycles,
    /// so the steady-state loop stays allocation-free — and converts an
    /// expired deadline (or raised cancellation flag) into
    /// [`SimError::Deadline`]. This is the per-run watchdog the sweep
    /// engine uses to turn hung runs into reportable failures.
    ///
    /// # Errors
    ///
    /// As for [`Core::try_run`], plus [`SimError::Deadline`].
    pub fn try_run_within(
        &mut self,
        max_insts: u64,
        max_cycles: u64,
        deadline: &Deadline,
    ) -> Result<SimStats, SimError> {
        match self.try_run_slice(max_insts, max_cycles, deadline, u64::MAX)? {
            SliceOutcome::Done(stats) => Ok(stats),
            SliceOutcome::Pending => unreachable!("unbounded slice cannot be pending"),
        }
    }

    /// Runs at most `slice` further cycles toward the same goal as
    /// [`Core::try_run_within`], returning [`SliceOutcome::Pending`] if the
    /// budget was exhausted first.
    ///
    /// The deadline poll sits inside the loop on the same
    /// `cycle & (DEADLINE_CHECK_INTERVAL - 1) == 0` condition as the
    /// unsliced path, so the sequence of poll points — and therefore every
    /// observable deadline/heartbeat behavior — is identical at *any* slice
    /// length. `try_run_within` itself is one unbounded slice, which is how
    /// the lane batch inherits byte-identity with the serial path by
    /// construction.
    ///
    /// # Errors
    ///
    /// As for [`Core::try_run_within`]. A slice never converts an exhausted
    /// slice budget into an error; only the overall `max_cycles` ceiling
    /// does.
    pub fn try_run_slice(
        &mut self,
        max_insts: u64,
        max_cycles: u64,
        deadline: &Deadline,
        slice: u64,
    ) -> Result<SliceOutcome, SimError> {
        const MASK: u64 = crate::deadline::DEADLINE_CHECK_INTERVAL - 1;
        let slice_end = self.cycle.saturating_add(slice);
        while !self.halted
            && self.stats.committed < max_insts
            && self.cycle < max_cycles
            && self.cycle < slice_end
        {
            if self.cycle & MASK == 0 {
                deadline.tick();
                if deadline.expired() {
                    return Err(SimError::Deadline {
                        wall: deadline.elapsed(),
                        snapshot: self.snapshot(),
                    });
                }
            }
            self.try_step()?;
        }
        if self.halted || self.stats.committed >= max_insts {
            return Ok(SliceOutcome::Done(self.collect_stats()));
        }
        if self.cycle >= max_cycles {
            return Err(SimError::CycleCeiling { max_cycles, snapshot: self.snapshot() });
        }
        Ok(SliceOutcome::Pending)
    }

    /// Legacy entry point: like [`Core::try_run`] but infallible.
    ///
    /// A hit cycle ceiling is logged and returns the partial statistics
    /// with [`SimStats::ceiling_hit`] set (callers that must distinguish
    /// truncation should use `try_run`).
    ///
    /// # Panics
    ///
    /// Panics on every other [`SimError`] (deadlock, lockstep divergence,
    /// invariant violation, corrupt committed `Ret`).
    pub fn run(&mut self, max_insts: u64, max_cycles: u64) -> SimStats {
        match self.try_run(max_insts, max_cycles) {
            Ok(stats) => stats,
            Err(SimError::CycleCeiling { max_cycles, snapshot }) => {
                eprintln!(
                    "warning: cycle ceiling {max_cycles} hit; statistics are truncated ({})",
                    snapshot
                );
                let mut stats = snapshot.stats;
                stats.ceiling_hit = true;
                stats
            }
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Consumes the core, handing back its cache hierarchy for recycling.
    ///
    /// Used by the lane batch between waves: the hierarchy's tag slabs are
    /// the only allocation worth reusing across cells (the L3 alone is
    /// ~12 MB of `Way` entries). Callers must [`Hierarchy::reset`] it
    /// before the next [`Core::with_mem`].
    pub(crate) fn into_mem(self) -> Hierarchy {
        self.mem
    }

    /// Statistics as of now (used for both clean finishes and snapshots).
    fn collect_stats(&self) -> SimStats {
        let mut stats = self.stats.clone();
        stats.cycles = self.cycle;
        stats.halted = self.halted;
        stats.predictor_accesses = self.predictor.access_stats();
        stats.memory = self.mem.stats();
        if let Some(c) = &self.checker {
            stats.checked_commits = c.checked();
        }
        if let Some(i) = &self.injector {
            stats.injected_faults = i.injected();
        }
        stats
    }

    /// Captures the observable pipeline state for a [`SimError`].
    fn snapshot(&self) -> Box<PipelineSnapshot> {
        Box::new(PipelineSnapshot {
            cycle: self.cycle,
            last_commit_cycle: self.last_commit_cycle,
            stats: self.collect_stats(),
            rob_len: self.rob.len(),
            rob_head_token: self.rob_head_token,
            head: self.rob.front().map(|u| HeadUop {
                token: u.token,
                arch_seq: u.arch_seq,
                pc: u.pc,
                class: u.class,
                issued: u.issued,
                completed: u.completed,
            }),
            unissued: self.iq_tokens.len(),
            lq_count: self.lq_tokens.len(),
            sq_tokens: self.sq_tokens.iter().copied().collect(),
            sb_pending: self.sb_drains.len(),
            cursor: self.cursor,
        })
    }

    /// Starts recording every committed instruction, for equivalence
    /// checks against the reference emulator.
    pub fn enable_commit_log(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    /// The recorded commit log (empty unless enabled).
    pub fn commit_log(&self) -> &[CommitRecord] {
        self.commit_log.as_deref().unwrap_or(&[])
    }

    /// Architectural register value (for oracle-style verification).
    pub fn arch_reg(&self, r: Reg) -> u64 {
        self.arch_regs[r.index()]
    }

    /// Committed architectural memory (for oracle-style verification).
    pub fn arch_memory(&self) -> &SparseMemory {
        &self.memory_state
    }

    /// Advances one cycle: commit → writeback → issue → fetch.
    fn try_step(&mut self) -> Result<(), SimError> {
        self.drain_store_buffer();
        self.commit()?;
        self.writeback();
        self.issue();
        self.fetch();
        self.cycle += 1;
        let stalled_cycles = self.cycle - self.last_commit_cycle;
        if stalled_cycles > self.cfg.deadlock_cycles {
            return Err(SimError::Deadlock { stalled_cycles, snapshot: self.snapshot() });
        }
        if self.cfg.check.invariants
            && self.cycle.is_multiple_of(self.cfg.check.invariant_interval.max(1))
        {
            self.stats.invariant_audits += 1;
            if let Err(description) = self.audit_invariants() {
                return Err(SimError::Invariant { description, snapshot: self.snapshot() });
            }
        }
        Ok(())
    }

    #[inline]
    fn rob_index(&self, token: u64) -> usize {
        debug_assert!(token >= self.rob_head_token);
        (token - self.rob_head_token) as usize
    }

    #[inline]
    fn uop(&self, token: u64) -> &Uop {
        &self.rob[self.rob_index(token)]
    }

    /// Number of in-flight stores with `lo < token < hi`. The SQ is
    /// token-sorted, so two binary searches answer the distance counts
    /// that used to be linear filters.
    #[inline]
    fn sq_between(&self, lo: u64, hi: u64) -> u32 {
        let younger = self.sq_tokens.partition_point(|&t| t < hi);
        let older = self.sq_tokens.partition_point(|&t| t <= lo);
        (younger - older) as u32
    }

    fn store_done(&self, token: u64) -> bool {
        if token < self.rob_head_token {
            return true; // already committed
        }
        let idx = (token - self.rob_head_token) as usize;
        match self.rob.get(idx) {
            Some(u) => u.completed,
            None => true, // squashed or never existed: nothing to wait for
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn drain_store_buffer(&mut self) {
        let mut drained = 0;
        while drained < self.cfg.ports.store {
            match self.sb_drains.front() {
                Some(&done) if done <= self.cycle => {
                    self.sb_drains.pop_front();
                    drained += 1;
                }
                _ => break,
            }
        }
    }

    fn commit(&mut self) -> Result<(), SimError> {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed {
                break;
            }
            if head.class == ExecClass::Load {
                if let Some(v) = head.violation {
                    self.commit_violation(v);
                    break;
                }
                // Fault injection: pretend a clean head load mis-speculated,
                // forcing the lazy squash-and-refetch path with (possibly)
                // garbage training. Recovery must be architecturally exact.
                let (pc, arch_seq) = (head.pc, head.arch_seq);
                if self.injector.as_mut().is_some_and(|i| i.spurious_violation(arch_seq)) {
                    let v = PendingViolation {
                        store_pc: pc,
                        store_token: self.rob_head_token.saturating_sub(1),
                        store_distance: 0,
                        history_len: 0,
                    };
                    self.commit_violation(v);
                    break;
                }
            }
            self.commit_one()?;
            if self.halted {
                break;
            }
        }
        Ok(())
    }

    /// Lazy squash: the head load was mispeculated; train, squash from the
    /// load (inclusive) and re-fetch it.
    fn commit_violation(&mut self, v: PendingViolation) {
        self.stats.violations += 1;
        let head = self.rob.front().expect("head exists");
        let (block, index) = (head.block, head.index);
        let load_pc = head.pc;
        let load_token = head.token;
        let prior = head.prediction;
        let hist_cp = head.hist_cp;
        let ras_cp = head.ras_cp;
        let ghr = head.ghr_at_fetch;
        let path_ghr = head.path_ghr_at_fetch;
        let arch_seq = head.arch_seq;

        if self.cfg.train_point == TrainPoint::Commit {
            self.predictor.train_violation(&Violation {
                load_pc,
                store_pc: v.store_pc,
                store_distance: v.store_distance,
                history_len: v.history_len,
                history: &self.commit_hist,
                load_token,
                store_token: v.store_token,
                prior,
            });
        }

        // Squash everything, including the load itself, and restore the
        // speculative front-end state to just before the load's fetch.
        self.squash_from(load_token, Redirect::At((block, index)));
        self.spec_hist.restore(hist_cp);
        self.ras.restore(ras_cp);
        self.cond_ghr = ghr;
        self.path_ghr = path_ghr;
        self.next_arch_seq = arch_seq;
        self.last_commit_cycle = self.cycle; // forward progress: re-execution
    }

    fn commit_one(&mut self) -> Result<(), SimError> {
        let u = self.rob.pop_front().expect("head exists");
        self.rob_head_token += 1;
        self.stats.committed += 1;
        self.last_commit_cycle = self.cycle;
        if let Some(log) = &mut self.commit_log {
            log.push(CommitRecord {
                arch_seq: u.arch_seq,
                pc: u.pc,
                dst_value: u.dst.and(u.result),
                eff_addr: u.addr,
            });
        }

        // Architectural register update + RAT release.
        if let Some(dst) = u.dst {
            if let Some(r) = u.result {
                self.arch_regs[dst.index()] = r;
            }
            if self.rat[dst.index()] == Some(u.token) {
                self.rat[dst.index()] = None;
            }
            self.reg_writers[dst.index()] -= 1;
        }

        match u.class {
            ExecClass::Store => {
                self.stats.committed_stores += 1;
                let addr = u.addr.expect("store executed");
                let data = u.store_data.expect("store executed");
                let size = match u.mem_size {
                    1 => MemSize::B1,
                    2 => MemSize::B2,
                    4 => MemSize::B4,
                    _ => MemSize::B8,
                };
                self.memory_state.write(addr, size, data);
                debug_assert_eq!(self.sq_tokens.front(), Some(&u.token));
                self.sq_tokens.pop_front();
                // The store occupies its SQ/SB slot until written to L1D.
                let done = self.mem.access(AccessKind::Store, u.pc, addr, self.cycle);
                self.sb_drains.push_back(done);
            }
            ExecClass::Load => {
                self.stats.committed_loads += 1;
                debug_assert_eq!(self.lq_tokens.front(), Some(&u.token));
                self.lq_tokens.pop_front();
                debug_assert_eq!(
                    self.commit_hist.count(),
                    u.div_count,
                    "commit-time history must align with the load's decode counter"
                );
                if u.forward_source.is_some() {
                    self.stats.forwarded_loads += 1;
                }
                let waited_correct = match &u.wait {
                    WaitSpec::None => false,
                    WaitSpec::One(t) => u.forward_source == Some(*t),
                    WaitSpec::Many(ts) => u.forward_source.is_some_and(|f| ts.as_slice().contains(&f)),
                    WaitSpec::AllOlder => u.forward_source.is_some(),
                };
                if u.wait != WaitSpec::None && u.mdp_delayed && !waited_correct {
                    self.stats.false_dependences += 1;
                }
                if u.mdp_delayed {
                    self.stats.mdp_stalled_loads += 1;
                }
                // Fault injection: poison the predictor with a fabricated
                // violation. Later predictions go wrong, but wrong
                // predictions may only cost cycles, never correctness.
                if self.injector.as_mut().is_some_and(|i| i.corrupt_training()) {
                    let d = self.injector.as_mut().expect("injected").small_distance();
                    self.predictor.train_violation(&Violation {
                        load_pc: u.pc,
                        store_pc: u.pc ^ 0x40,
                        store_distance: d,
                        history_len: 0,
                        history: &self.commit_hist,
                        load_token: u.token,
                        store_token: u.token.wrapping_sub(1),
                        prior: u.prediction,
                    });
                }
                self.predictor.load_committed(&LoadCommit {
                    pc: u.pc,
                    prediction: u.prediction,
                    actual_distance: u.forward_distance,
                    waited_correct,
                    history: &self.commit_hist,
                });
            }
            ExecClass::Branch => {
                let inst = self.program.inst(u.block, u.index);
                if matches!(inst.op, Op::CondBranch { .. }) {
                    self.stats.committed_cond_branches += 1;
                    if u.was_mispredicted {
                        self.stats.branch_mispredicts += 1;
                    }
                } else if u.was_mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
                if let Some(ev) = u.actual_event {
                    self.commit_hist.push(ev);
                }
                if matches!(inst.op, Op::Ret) && u.actual_next.is_none() {
                    let target = u.actual_event.map_or(0, |e| e.target);
                    return Err(SimError::CorruptRet {
                        pc: u.pc,
                        target,
                        snapshot: self.snapshot(),
                    });
                }
            }
            _ => {}
        }

        // Lockstep: this commit must match the reference emulator's next
        // retired instruction exactly.
        if let Some(checker) = &mut self.checker {
            let result =
                checker.check_commit(u.arch_seq, u.pc, u.dst.and(u.result), u.addr, u.store_data);
            if let Err(report) = result {
                return Err(SimError::Divergence { report, snapshot: self.snapshot() });
            }
        }

        if u.is_halt {
            self.halted = true;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writeback / resolution
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        // Pop due completions from the min-heap instead of scanning the
        // ROB. Every op latency is ≥ 1, so a uop issued at cycle `c` is
        // due strictly after `c` and each live entry surfaces exactly at
        // its `complete_at` cycle; ties complete in token order — the
        // same order the old full scan processed them.
        while let Some(&Reverse((done, token))) = self.completions.peek() {
            if done > self.cycle {
                break;
            }
            self.completions.pop();
            // Squashes leave entries behind, and squashed tokens are
            // reused by refetch: the entry is stale unless it names a
            // live, issued, not-yet-completed uop due exactly now.
            if token < self.rob_head_token {
                continue;
            }
            let i = (token - self.rob_head_token) as usize;
            let Some(u) = self.rob.get(i) else { continue };
            if !u.issued || u.completed || u.complete_at != done {
                continue;
            }
            self.rob[i].completed = true;
            match self.rob[i].class {
                ExecClass::Branch => {
                    // On a squash everything younger is gone; their heap
                    // entries go stale and are skipped above.
                    let _ = self.resolve_branch(i);
                }
                ExecClass::Store => self.store_search_lq(i),
                _ => {}
            }
        }
    }

    /// Resolves a completed branch; returns true if it squashed.
    fn resolve_branch(&mut self, i: usize) -> bool {
        let u = &self.rob[i];
        let token = u.token;
        let pc = u.pc;
        let inst = self.program.inst(u.block, u.index);
        let (predicted_next, actual_next) = (u.predicted_next, u.actual_next);
        let (ghr, actual_taken) = (u.ghr_at_fetch, u.actual_taken);
        let path_ghr = u.path_ghr_at_fetch;
        let (hist_cp, ras_cp) = (u.hist_cp, u.ras_cp);
        let actual_event = u.actual_event;
        let arch_seq = u.arch_seq;

        // Train the direction / target predictors at resolution.
        match &inst.op {
            Op::CondBranch { .. } => self.direction.update(pc, ghr, actual_taken),
            Op::IndirectJump(_) | Op::Ret => {
                if let Some((b, _)) = actual_next {
                    self.indirect.update(pc, path_ghr, b);
                }
            }
            _ => {}
        }

        if predicted_next == actual_next {
            return false;
        }
        self.rob[i].was_mispredicted = true;

        // Eager squash of everything younger; restore speculative state to
        // just after this branch with its *actual* outcome applied.
        let redirect = match actual_next {
            Some(next) => Redirect::At(next),
            None => Redirect::Stalled, // corrupt wrong-path Ret
        };
        self.squash_from(token + 1, redirect);
        self.spec_hist.restore(hist_cp);
        self.ras.restore(ras_cp);
        self.cond_ghr = ghr;
        self.path_ghr = path_ghr;
        match &inst.op {
            Op::CondBranch { .. } => {
                self.cond_ghr = (ghr << 1) | u128::from(actual_taken);
                self.path_ghr = (path_ghr << 1) | u128::from(actual_taken);
                if let Some(ev) = actual_event {
                    self.spec_hist.push(ev);
                }
            }
            Op::IndirectJump(_) | Op::Ret => {
                if matches!(inst.op, Op::Ret) {
                    let _ = self.ras.pop();
                }
                if let Some(ev) = actual_event {
                    self.path_ghr = (path_ghr << 5) | u128::from(ev.target & 0x1f);
                    self.spec_hist.push(ev);
                }
            }
            Op::Call(_) => {
                // Direct calls cannot mispredict.
                unreachable!("direct call mispredicted");
            }
            _ => {}
        }
        self.next_arch_seq = arch_seq + 1;
        true
    }

    /// A store has resolved its address: search the LQ for younger,
    /// already-executed loads that overlap (the memory-order check).
    fn store_search_lq(&mut self, store_i: usize) {
        let s = &self.rob[store_i];
        let store_token = s.token;
        let store_pc = s.pc;
        let store_addr = s.addr.expect("store executed");
        let store_size = s.mem_size;
        let store_div_count = s.div_count;

        self.predictor.store_executed(store_pc, store_token);

        // Only loads younger than the store can violate: search the LQ
        // suffix past the store's token instead of the whole ROB tail.
        let mut violations = std::mem::take(&mut self.scratch_violations);
        violations.clear();
        let start = self.lq_tokens.partition_point(|&t| t < store_token);
        for qi in start..self.lq_tokens.len() {
            let ltok = self.lq_tokens[qi];
            let l = &self.rob[self.rob_index(ltok)];
            debug_assert_eq!(l.class, ExecClass::Load);
            if !l.issued {
                continue;
            }
            let Some(laddr) = l.addr else { continue };
            if !ranges_overlap(laddr, l.mem_size, store_addr, store_size) {
                continue;
            }
            // §IV-A1 forwarding filter (Fig. 3c): if the load's data came
            // from a store *younger* than this one, the load is correct.
            if self.cfg.forwarding_filter {
                if let Some(f) = l.forward_source {
                    if f > store_token {
                        self.stats.filtered_violations += 1;
                        continue;
                    }
                }
            }
            if l.forward_source == Some(store_token) {
                continue; // already got this store's data
            }
            violations.push(ltok);
        }

        let eager = self.cfg.mem_squash == MemSquashPolicy::Eager;
        for &load_token in &violations {
            let j = (load_token - self.rob_head_token) as usize;
            if eager && j >= self.rob.len() {
                break; // an earlier eager squash removed the rest
            }
            let (load_pc, load_div, prior) = {
                let l = &self.rob[j];
                (l.pc, l.div_count, l.prediction)
            };
            let store_distance = self.sq_between(store_token, load_token);
            // N: divergent branches between the store and the load. The
            // paper's predictors collect N+1 history entries (the extra
            // one is the divergent branch previous to the store).
            let history_len = (load_div - store_div_count) as u32;
            let keep = match self.rob[j].violation {
                Some(existing) => store_token > existing.store_token,
                None => true,
            };
            if keep {
                self.rob[j].violation =
                    Some(PendingViolation { store_pc, store_token, store_distance, history_len });
                if self.cfg.train_point == TrainPoint::Detect || eager {
                    // Train with the load's decode-time history by
                    // temporarily rewinding the speculative register.
                    let saved = self.spec_hist.checkpoint();
                    self.spec_hist.restore(self.rob[j].hist_cp);
                    self.predictor.train_violation(&Violation {
                        load_pc,
                        store_pc,
                        store_distance,
                        history_len,
                        history: &self.spec_hist,
                        load_token,
                        store_token,
                        prior,
                    });
                    self.spec_hist.restore(saved);
                }
                if eager {
                    // Immediate recovery: squash from the load (inclusive)
                    // and re-fetch it. Younger flagged loads vanish with it.
                    self.stats.violations += 1;
                    let l = &self.rob[j];
                    let (block, index) = (l.block, l.index);
                    let (hist_cp, ras_cp, ghr, pghr, arch_seq) =
                        (l.hist_cp, l.ras_cp, l.ghr_at_fetch, l.path_ghr_at_fetch, l.arch_seq);
                    self.squash_from(load_token, Redirect::At((block, index)));
                    self.spec_hist.restore(hist_cp);
                    self.ras.restore(ras_cp);
                    self.cond_ghr = ghr;
                    self.path_ghr = pghr;
                    self.next_arch_seq = arch_seq;
                    break;
                }
            }
        }
        violations.clear();
        self.scratch_violations = violations;
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn wait_satisfied(&self, i: usize) -> bool {
        let u = &self.rob[i];
        match &u.wait {
            WaitSpec::None => true,
            WaitSpec::One(t) => self.store_done(*t),
            WaitSpec::Many(ts) => ts.as_slice().iter().all(|&t| self.store_done(t)),
            WaitSpec::AllOlder => {
                let token = u.token;
                self.sq_tokens.iter().take_while(|&&t| t < token).all(|&t| self.store_done(t))
            }
        }
    }

    fn operand_ready(&self, producer: Option<u64>) -> bool {
        match producer {
            None => true,
            Some(t) => t < self.rob_head_token || self.uop(t).completed,
        }
    }

    fn operand_value(&self, producer: Option<u64>, reg: Option<Reg>) -> u64 {
        let Some(r) = reg else { return 0 };
        if r.is_zero() {
            return 0;
        }
        match producer {
            Some(t) if t >= self.rob_head_token => {
                self.uop(t).result.expect("completed producer has a result")
            }
            _ => self.arch_regs[r.index()],
        }
    }

    fn issue(&mut self) {
        let mut int_ports = self.cfg.ports.int;
        let mut fp_ports = self.cfg.ports.fp;
        let mut load_ports = self.cfg.ports.load;
        let mut store_ports = self.cfg.ports.store;
        let mut branch_ports = self.cfg.ports.branch;

        // Walk only the unissued uops, oldest first — the same order the
        // old full-ROB scan visited them in.
        let mut qi = 0;
        while qi < self.iq_tokens.len() {
            if int_ports == 0
                && fp_ports == 0
                && load_ports == 0
                && store_ports == 0
                && branch_ports == 0
            {
                break; // every port consumed; nothing else can issue
            }
            let token = self.iq_tokens[qi];
            let i = self.rob_index(token);
            let u = &self.rob[i];
            debug_assert!(!u.issued);
            if self.cycle < u.issue_ready_at {
                // Front-end readiness is monotone along the age-ordered
                // queue (fetch order), so nothing younger is ready either.
                break;
            }
            let class = u.class;
            let (p0, p1) = (u.src_producers[0], u.src_producers[1]);
            let port = match class {
                ExecClass::IntAlu | ExecClass::IntMul | ExecClass::IntDiv => &mut int_ports,
                ExecClass::Fp => &mut fp_ports,
                ExecClass::Load => &mut load_ports,
                ExecClass::Store => &mut store_ports,
                ExecClass::Branch => &mut branch_ports,
            };
            if *port == 0 {
                qi += 1;
                continue;
            }
            if !(self.operand_ready(p0) && self.operand_ready(p1)) {
                qi += 1;
                continue;
            }
            if !self.wait_satisfied(i) {
                // Operands are ready but the dependence prediction holds
                // the access back: an MDP-induced delay.
                self.rob[i].mdp_delayed = true;
                qi += 1;
                continue;
            }
            *port -= 1;
            self.execute_at_issue(i);
            self.rob[i].issued = true;
            self.iq_tokens.remove(qi); // `qi` now names the next candidate
        }
    }

    /// Computes the uop's result (value-accurate) and completion time.
    fn execute_at_issue(&mut self, i: usize) {
        let u = &self.rob[i];
        let inst: &Inst = self.program.inst(u.block, u.index);
        let lhs = self.operand_value(u.src_producers[0], u.srcs[0]);
        let rhs = match u.srcs[1] {
            Some(_) => self.operand_value(u.src_producers[1], u.srcs[1]),
            None => u.imm as u64,
        };
        let latency = u64::from(u.class.latency());
        let token = u.token;
        let pc = u.pc;
        let imm = u.imm;

        let mut result = None;
        let mut complete_at = self.cycle + latency;
        let mut addr = None;
        let mut store_data = None;
        let mut actual_next = None;
        let mut actual_event = None;
        let mut actual_taken = false;
        let mut forward_source = None;
        let mut forward_distance = None;
        let mut fully_forwarded = false;

        let seq_next = self.sequential_next(u.block, u.index);

        match &inst.op {
            Op::Load(size) => {
                let a = lhs.wrapping_add(imm as u64);
                let (value, fsrc, full) = self.speculative_load(token, a, size.bytes());
                result = Some(value);
                addr = Some(a);
                forward_source = fsrc;
                fully_forwarded = full;
                forward_distance = fsrc.map(|f| self.sq_between(f, token));
                let done = self.mem.access(AccessKind::Load, pc, a, self.cycle);
                let l1d_hit = self.cycle + self.cfg.memory.l1d.hit_latency;
                complete_at = if full { l1d_hit } else { done };
            }
            Op::Store(size) => {
                addr = Some(lhs.wrapping_add(imm as u64));
                store_data = Some(size.truncate(rhs));
                complete_at = self.cycle + 1;
            }
            Op::CondBranch { kind, taken } => {
                actual_taken = kind.eval(lhs, rhs);
                let dest = if actual_taken {
                    Some((*taken, 0))
                } else {
                    seq_next
                };
                actual_next = dest;
                let target = dest.map_or(0, |(b, idx)| self.program.pc(b, idx));
                actual_event =
                    Some(DivergentEvent { indirect: false, taken: actual_taken, target });
            }
            Op::Jump(t) => actual_next = Some((*t, 0)),
            Op::IndirectJump(ts) => {
                let t = ts[(lhs as usize) % ts.len()];
                actual_next = Some((t, 0));
                actual_event = Some(DivergentEvent {
                    indirect: true,
                    taken: true,
                    target: self.program.block_pc(t),
                });
                actual_taken = true;
            }
            Op::Call(_t) => {
                let ret_to = seq_next.map(|(b, _)| b).expect("call has fallthrough");
                result = Some(u64::from(ret_to.0));
                actual_next = Some((self.call_target(inst), 0));
            }
            Op::Ret => {
                if lhs < self.program.num_blocks() as u64 {
                    let t = BlockId(lhs as u32);
                    actual_next = Some((t, 0));
                    actual_event = Some(DivergentEvent {
                        indirect: true,
                        taken: true,
                        target: self.program.block_pc(t),
                    });
                } else {
                    // Corrupt (wrong-path) return target.
                    actual_next = None;
                    actual_event =
                        Some(DivergentEvent { indirect: true, taken: true, target: lhs });
                }
                actual_taken = true;
            }
            Op::Halt => {}
            op => result = compute_value(op, lhs, rhs),
        }

        // The heap-driven writeback depends on completions landing
        // strictly in the future (see `writeback`).
        debug_assert!(complete_at > self.cycle, "zero-latency completion");
        self.completions.push(Reverse((complete_at, token)));

        let u = &mut self.rob[i];
        u.result = result;
        u.complete_at = complete_at;
        u.addr = addr;
        u.store_data = store_data;
        u.actual_next = actual_next;
        u.actual_event = actual_event;
        u.actual_taken = actual_taken;
        u.forward_source = forward_source;
        u.forward_distance = forward_distance;
        u.fully_forwarded = fully_forwarded;
    }

    fn call_target(&self, inst: &Inst) -> BlockId {
        match inst.op {
            Op::Call(t) => t,
            _ => unreachable!("call_target on non-call"),
        }
    }

    /// Byte-accurate speculative load: each byte comes from the youngest
    /// older *executed* store in the SQ that wrote it, falling back to
    /// committed memory. Returns `(value, youngest forwarding store,
    /// fully_forwarded)`.
    ///
    /// Walks the SQ prefix older than the load from youngest to oldest,
    /// claiming not-yet-filled bytes as it goes — cost scales with the SQ
    /// occupancy (not ROB × bytes) and the walk stops as soon as every
    /// byte is forwarded. Youngest-first claiming picks the same per-byte
    /// provider the old youngest-token maximum did.
    fn speculative_load(&self, load_token: u64, addr: u64, bytes: u64) -> (u64, Option<u64>, bool) {
        debug_assert!(bytes <= 8, "loads are at most 8 bytes");
        let full_mask: u8 = if bytes >= 8 { 0xff } else { (1u8 << bytes) - 1 };
        let mut value = 0u64;
        let mut forward: Option<u64> = None;
        let mut filled: u8 = 0;
        let older = self.sq_tokens.partition_point(|&t| t < load_token);
        for qi in (0..older).rev() {
            let stok = self.sq_tokens[qi];
            let s = &self.rob[self.rob_index(stok)];
            debug_assert_eq!(s.class, ExecClass::Store);
            if !s.issued {
                continue;
            }
            let Some(saddr) = s.addr else { continue };
            if !ranges_overlap(addr, bytes, saddr, s.mem_size) {
                continue;
            }
            let data = s.store_data.expect("issued store");
            for b in 0..bytes {
                if filled & (1 << b) != 0 {
                    continue;
                }
                let byte_addr = addr.wrapping_add(b);
                if ranges_overlap(byte_addr, 1, saddr, s.mem_size) {
                    let offset = byte_addr.wrapping_sub(saddr);
                    value |= u64::from((data >> (8 * offset)) as u8) << (8 * b);
                    filled |= 1 << b;
                    forward = Some(forward.map_or(stok, |f: u64| f.max(stok)));
                }
            }
            if filled == full_mask {
                break;
            }
        }
        let all_forwarded = filled == full_mask;
        if filled == 0 {
            // No store forwarded anything (the common case): one
            // line-level read instead of a hash probe per byte.
            value = self.memory_state.read_bytes(addr, bytes);
        } else {
            for b in 0..bytes {
                if filled & (1 << b) == 0 {
                    let byte_addr = addr.wrapping_add(b);
                    value |= u64::from(self.memory_state.read_byte(byte_addr)) << (8 * b);
                }
            }
        }
        (value, forward, all_forwarded && bytes > 0)
    }

    // ------------------------------------------------------------------
    // Fetch / rename / dispatch
    // ------------------------------------------------------------------

    fn sequential_next(&self, block: BlockId, index: usize) -> Option<(BlockId, usize)> {
        let bb = self.program.block(block);
        if index + 1 < bb.insts.len() {
            Some((block, index + 1))
        } else {
            bb.fallthrough.map(|f| (f, 0))
        }
    }

    fn fetch(&mut self) {
        if self.halt_fetched || self.cycle < self.fetch_stalled_until {
            return;
        }
        // Copy the program reference out of `self` so the instruction
        // borrow is independent of the `&mut self` calls below — this is
        // what lets `fetch_one` take `&Inst` instead of a clone (an
        // `IndirectJump`'s boxed target list made that clone allocate).
        let program = self.program;
        for _ in 0..self.cfg.fetch_width {
            let Some((block, index)) = self.cursor else { return };
            let inst = program.inst(block, index);

            // Structural resources.
            if self.rob.len() >= self.cfg.rob_size || self.iq_tokens.len() >= self.cfg.iq_size {
                return;
            }
            if inst.op.is_load() && self.lq_tokens.len() >= self.cfg.lq_size {
                return;
            }
            if inst.op.is_store()
                && self.sq_tokens.len() + self.sb_drains.len() >= self.cfg.sq_size
            {
                return;
            }

            // Instruction cache.
            let pc = self.program.pc(block, index);
            let line = line_of(pc);
            if self.cur_fetch_line != Some(line) {
                let done = self.mem.access(AccessKind::Fetch, pc, pc, self.cycle);
                self.cur_fetch_line = Some(line);
                let hit = self.cycle + self.cfg.memory.l1i.hit_latency;
                if done > hit {
                    self.fetch_stalled_until = done;
                    return;
                }
            }

            let redirected = self.fetch_one(block, index, inst);
            if redirected || self.halt_fetched {
                return; // taken control flow ends the fetch group
            }
        }
    }

    /// Fetches, renames and dispatches one instruction. Returns true if
    /// the fetch group must end (taken control transfer).
    fn fetch_one(&mut self, block: BlockId, index: usize, inst: &Inst) -> bool {
        let pc = self.program.pc(block, index);
        let token = self.next_token;
        self.next_token += 1;
        let arch_seq = self.next_arch_seq;
        self.next_arch_seq += 1;

        let hist_cp = self.spec_hist.checkpoint();
        let ras_cp = self.ras.checkpoint();
        let ghr_at_fetch = self.cond_ghr;
        let path_ghr_at_fetch = self.path_ghr;
        let div_count = self.spec_hist.count();

        let seq_next = self.sequential_next(block, index);
        let mut predicted_next = seq_next;

        match &inst.op {
            Op::CondBranch { taken, .. } => {
                let t = self.direction.predict(pc, self.cond_ghr);
                let dest = if t { Some((*taken, 0)) } else { seq_next };
                let target = dest.map_or(0, |(b, i)| self.program.pc(b, i));
                self.spec_hist.push(DivergentEvent { indirect: false, taken: t, target });
                self.cond_ghr = (self.cond_ghr << 1) | u128::from(t);
                self.path_ghr = (self.path_ghr << 1) | u128::from(t);
                predicted_next = dest;
            }
            Op::Jump(t) => predicted_next = Some((*t, 0)),
            Op::Call(t) => {
                let ret_to = seq_next.map(|(b, _)| b).expect("call has fallthrough");
                self.ras.push(ret_to);
                predicted_next = Some((*t, 0));
            }
            Op::Ret => {
                let pred = self.ras.pop().unwrap_or(BlockId(0));
                let target = self.program.block_pc(pred);
                self.spec_hist.push(DivergentEvent { indirect: true, taken: true, target });
                self.path_ghr = (self.path_ghr << 5) | u128::from(target & 0x1f);
                predicted_next = Some((pred, 0));
            }
            Op::IndirectJump(ts) => {
                let pred = self.indirect.predict(pc, self.path_ghr).unwrap_or(ts[0]);
                let target = self.program.block_pc(pred);
                self.spec_hist.push(DivergentEvent { indirect: true, taken: true, target });
                self.path_ghr = (self.path_ghr << 5) | u128::from(target & 0x1f);
                predicted_next = Some((pred, 0));
            }
            Op::Halt => {
                self.halt_fetched = true;
                predicted_next = None;
            }
            _ => {}
        }

        // Rename.
        let mut src_producers = [None, None];
        for (k, sr) in [inst.src1, inst.src2].into_iter().enumerate() {
            if let Some(r) = sr {
                if !r.is_zero() {
                    src_producers[k] = self.rat[r.index()];
                }
            }
        }
        let prev_rat = inst.dst.and_then(|d| {
            let prev = self.rat[d.index()];
            self.rat[d.index()] = Some(token);
            prev
        });

        // Memory dependence prediction hooks, in program order.
        let mut prediction = PredictionOutcome::none();
        let mut wait = WaitSpec::None;
        if inst.op.is_load() {
            let q = LoadQuery {
                pc,
                token,
                history: &self.spec_hist,
                arch_seq,
                older_stores: self.sq_tokens.len() as u32,
            };
            prediction = self.predictor.predict_load(&q);
            // Fault injection: corrupt the fresh prediction (drop it or
            // mis-aim its distance) before the wait is resolved.
            if let Some(injector) = &mut self.injector {
                if let Some(dep) = injector.mangle_prediction(prediction.dep) {
                    prediction.dep = dep;
                }
            }
            wait = self.resolve_wait(prediction.dep);
            self.lq_tokens.push_back(token);
        } else if inst.op.is_store() {
            let dep = self
                .predictor
                .store_dispatched(&StoreQuery { pc, token, history: &self.spec_hist });
            if let Some(t) = dep {
                // Guard against stale predictor tokens (reused after a
                // squash): only wait on a live, older, in-flight store.
                if t < token && self.sq_tokens.binary_search(&t).is_ok() && !self.store_done(t) {
                    wait = WaitSpec::One(t);
                }
            }
            self.sq_tokens.push_back(token);
        }

        let mem_size = match inst.op {
            Op::Load(s) | Op::Store(s) => s.bytes(),
            _ => 0,
        };

        let uop = Uop {
            token,
            arch_seq,
            block,
            index,
            pc,
            class: inst.class(),
            dst: inst.dst,
            srcs: [inst.src1, inst.src2],
            src_producers,
            imm: inst.imm,
            is_halt: matches!(inst.op, Op::Halt),
            issue_ready_at: self.cycle + u64::from(self.cfg.frontend_latency),
            issued: false,
            complete_at: u64::MAX,
            completed: false,
            result: None,
            prev_rat,
            hist_cp,
            ras_cp,
            ghr_at_fetch,
            path_ghr_at_fetch,
            div_count,
            predicted_next,
            actual_next: None,
            actual_event: None,
            actual_taken: false,
            was_mispredicted: false,
            mem_size,
            addr: None,
            store_data: None,
            forward_source: None,
            forward_distance: None,
            fully_forwarded: false,
            violation: None,
            prediction,
            wait,
            mdp_delayed: false,
        };
        if let Some(d) = inst.dst {
            self.reg_writers[d.index()] += 1;
        }
        self.rob.push_back(uop);
        self.iq_tokens.push_back(token);
        self.cursor = predicted_next;

        predicted_next != seq_next
    }

    /// Maps a [`DepPrediction`] to the concrete store tokens to wait for,
    /// given the current speculative SQ contents.
    fn resolve_wait(&self, dep: DepPrediction) -> WaitSpec {
        let n = self.sq_tokens.len();
        let by_distance = |d: u32| -> Option<u64> {
            let d = d as usize;
            (d < n).then(|| self.sq_tokens[n - 1 - d])
        };
        match dep {
            DepPrediction::None => WaitSpec::None,
            DepPrediction::Distance(d) => match by_distance(d) {
                Some(t) if !self.store_done(t) => WaitSpec::One(t),
                _ => WaitSpec::None,
            },
            DepPrediction::StoreToken(t) => {
                if t >= self.rob_head_token
                    && self.sq_tokens.binary_search(&t).is_ok()
                    && !self.store_done(t)
                {
                    WaitSpec::One(t)
                } else {
                    WaitSpec::None
                }
            }
            DepPrediction::DistanceMask(mask) => {
                let mut ts = TokenList::new();
                let mut rest = mask;
                while rest != 0 {
                    let d = rest.trailing_zeros();
                    rest &= rest - 1;
                    if let Some(t) = by_distance(d) {
                        if !self.store_done(t) {
                            ts.push(t);
                        }
                    }
                }
                if ts.is_empty() {
                    WaitSpec::None
                } else {
                    WaitSpec::Many(ts)
                }
            }
            DepPrediction::AllOlder => {
                if n == 0 {
                    WaitSpec::None
                } else {
                    WaitSpec::AllOlder
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant audit
    // ------------------------------------------------------------------

    /// Checks the structural invariants the rest of the core relies on.
    /// Returns a description of the first violated one.
    ///
    /// Runs every [`CheckConfig::invariant_interval`] cycles when enabled;
    /// a failure means the pipeline state is already corrupt even if no
    /// committed value has diverged yet.
    fn audit_invariants(&self) -> Result<(), String> {
        // One pass over the ROB recounts, from scratch, everything the
        // incremental scoreboards claim — the O(1) structures the hot
        // path trusts inherit the integrity layer by being recomputed
        // and compared here.
        let mut unissued: Vec<u64> = Vec::new();
        let mut loads: Vec<u64> = Vec::new();
        let mut stores: Vec<u64> = Vec::new();
        let mut writers = [0u32; NUM_REGS];
        let mut youngest_writer: [Option<u64>; NUM_REGS] = [None; NUM_REGS];
        let mut last_ready = 0u64;
        for (i, u) in self.rob.iter().enumerate() {
            // ROB tokens are dense and ascending from the head (token -
            // head indexes the ROB; `rob_index` and `store_done` depend
            // on this).
            let expect = self.rob_head_token + i as u64;
            if u.token != expect {
                return Err(format!(
                    "ROB not token-dense: position {i} holds token {} (expected {expect})",
                    u.token
                ));
            }
            // Front-end readiness is monotone in age — the issue loop's
            // early exit is sound only if this holds.
            if u.issue_ready_at < last_ready {
                return Err(format!(
                    "issue_ready_at not monotone: token {} ready at {} after {}",
                    u.token, u.issue_ready_at, last_ready
                ));
            }
            last_ready = u.issue_ready_at;
            if !u.issued {
                unissued.push(u.token);
            }
            match u.class {
                ExecClass::Load => loads.push(u.token),
                ExecClass::Store => stores.push(u.token),
                _ => {}
            }
            if let Some(d) = u.dst {
                writers[d.index()] += 1;
                youngest_writer[d.index()] = Some(u.token);
            }
            // Every in-flight completion is represented in the heap
            // (otherwise the uop would never write back).
            if u.issued
                && !u.completed
                && !self.completions.iter().any(|&Reverse(e)| e == (u.complete_at, u.token))
            {
                return Err(format!(
                    "issued token {} (complete_at {}) missing from the completion heap",
                    u.token, u.complete_at
                ));
            }
        }
        // The scoreboards are exactly the recounted ROB subsequences.
        if !self.iq_tokens.iter().eq(unissued.iter()) {
            return Err(format!(
                "IQ {:?} != unissued uops {:?} in ROB order",
                self.iq_tokens, unissued
            ));
        }
        if !self.lq_tokens.iter().eq(loads.iter()) {
            return Err(format!(
                "LQ {:?} != in-flight loads {:?} in ROB order",
                self.lq_tokens, loads
            ));
        }
        if !self.sq_tokens.iter().eq(stores.iter()) {
            return Err(format!(
                "SQ {:?} != in-flight stores {:?} in ROB order",
                self.sq_tokens, stores
            ));
        }
        if self.reg_writers != writers {
            let r = (0..NUM_REGS)
                .find(|&r| self.reg_writers[r] != writers[r])
                .expect("some register differs");
            return Err(format!(
                "reg_writers[r{r}] = {} but {} uops in the ROB write r{r}",
                self.reg_writers[r], writers[r]
            ));
        }
        // Structural capacities hold.
        if self.rob.len() > self.cfg.rob_size {
            return Err(format!("ROB over capacity: {} > {}", self.rob.len(), self.cfg.rob_size));
        }
        if self.iq_tokens.len() > self.cfg.iq_size {
            return Err(format!("IQ over capacity: {} > {}", self.iq_tokens.len(), self.cfg.iq_size));
        }
        if self.lq_tokens.len() > self.cfg.lq_size {
            return Err(format!("LQ over capacity: {} > {}", self.lq_tokens.len(), self.cfg.lq_size));
        }
        if self.sq_tokens.len() + self.sb_drains.len() > self.cfg.sq_size {
            return Err(format!(
                "SQ+SB over capacity: {} + {} > {}",
                self.sq_tokens.len(),
                self.sb_drains.len(),
                self.cfg.sq_size
            ));
        }
        // Every RAT entry names the youngest surviving writer of its
        // register. A squash can rewind an entry to a producer that has
        // since committed — rename reads that as architectural state, so
        // it is legal, but then no in-flight writer may exist (a younger
        // surviving rename would own the entry).
        for (r, &rat_entry) in self.rat.iter().enumerate() {
            let Some(t) = rat_entry else { continue };
            if t < self.rob_head_token {
                if let Some(w) = youngest_writer[r] {
                    return Err(format!(
                        "RAT[r{r}] names committed token {t} but token {w} writes r{r} in flight"
                    ));
                }
                continue;
            }
            let idx = (t - self.rob_head_token) as usize;
            let Some(u) = self.rob.get(idx) else {
                return Err(format!("RAT[r{r}] names token {t} beyond the ROB tail"));
            };
            if u.dst.map(|d| d.index()) != Some(r) {
                return Err(format!(
                    "RAT[r{r}] names token {t}, whose destination is {:?}",
                    u.dst
                ));
            }
            if youngest_writer[r] != Some(t) {
                return Err(format!(
                    "RAT[r{r}] names token {t} but token {:?} is the youngest writer of r{r}",
                    youngest_writer[r]
                ));
            }
        }
        // The fetch cursor points inside the program.
        if let Some((b, i)) = self.cursor {
            if i >= self.program.block(b).insts.len() {
                return Err(format!("fetch cursor ({b:?}, {i}) is past the end of its block"));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Removes every uop with `token >= boundary` from the pipeline,
    /// unwinding the RAT, and redirects fetch.
    fn squash_from(&mut self, boundary: u64, redirect: Redirect) {
        while let Some(u) = self.rob.back() {
            if u.token < boundary {
                break;
            }
            let u = self.rob.pop_back().expect("non-empty");
            if let Some(d) = u.dst {
                self.rat[d.index()] = u.prev_rat;
                self.reg_writers[d.index()] -= 1;
            }
            self.stats.squashed_uops += 1;
        }
        // Tokens index the ROB (token - head == position), so the next
        // token restarts at the squash boundary to keep the range dense.
        self.next_token = boundary.max(self.rob_head_token);
        // The scoreboards are token-sorted, so the squashed tokens are
        // exactly their suffixes. (Stale completion-heap entries are
        // detected at pop time instead — see `writeback`.)
        truncate_from(&mut self.iq_tokens, boundary);
        truncate_from(&mut self.lq_tokens, boundary);
        truncate_from(&mut self.sq_tokens, boundary);
        self.halt_fetched = false;

        match redirect {
            Redirect::At(target) => {
                self.cursor = Some(target);
                self.fetch_stalled_until = self.cycle + u64::from(self.cfg.redirect_penalty) + 1;
                self.cur_fetch_line = None;
            }
            Redirect::Stalled => {
                self.cursor = None;
            }
        }
    }
}

/// Drops every token `>= boundary` from a token-sorted queue.
fn truncate_from(q: &mut VecDeque<u64>, boundary: u64) {
    let keep = q.partition_point(|&t| t < boundary);
    q.truncate(keep);
}
