//! Core configuration and the processor-generation presets used by the
//! paper's Fig. 2 trend study.

use crate::check::CheckConfig;
use phast_mem::HierarchyConfig;

/// How memory-order violations squash the pipeline (§IV-A1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemSquashPolicy {
    /// Squash when the violating load reaches commit (the paper's
    /// evaluated configuration): only architecturally real violations
    /// cost a squash.
    Lazy,
    /// Squash as soon as the violation is detected (store-execute time):
    /// faster recovery, but wrong-path "violations" squash too. Training
    /// happens at detection in this mode (a commit-time update would need
    /// the §IV-A1 side buffer).
    Eager,
}

/// Which indirect-target predictor the front end uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndirectPredictorKind {
    /// A tagged last-target table (cheap, mispredicts polymorphic sites).
    LastTarget,
    /// ITTAGE: tagged geometric-history target prediction, as in the
    /// paper's TAGE-SC-L + ITTAGE front end.
    Ittage,
}

/// When the memory dependence predictor is trained after a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainPoint {
    /// Train as soon as the violation is detected (store-execute time).
    /// The paper found the state-of-the-art baselines prefer this.
    Detect,
    /// Train when the violating load reaches commit — the dependence is
    /// then guaranteed architectural. PHAST prefers this (§IV-A1).
    Commit,
}

/// Per-class execution port counts.
#[derive(Clone, Copy, Debug)]
pub struct Ports {
    /// Integer ALU ports (also multiply/divide).
    pub int: u32,
    /// Floating-point ports.
    pub fp: u32,
    /// Load ports (parallel LQ/L1D searches per cycle).
    pub load: u32,
    /// Store ports.
    pub store: u32,
    /// Branch-resolution ports.
    pub branch: u32,
}

impl Ports {
    /// Total port count (the paper quotes 12 for Alder Lake).
    pub fn total(&self) -> u32 {
        self.int + self.fp + self.load + self.store + self.branch
    }
}

/// Full configuration of the out-of-order core.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Instructions fetched (and dispatched) per cycle.
    pub fetch_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries (dispatched but not yet issued).
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue/store-buffer entries (dispatch until written back).
    pub sq_size: usize,
    /// Execution ports.
    pub ports: Ports,
    /// Cycles between fetch and earliest issue (front-end depth; also the
    /// bulk of the squash penalty).
    pub frontend_latency: u32,
    /// Extra cycles to redirect fetch after a squash.
    pub redirect_penalty: u32,
    /// Memory hierarchy parameters.
    pub memory: HierarchyConfig,
    /// When to train the memory dependence predictor.
    pub train_point: TrainPoint,
    /// When to squash on a memory-order violation.
    pub mem_squash: MemSquashPolicy,
    /// Indirect-target predictor flavour.
    pub indirect_predictor: IndirectPredictorKind,
    /// §IV-A1 forwarding filter: ignore "violations" from stores older
    /// than the store that forwarded the load's data (Fig. 3c). On for
    /// every headline result; Fig. 12 evaluates it off.
    pub forwarding_filter: bool,
    /// Safety net: abort if no instruction commits for this many cycles.
    pub deadlock_cycles: u64,
    /// Integrity machinery (lockstep checking, invariant audits, fault
    /// injection). The default is on in debug builds, off in release.
    pub check: CheckConfig,
}

impl CoreConfig {
    /// Alder-Lake-like core (paper Table I): 6-wide front end, 12 ports,
    /// 512/204/192/114 ROB/IQ/LQ/SB, 12-wide commit.
    pub fn alder_lake() -> CoreConfig {
        CoreConfig {
            name: "alderlake",
            fetch_width: 6,
            commit_width: 12,
            rob_size: 512,
            iq_size: 204,
            lq_size: 192,
            sq_size: 114,
            ports: Ports { int: 4, fp: 3, load: 3, store: 2, branch: 2 },
            frontend_latency: 12,
            redirect_penalty: 2,
            memory: HierarchyConfig::default(),
            train_point: TrainPoint::Detect,
            mem_squash: MemSquashPolicy::Lazy,
            indirect_predictor: IndirectPredictorKind::Ittage,
            forwarding_filter: true,
            deadlock_cycles: 200_000,
            check: CheckConfig::default(),
        }
    }

    /// Nehalem-like core (2008): 4-wide, 128-entry ROB.
    pub fn nehalem() -> CoreConfig {
        use phast_mem::CacheConfig;
        CoreConfig {
            name: "nehalem",
            fetch_width: 4,
            commit_width: 4,
            rob_size: 128,
            iq_size: 36,
            lq_size: 48,
            sq_size: 32,
            ports: Ports { int: 3, fp: 1, load: 1, store: 1, branch: 1 },
            frontend_latency: 10,
            redirect_penalty: 2,
            memory: HierarchyConfig {
                l1i: CacheConfig { size_bytes: 32 * 1024, ways: 4, hit_latency: 4, mshrs: 16 },
                l1d: CacheConfig { size_bytes: 32 * 1024, ways: 8, hit_latency: 4, mshrs: 16 },
                l2: CacheConfig { size_bytes: 256 * 1024, ways: 8, hit_latency: 10, mshrs: 32 },
                l3: CacheConfig {
                    size_bytes: 8 * 1024 * 1024,
                    ways: 16,
                    hit_latency: 35,
                    mshrs: 32,
                },
                dram_latency: 120,
                prefetcher: Default::default(),
            },
            train_point: TrainPoint::Detect,
            mem_squash: MemSquashPolicy::Lazy,
            indirect_predictor: IndirectPredictorKind::Ittage,
            forwarding_filter: true,
            deadlock_cycles: 200_000,
            check: CheckConfig::default(),
        }
    }

    /// Haswell-like core (2013): 4-wide, 192-entry ROB.
    pub fn haswell() -> CoreConfig {
        use phast_mem::CacheConfig;
        CoreConfig {
            name: "haswell",
            fetch_width: 4,
            commit_width: 4,
            rob_size: 192,
            iq_size: 60,
            lq_size: 72,
            sq_size: 42,
            ports: Ports { int: 4, fp: 2, load: 2, store: 1, branch: 1 },
            frontend_latency: 11,
            redirect_penalty: 2,
            memory: HierarchyConfig {
                l1i: CacheConfig { size_bytes: 32 * 1024, ways: 8, hit_latency: 4, mshrs: 32 },
                l1d: CacheConfig { size_bytes: 32 * 1024, ways: 8, hit_latency: 4, mshrs: 32 },
                l2: CacheConfig { size_bytes: 256 * 1024, ways: 8, hit_latency: 12, mshrs: 32 },
                l3: CacheConfig {
                    size_bytes: 8 * 1024 * 1024,
                    ways: 16,
                    hit_latency: 34,
                    mshrs: 32,
                },
                dram_latency: 110,
                prefetcher: Default::default(),
            },
            train_point: TrainPoint::Detect,
            mem_squash: MemSquashPolicy::Lazy,
            indirect_predictor: IndirectPredictorKind::Ittage,
            forwarding_filter: true,
            deadlock_cycles: 200_000,
            check: CheckConfig::default(),
        }
    }

    /// Skylake-like core (2015): 5-wide, 224-entry ROB.
    pub fn skylake() -> CoreConfig {
        use phast_mem::CacheConfig;
        CoreConfig {
            name: "skylake",
            fetch_width: 5,
            commit_width: 6,
            rob_size: 224,
            iq_size: 97,
            lq_size: 72,
            sq_size: 56,
            ports: Ports { int: 4, fp: 2, load: 2, store: 1, branch: 2 },
            frontend_latency: 11,
            redirect_penalty: 2,
            memory: HierarchyConfig {
                l1i: CacheConfig { size_bytes: 32 * 1024, ways: 8, hit_latency: 4, mshrs: 32 },
                l1d: CacheConfig { size_bytes: 32 * 1024, ways: 8, hit_latency: 4, mshrs: 64 },
                l2: CacheConfig { size_bytes: 1024 * 1024, ways: 16, hit_latency: 13, mshrs: 64 },
                l3: CacheConfig {
                    size_bytes: 8 * 1024 * 1024,
                    ways: 16,
                    hit_latency: 34,
                    mshrs: 64,
                },
                dram_latency: 105,
                prefetcher: Default::default(),
            },
            train_point: TrainPoint::Detect,
            mem_squash: MemSquashPolicy::Lazy,
            indirect_predictor: IndirectPredictorKind::Ittage,
            forwarding_filter: true,
            deadlock_cycles: 200_000,
            check: CheckConfig::default(),
        }
    }

    /// All generation presets, oldest first (Fig. 2 x-axis).
    pub fn generations() -> Vec<CoreConfig> {
        vec![
            CoreConfig::nehalem(),
            CoreConfig::haswell(),
            CoreConfig::skylake(),
            CoreConfig::alder_lake(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alder_lake_matches_table_1() {
        let c = CoreConfig::alder_lake();
        assert_eq!(c.fetch_width, 6, "6-wide fetch and decode");
        assert_eq!(c.commit_width, 12, "12-wide commit");
        assert_eq!((c.rob_size, c.iq_size, c.lq_size, c.sq_size), (512, 204, 192, 114));
        assert_eq!(c.ports.load, 3, "3 load ports");
        assert_eq!(c.ports.store, 2, "2 store ports");
        assert_eq!(c.ports.total(), 14);
    }

    #[test]
    fn generations_grow_monotonically() {
        let gens = CoreConfig::generations();
        for w in gens.windows(2) {
            assert!(w[0].rob_size < w[1].rob_size, "ROB grows across generations");
            assert!(w[0].sq_size < w[1].sq_size, "SQ grows across generations");
        }
    }
}
