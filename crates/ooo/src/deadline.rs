//! Cooperative per-run watchdog: wall-clock deadlines and cancellation.
//!
//! A [`Deadline`] is a cheap token a caller plumbs into
//! [`Core::try_run_within`](crate::Core::try_run_within) (or
//! [`try_simulate_within`](crate::try_simulate_within)). The cycle loop
//! polls it on the existing cycle-ceiling path — once every
//! [`DEADLINE_CHECK_INTERVAL`] cycles, so the steady-state loop stays
//! allocation-free and the poll cost is amortized to nothing — and
//! converts an expired deadline or a raised cancellation flag into a
//! structured [`SimError::Deadline`](crate::SimError::Deadline) instead of
//! letting a hung run stall a whole sweep.
//!
//! The token is *cooperative*: it cannot interrupt a single simulated
//! cycle, only stop the run between cycles. That is exactly the guarantee
//! the sweep engine needs — a run that has genuinely wedged inside one
//! cycle would already have tripped the deadlock watchdog or an invariant
//! audit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in cycles) the core polls its [`Deadline`]. A power of two,
/// so the check is a mask against the cycle counter.
pub const DEADLINE_CHECK_INTERVAL: u64 = 2048;

/// A wall-clock deadline and/or cancellation flag for one simulation run.
///
/// The default token is unbounded: [`Deadline::expired`] is `false`
/// forever and polling it costs two `Option` discriminant reads.
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    started: Option<Instant>,
    at: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    progress: Option<Arc<AtomicU64>>,
}

impl Deadline {
    /// An unbounded token: never expires, cannot be cancelled.
    pub fn none() -> Deadline {
        Deadline::default()
    }

    /// A deadline `budget` of wall-clock time from now.
    pub fn after(budget: Duration) -> Deadline {
        let now = Instant::now();
        Deadline {
            started: Some(now),
            at: Some(now.checked_add(budget).unwrap_or(now)),
            cancel: None,
            progress: None,
        }
    }

    /// Attaches a cooperative cancellation flag; raising it (from any
    /// thread) expires the token at the next poll.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Deadline {
        self.cancel = Some(flag);
        self
    }

    /// Attaches a shared progress counter: the cycle loop bumps it once
    /// per deadline poll (every [`DEADLINE_CHECK_INTERVAL`] cycles), so an
    /// external supervisor — the `phast-serve` lease housekeeper — can
    /// tell a run that is still making forward progress from one that has
    /// silently wedged, without the run ever taking a wall-clock reading.
    pub fn with_progress(mut self, counter: Arc<AtomicU64>) -> Deadline {
        self.progress = Some(counter);
        self
    }

    /// Records one unit of forward progress on the attached counter (a
    /// no-op without one). Called by the cycle loop on the same amortized
    /// path that polls [`Deadline::expired`], keeping the steady-state
    /// loop allocation-free.
    pub fn tick(&self) {
        if let Some(p) = &self.progress {
            p.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True if this token can never expire.
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none() && self.cancel.is_none()
    }

    /// True once the wall-clock deadline has passed or the cancellation
    /// flag has been raised.
    pub fn expired(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Wall-clock time since the token was created (zero for unbounded
    /// tokens, which never record a start).
    pub fn elapsed(&self) -> Duration {
        self.started.map(|s| s.elapsed()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unbounded());
        assert!(!d.expired());
        assert_eq!(d.elapsed(), Duration::ZERO);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_unbounded());
        assert!(d.expired());
    }

    #[test]
    fn generous_budget_has_not_expired_yet() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
    }

    #[test]
    fn cancellation_flag_expires_the_token() {
        let flag = Arc::new(AtomicBool::new(false));
        let d = Deadline::none().with_cancel(Arc::clone(&flag));
        assert!(!d.is_unbounded());
        assert!(!d.expired());
        flag.store(true, Ordering::Relaxed);
        assert!(d.expired());
    }

    #[test]
    fn check_interval_is_a_power_of_two() {
        assert!(DEADLINE_CHECK_INTERVAL.is_power_of_two());
    }

    #[test]
    fn progress_counter_ticks_and_does_not_bound_the_token() {
        let counter = Arc::new(AtomicU64::new(0));
        let d = Deadline::none().with_progress(Arc::clone(&counter));
        assert!(d.is_unbounded(), "progress alone never expires a token");
        assert!(!d.expired());
        d.tick();
        d.tick();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
        // Tokens without a counter tick as a no-op.
        Deadline::none().tick();
    }
}
