//! Simulation statistics and the paper's derived metrics.

use phast_mdp::AccessStats;
use phast_mem::HierarchyStats;

/// Everything measured during one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub committed_loads: u64,
    /// Stores committed.
    pub committed_stores: u64,
    /// Conditional branches committed.
    pub committed_cond_branches: u64,
    /// Conditional-branch mispredictions (resolved on the committed path).
    pub branch_mispredicts: u64,
    /// Indirect-target mispredictions (indirect jumps and returns).
    pub indirect_mispredicts: u64,
    /// Memory-order violations squashed at commit (MDP false negatives).
    pub violations: u64,
    /// Committed loads delayed by a dependence prediction that did not
    /// forward from the awaited store (MDP false positives).
    pub false_dependences: u64,
    /// Loads that received at least one byte by store-to-load forwarding.
    pub forwarded_loads: u64,
    /// Squashes suppressed by the §IV-A1 forwarding filter.
    pub filtered_violations: u64,
    /// Total instructions discarded by squashes (wrong-path work).
    pub squashed_uops: u64,
    /// Loads whose issue was delayed by an MDP prediction.
    pub mdp_stalled_loads: u64,
    /// Predictor table traffic.
    pub predictor_accesses: AccessStats,
    /// Memory hierarchy statistics.
    pub memory: HierarchyStats,
    /// True if the program ran to its `Halt` before any budget expired.
    pub halted: bool,
    /// True if the cycle ceiling expired before the run finished: the
    /// statistics are truncated mid-flight, not a clean sample. Only set
    /// by the infallible legacy entry points; `try_run`/`try_simulate`
    /// report the ceiling as an error instead.
    pub ceiling_hit: bool,
    /// Commits cross-checked against the reference emulator (lockstep).
    pub checked_commits: u64,
    /// Faults deliberately injected into speculation state.
    pub injected_faults: u64,
    /// Structural-invariant audits performed.
    pub invariant_audits: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Memory-order-violation mispredictions per kilo-instruction
    /// (the paper's false-negative MPKI, red markers in Fig. 1/14).
    pub fn violation_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            1000.0 * self.violations as f64 / self.committed as f64
        }
    }

    /// False-dependence mispredictions per kilo-instruction
    /// (the paper's false-positive MPKI, green markers in Fig. 1/14).
    pub fn false_dep_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            1000.0 * self.false_dependences as f64 / self.committed as f64
        }
    }

    /// Total MDP MPKI (violations + false dependences).
    pub fn total_mpki(&self) -> f64 {
        self.violation_mpki() + self.false_dep_mpki()
    }

    /// Conditional-branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            1000.0 * self.branch_mispredicts as f64 / self.committed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000,
            committed: 4000,
            violations: 8,
            false_dependences: 4,
            branch_mispredicts: 40,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 4.0);
        assert_eq!(s.violation_mpki(), 2.0);
        assert_eq!(s.false_dep_mpki(), 1.0);
        assert_eq!(s.total_mpki(), 3.0);
        assert_eq!(s.branch_mpki(), 10.0);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.total_mpki(), 0.0);
    }
}
