//! Convenience entry points for running simulations.

use crate::config::CoreConfig;
use crate::core::Core;
use crate::deadline::Deadline;
use crate::error::SimError;
use crate::stats::SimStats;
use phast_branch::{DirectionPredictor, Tage, TageConfig};
use phast_isa::Program;
use phast_mdp::MemDepPredictor;

/// Default instruction budget used by the experiment harness.
pub const DEFAULT_MAX_INSTS: u64 = 1_000_000;

/// Generous default cycle ceiling: even IPC 0.05 finishes within it.
pub(crate) fn default_max_cycles(max_insts: u64) -> u64 {
    max_insts.saturating_mul(20).max(1_000_000)
}

/// Simulates `program` on a core described by `cfg`, using `predictor` for
/// memory dependence prediction and a TAGE conditional branch predictor,
/// until `max_insts` commit or the program halts.
///
/// # Errors
///
/// Returns a [`SimError`] if the run cannot finish cleanly: the watchdog
/// trips (deadlock or cycle ceiling), the committed path executes a corrupt
/// `Ret`, or — when enabled by [`CoreConfig::check`] — the commit stream
/// diverges from the reference emulator or an invariant audit fails.
pub fn try_simulate(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    max_insts: u64,
) -> Result<SimStats, SimError> {
    try_simulate_with_direction(
        program,
        cfg,
        predictor,
        Box::new(Tage::new(TageConfig::default())),
        max_insts,
    )
}

/// Like [`try_simulate`] but with an explicit conditional-direction
/// predictor (the Fig. 1 trend study sweeps these).
///
/// # Errors
///
/// As for [`try_simulate`].
pub fn try_simulate_with_direction(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    direction: Box<dyn DirectionPredictor>,
    max_insts: u64,
) -> Result<SimStats, SimError> {
    try_simulate_for(program, cfg, predictor, direction, max_insts, default_max_cycles(max_insts))
}

/// Full-control variant: explicit direction predictor *and* cycle ceiling.
///
/// # Errors
///
/// As for [`try_simulate`].
pub fn try_simulate_for(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    direction: Box<dyn DirectionPredictor>,
    max_insts: u64,
    max_cycles: u64,
) -> Result<SimStats, SimError> {
    let mut core = Core::new(program, cfg.clone(), predictor, direction);
    core.try_run(max_insts, max_cycles)
}

/// Like [`try_simulate`], but under a cooperative [`Deadline`] watchdog:
/// a run whose wall-clock budget elapses (or whose cancellation flag is
/// raised) ends with [`SimError::Deadline`] instead of hanging its worker.
///
/// # Errors
///
/// As for [`try_simulate`], plus [`SimError::Deadline`].
pub fn try_simulate_within(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    max_insts: u64,
    deadline: &Deadline,
) -> Result<SimStats, SimError> {
    let mut core = Core::new(
        program,
        cfg.clone(),
        predictor,
        Box::new(Tage::new(TageConfig::default())),
    );
    core.try_run_within(max_insts, default_max_cycles(max_insts), deadline)
}

/// Legacy infallible entry point over [`try_simulate`].
///
/// A hit cycle ceiling is logged to stderr and returns the truncated
/// statistics with [`SimStats::ceiling_hit`] set (previously truncation was
/// silent and indistinguishable from a clean finish).
///
/// # Panics
///
/// Panics on every other [`SimError`].
pub fn simulate(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    max_insts: u64,
) -> SimStats {
    simulate_with_direction(
        program,
        cfg,
        predictor,
        Box::new(Tage::new(TageConfig::default())),
        max_insts,
    )
}

/// Like [`simulate`] but with an explicit conditional-direction predictor.
///
/// # Panics
///
/// As for [`simulate`].
pub fn simulate_with_direction(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    direction: Box<dyn DirectionPredictor>,
    max_insts: u64,
) -> SimStats {
    match try_simulate_with_direction(program, cfg, predictor, direction, max_insts) {
        Ok(stats) => stats,
        Err(SimError::CycleCeiling { max_cycles, snapshot }) => {
            eprintln!(
                "warning: cycle ceiling {max_cycles} hit; statistics are truncated ({snapshot})"
            );
            let mut stats = snapshot.stats;
            stats.ceiling_hit = true;
            stats
        }
        Err(e) => panic!("simulation failed: {e}"),
    }
}
