//! Convenience entry points for running simulations.

use crate::config::CoreConfig;
use crate::core::Core;
use crate::stats::SimStats;
use phast_branch::{DirectionPredictor, Tage, TageConfig};
use phast_isa::Program;
use phast_mdp::MemDepPredictor;

/// Default instruction budget used by the experiment harness.
pub const DEFAULT_MAX_INSTS: u64 = 1_000_000;

/// Simulates `program` on a core described by `cfg`, using `predictor` for
/// memory dependence prediction and a TAGE conditional branch predictor,
/// until `max_insts` commit or the program halts.
pub fn simulate(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    max_insts: u64,
) -> SimStats {
    simulate_with_direction(
        program,
        cfg,
        predictor,
        Box::new(Tage::new(TageConfig::default())),
        max_insts,
    )
}

/// Like [`simulate`] but with an explicit conditional-direction predictor
/// (the Fig. 1 trend study sweeps these).
pub fn simulate_with_direction(
    program: &Program,
    cfg: &CoreConfig,
    predictor: &mut dyn MemDepPredictor,
    direction: Box<dyn DirectionPredictor>,
    max_insts: u64,
) -> SimStats {
    let mut core = Core::new(program, cfg.clone(), predictor, direction);
    // Generous cycle ceiling: even IPC 0.05 finishes within it.
    let max_cycles = max_insts.saturating_mul(20).max(1_000_000);
    core.run(max_insts, max_cycles)
}
