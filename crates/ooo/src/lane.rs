//! Batched multi-lane simulation kernel.
//!
//! A [`LaneBatch`] advances several independent (program, predictor)
//! cells — *lanes* — on one host thread by interleaving bounded slices of
//! each core's cycle loop ([`Core::try_run_slice`]). The per-thread win
//! does not come from instruction-level magic (the cores are still
//! event-driven scalar state machines); it comes from amortizing the
//! per-cell fixed costs across lanes:
//!
//! * cache-hierarchy tag slabs (~12 MB of L3 `Way` entries per cell) are
//!   recycled between waves through [`Hierarchy::reset`] instead of being
//!   reallocated and re-faulted per cell, and
//! * a finished lane's slot is refilled without returning to the harness,
//!   so a thread given `k × lanes` cells runs them back to back with no
//!   scheduling gaps.
//!
//! # Correctness contract
//!
//! Lane-batched output is **byte-identical** to running each cell solo
//! through [`try_simulate_within`](crate::try_simulate_within):
//!
//! * each lane owns its full simulation state ([`LaneJob`]); lanes share
//!   nothing mutable, so the interleave order cannot couple them;
//! * [`Core::try_run_slice`] keeps the deadline poll on the same
//!   `cycle & (DEADLINE_CHECK_INTERVAL - 1) == 0` condition as the
//!   unsliced loop, so poll points (and lease heartbeat ticks) are
//!   identical at any slice length;
//! * a recycled [`Hierarchy`] is equivalence-tested against a fresh one
//!   (`phast-mem` `reset_equivalence` tests), so wave N+1 cells start as
//!   cold as wave 0 cells.
//!
//! Per-lane failure isolation matches the pool's: a lane that panics or
//! fails ([`SimError`]) produces a [`LaneOutcome::Panicked`] /
//! [`LaneOutcome::Failed`] for that cell only; every other lane keeps
//! running. One caveat is inherent to batching and documented in
//! `docs/KERNEL.md`: a lane's wall-clock [`Deadline`] keeps ticking while
//! its wave-mates' slices run, so a wall timeout bounds the *wave*, not
//! the lone cell.

use crate::config::CoreConfig;
use crate::core::{Core, SliceOutcome};
use crate::deadline::Deadline;
use crate::error::SimError;
use crate::runner::default_max_cycles;
use crate::stats::SimStats;
use phast_branch::{Tage, TageConfig};
use phast_isa::Program;
use phast_mdp::MemDepPredictor;
use phast_mem::Hierarchy;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Index of a lane within one wave of a [`LaneBatch`].
///
/// Lane ids are dense (`0..lanes`) and purely positional: they name a
/// slot in the wave's state arrays, never a cell identity. All per-cell
/// state lives in the [`LaneJob`] occupying the slot, so re-running the
/// same jobs under any lane assignment (or solo) yields identical
/// statistics — the lane-permutation determinism tests pin this.
pub type LaneId = usize;

/// Default interleave granularity in cycles per slice.
///
/// A multiple of [`DEADLINE_CHECK_INTERVAL`](crate::DEADLINE_CHECK_INTERVAL)
/// large enough to amortize the host-cache refill a lane switch causes
/// (each lane's working set is several MB of tag state), small enough
/// that deadline polls stay responsive — polls happen *inside* the slice
/// every 2048 cycles regardless.
pub const DEFAULT_LANE_SLICE: u64 = 16 * crate::deadline::DEADLINE_CHECK_INTERVAL;

/// One cell of simulation work: a program, its predictor, and budgets.
///
/// The job owns everything its lane mutates, which is what makes lane
/// isolation sound (see the module docs). After [`LaneBatch::run`] the
/// job comes back inside a [`LaneReport`] so callers can inspect the
/// trained predictor (e.g. `num_paths`).
pub struct LaneJob {
    program: Program,
    cfg: CoreConfig,
    predictor: Box<dyn MemDepPredictor>,
    /// Taken when the lane's core is built.
    direction: Option<Box<dyn phast_branch::DirectionPredictor>>,
    max_insts: u64,
    max_cycles: u64,
    deadline: Deadline,
}

impl LaneJob {
    /// Creates a job mirroring the [`try_simulate_within`] contract: a
    /// default-TAGE direction predictor and the same generous default
    /// cycle ceiling for `max_insts`.
    ///
    /// [`try_simulate_within`]: crate::try_simulate_within
    pub fn new(
        program: Program,
        cfg: CoreConfig,
        predictor: Box<dyn MemDepPredictor>,
        max_insts: u64,
        deadline: Deadline,
    ) -> LaneJob {
        LaneJob {
            program,
            cfg,
            predictor,
            direction: Some(Box::new(Tage::new(TageConfig::default()))),
            max_insts,
            max_cycles: default_max_cycles(max_insts),
            deadline,
        }
    }

    /// The job's predictor (trained, once the batch has run).
    pub fn predictor(&self) -> &dyn MemDepPredictor {
        self.predictor.as_ref()
    }

    /// Consumes the job, returning the predictor.
    pub fn into_predictor(self) -> Box<dyn MemDepPredictor> {
        self.predictor
    }
}

/// How one lane ended.
// Same rationale as `SliceOutcome`: one value per cell, moved straight
// into a `LaneReport`; boxing the stats would trade nothing for an
// allocation on the run-completion path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum LaneOutcome {
    /// The cell finished cleanly (halt or instruction budget).
    Finished(SimStats),
    /// The cell failed with a structured error — deadline, cycle ceiling,
    /// deadlock, lockstep divergence — exactly as the solo path reports.
    Failed(SimError),
    /// The cell panicked; the payload message is preserved. Only this
    /// lane is lost.
    Panicked(String),
}

/// One cell's result: the job handed back, its outcome, and the host
/// wall-clock time spent *in this lane's slices* (construction included,
/// wave-mates' slices excluded).
#[derive(Debug)]
pub struct LaneReport {
    /// The job, returned for predictor inspection.
    pub job: LaneJob,
    /// How the lane ended.
    pub outcome: LaneOutcome,
    /// Host time attributable to this lane alone.
    pub wall: Duration,
}

impl std::fmt::Debug for LaneJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneJob")
            .field("predictor", &self.predictor.name())
            .field("max_insts", &self.max_insts)
            .finish_non_exhaustive()
    }
}

/// A single-threaded multi-lane batch executor (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct LaneBatch {
    lanes: usize,
    slice: u64,
}

impl LaneBatch {
    /// Creates a batch that interleaves up to `lanes` cells at a time
    /// (clamped to at least 1), at [`DEFAULT_LANE_SLICE`] granularity.
    pub fn new(lanes: usize) -> LaneBatch {
        LaneBatch { lanes: lanes.max(1), slice: DEFAULT_LANE_SLICE }
    }

    /// Overrides the interleave slice length in cycles. Any value yields
    /// identical statistics (the deadline poll cadence is slice-invariant);
    /// this only tunes host-cache behavior. Values below
    /// [`DEADLINE_CHECK_INTERVAL`](crate::DEADLINE_CHECK_INTERVAL) are
    /// clamped up to it.
    pub fn with_slice(mut self, slice: u64) -> LaneBatch {
        self.slice = slice.max(crate::deadline::DEADLINE_CHECK_INTERVAL);
        self
    }

    /// The wave width this batch interleaves at.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs every job to completion, interleaving up to `lanes` of them
    /// at a time, and returns one [`LaneReport`] per job **in input
    /// order** regardless of which lane ran it or when it finished.
    pub fn run(&self, mut jobs: Vec<LaneJob>) -> Vec<LaneReport> {
        let n = jobs.len();
        let mut outcomes: Vec<Option<(LaneOutcome, Duration)>> = (0..n).map(|_| None).collect();
        // Hierarchies recovered from finished lanes, reset and ready for
        // the next wave's cells.
        let mut spare_mems: Vec<Hierarchy> = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + self.lanes).min(n);
            self.run_wave(&mut jobs[start..end], &mut outcomes[start..end], &mut spare_mems);
            start = end;
        }
        jobs.into_iter()
            .zip(outcomes)
            .map(|(job, slot)| {
                let (outcome, wall) = slot.expect("every lane reports an outcome");
                LaneReport { job, outcome, wall }
            })
            .collect()
    }

    /// Advances one wave of lanes round-robin until all finish.
    fn run_wave(
        &self,
        jobs: &mut [LaneJob],
        out: &mut [Option<(LaneOutcome, Duration)>],
        spare_mems: &mut Vec<Hierarchy>,
    ) {
        struct Lane<'j> {
            core: Core<'j>,
            deadline: &'j Deadline,
            max_insts: u64,
            max_cycles: u64,
            wall: Duration,
        }

        let mut live = 0usize;
        let mut lanes: Vec<Option<Lane<'_>>> = Vec::with_capacity(jobs.len());
        for (id, job) in jobs.iter_mut().enumerate() {
            let t0 = Instant::now();
            let LaneJob { program, cfg, predictor, direction, max_insts, max_cycles, deadline } =
                job;
            let direction = direction.take().expect("a job is only run once");
            let mem = match spare_mems.pop() {
                Some(recycled) => recycled,
                None => Hierarchy::new(cfg.memory),
            };
            // Construction is caught too, so a pathological config kills
            // only its own cell — same boundary the pool gives solo jobs.
            let built = catch_unwind(AssertUnwindSafe(|| {
                Core::with_mem(&*program, cfg.clone(), predictor.as_mut(), direction, mem)
            }));
            match built {
                Ok(core) => {
                    lanes.push(Some(Lane {
                        core,
                        deadline: &*deadline,
                        max_insts: *max_insts,
                        max_cycles: *max_cycles,
                        wall: t0.elapsed(),
                    }));
                    live += 1;
                }
                Err(payload) => {
                    out[id] = Some((LaneOutcome::Panicked(panic_message(payload)), t0.elapsed()));
                    lanes.push(None);
                }
            }
        }

        while live > 0 {
            for (id, slot) in lanes.iter_mut().enumerate() {
                let Some(lane) = slot else { continue };
                let t0 = Instant::now();
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    lane.core.try_run_slice(lane.max_insts, lane.max_cycles, lane.deadline, self.slice)
                }));
                lane.wall += t0.elapsed();
                let (outcome, recycle) = match stepped {
                    Ok(Ok(SliceOutcome::Pending)) => continue,
                    Ok(Ok(SliceOutcome::Done(stats))) => (LaneOutcome::Finished(stats), true),
                    Ok(Err(e)) => (LaneOutcome::Failed(e), true),
                    // A panicking lane's hierarchy may be mid-update;
                    // never recycle it.
                    Err(payload) => (LaneOutcome::Panicked(panic_message(payload)), false),
                };
                let lane = slot.take().expect("lane was live");
                out[id] = Some((outcome, lane.wall));
                if recycle {
                    let mut mem = lane.core.into_mem();
                    mem.reset();
                    spare_mems.push(mem);
                }
                live -= 1;
            }
        }
    }
}

/// Extracts the conventional string payload from a caught panic (same
/// convention as the pool's `JobPanic`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::try_simulate_within;
    use phast_isa::{AluKind, CondKind, MemSize, ProgramBuilder, Reg};
    use phast_mdp::{
        AccessStats, BlindSpeculation, LoadQuery, PredictionOutcome, Violation,
    };

    /// A loop with a store/load pair, enough to exercise the memory
    /// system and the predictor hooks.
    fn program(trip: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let head = b.block();
        let exit = b.block();
        b.at(head)
            .addi(Reg(1), Reg(1), 1)
            .alui(AluKind::Shl, Reg(2), Reg(1), 6)
            .store(Reg(2), 0, Reg(1), MemSize::B8)
            .load(Reg(3), Reg(2), 0, MemSize::B8)
            .branchi(CondKind::LtU, Reg(1), trip as i64, head)
            .fallthrough(exit);
        b.at(exit).halt();
        b.set_entry(head);
        b.build().unwrap()
    }

    fn solo(trip: u64, insts: u64, deadline: &Deadline) -> Result<SimStats, SimError> {
        let mut p = BlindSpeculation;
        try_simulate_within(&program(trip), &CoreConfig::alder_lake(), &mut p, insts, deadline)
    }

    fn job(trip: u64, insts: u64, deadline: Deadline) -> LaneJob {
        LaneJob::new(
            program(trip),
            CoreConfig::alder_lake(),
            Box::new(BlindSpeculation),
            insts,
            deadline,
        )
    }

    #[test]
    fn batched_stats_match_solo_bit_for_bit() {
        // Mixed trip counts so lanes finish at different times and the
        // wave refills hierarchies from the recycle pool.
        let trips = [300u64, 1200, 90, 700, 250, 1500, 40, 640, 980, 120];
        let reports = LaneBatch::new(4)
            .with_slice(crate::deadline::DEADLINE_CHECK_INTERVAL)
            .run(trips.iter().map(|&t| job(t, 100_000, Deadline::none())).collect());
        assert_eq!(reports.len(), trips.len());
        for (report, &trip) in reports.iter().zip(&trips) {
            let want = solo(trip, 100_000, &Deadline::none()).unwrap();
            match &report.outcome {
                LaneOutcome::Finished(got) => {
                    assert_eq!(format!("{got:?}"), format!("{want:?}"), "trip={trip}");
                }
                other => panic!("trip={trip} did not finish: {other:?}"),
            }
        }
    }

    #[test]
    fn slice_length_is_unobservable() {
        for slice in [2048, 8192, DEFAULT_LANE_SLICE] {
            let reports = LaneBatch::new(3)
                .with_slice(slice)
                .run((0..3).map(|i| job(500 + i * 37, 100_000, Deadline::none())).collect());
            for (i, report) in reports.iter().enumerate() {
                let want = solo(500 + i as u64 * 37, 100_000, &Deadline::none()).unwrap();
                let LaneOutcome::Finished(got) = &report.outcome else {
                    panic!("lane {i} failed at slice {slice}");
                };
                assert_eq!(format!("{got:?}"), format!("{want:?}"), "slice={slice}");
            }
        }
    }

    /// A predictor that panics after a fixed number of predictions —
    /// fault injection for the isolation test.
    struct PanicAfter(u64);
    impl MemDepPredictor for PanicAfter {
        fn name(&self) -> &str {
            "panic-after"
        }
        fn predict_load(&mut self, _q: &LoadQuery<'_>) -> PredictionOutcome {
            self.0 = self.0.checked_sub(1).expect("injected lane panic");
            PredictionOutcome::none()
        }
        fn train_violation(&mut self, _v: &Violation<'_>) {}
        fn storage_bits(&self) -> usize {
            0
        }
        fn access_stats(&self) -> AccessStats {
            AccessStats::default()
        }
    }

    #[test]
    fn deadline_expiry_and_panic_degrade_only_their_lane() {
        let mut jobs = vec![
            job(800, 100_000, Deadline::none()),
            // Already-expired wall deadline: fires on this lane's cycle-0
            // poll, exactly as tests/deadline_edges.rs pins for solo runs.
            job(800, 100_000, Deadline::after(Duration::ZERO)),
            job(420, 100_000, Deadline::none()),
        ];
        // Lane 3: panics mid-run inside the predictor.
        jobs.push(LaneJob::new(
            program(900),
            CoreConfig::alder_lake(),
            Box::new(PanicAfter(40)),
            100_000,
            Deadline::none(),
        ));
        let reports = LaneBatch::new(4).run(jobs);
        assert!(matches!(reports[0].outcome, LaneOutcome::Finished(_)));
        assert!(
            matches!(&reports[1].outcome, LaneOutcome::Failed(SimError::Deadline { .. })),
            "expired deadline must surface as SimError::Deadline, got {:?}",
            reports[1].outcome
        );
        assert!(matches!(reports[2].outcome, LaneOutcome::Finished(_)));
        match &reports[3].outcome {
            LaneOutcome::Panicked(msg) => assert!(msg.contains("injected lane panic")),
            other => panic!("expected a caught panic, got {other:?}"),
        }
        // The healthy lanes' statistics are untouched by their
        // wave-mates' failures.
        for (i, trip) in [(0usize, 800u64), (2, 420)] {
            let want = solo(trip, 100_000, &Deadline::none()).unwrap();
            let LaneOutcome::Finished(got) = &reports[i].outcome else { unreachable!() };
            assert_eq!(format!("{got:?}"), format!("{want:?}"));
        }
    }

    #[test]
    fn more_jobs_than_lanes_waves_and_recycles() {
        let trips: Vec<u64> = (0..9).map(|i| 100 + i * 53).collect();
        let reports =
            LaneBatch::new(2).run(trips.iter().map(|&t| job(t, 100_000, Deadline::none())).collect());
        for (report, &trip) in reports.iter().zip(&trips) {
            let want = solo(trip, 100_000, &Deadline::none()).unwrap();
            let LaneOutcome::Finished(got) = &report.outcome else {
                panic!("trip={trip} failed");
            };
            assert_eq!(format!("{got:?}"), format!("{want:?}"), "trip={trip}");
        }
    }
}
