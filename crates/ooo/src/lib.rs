//! Value-accurate cycle-level out-of-order core simulator.
//!
//! This crate is the timing substrate of the PHAST reproduction: an
//! out-of-order core with register renaming, speculative fetch down
//! predicted paths (wrong-path execution included), a load queue / store
//! queue with byte-accurate store-to-load forwarding, memory-order
//! violation detection with lazy (commit-time) squash, and pluggable
//! memory dependence predictors via [`phast_mdp::MemDepPredictor`].
//!
//! See [`CoreConfig`] for the Table I Alder-Lake-like configuration and
//! the older-generation presets used by the paper's Fig. 2, and
//! [`simulate`] for the one-call entry point.
//!
//! # Simulation integrity
//!
//! [`try_simulate`] is the fallible entry point: it returns a structured
//! [`SimError`] (with a [`PipelineSnapshot`] of the failing state) instead
//! of panicking or silently truncating. [`CheckConfig`] on
//! [`CoreConfig::check`] controls the integrity machinery — lockstep
//! co-simulation against the `phast-isa` reference emulator, periodic
//! structural-invariant audits, and seeded [`FaultPlan`] injection for
//! exercising the recovery paths. Checking defaults to on in debug builds
//! and off in release builds.
//!
//! # Examples
//!
//! ```
//! use phast_isa::{MemSize, ProgramBuilder, Reg};
//! use phast_mdp::BlindSpeculation;
//! use phast_ooo::{simulate, CoreConfig};
//!
//! let mut b = ProgramBuilder::new();
//! let loop_blk = b.block();
//! let exit = b.block();
//! b.at(loop_blk)
//!     .addi(Reg(1), Reg(1), 1)
//!     .branchi(phast_isa::CondKind::LtU, Reg(1), 100, loop_blk)
//!     .fallthrough(exit);
//! b.at(exit).halt();
//! b.set_entry(loop_blk);
//! let program = b.build().unwrap();
//!
//! let mut predictor = BlindSpeculation;
//! let stats = simulate(&program, &CoreConfig::alder_lake(), &mut predictor, 10_000);
//! assert!(stats.halted);
//! assert_eq!(stats.committed, 201);
//! ```

#![warn(missing_docs)]

mod check;
mod config;
mod core;
mod deadline;
mod error;
mod lane;
mod runner;
mod stats;

pub use crate::core::{BootState, CommitRecord, Core, IndirectPredictor, SliceOutcome};
pub use lane::{LaneBatch, LaneId, LaneJob, LaneOutcome, LaneReport, DEFAULT_LANE_SLICE};
pub use check::{CheckConfig, CommitChecker, FaultInjector, FaultPlan};
pub use config::{CoreConfig, IndirectPredictorKind, MemSquashPolicy, Ports, TrainPoint};
pub use deadline::{Deadline, DEADLINE_CHECK_INTERVAL};
pub use error::{DivergenceReport, HeadUop, PipelineSnapshot, SimError};
pub use runner::{
    simulate, simulate_with_direction, try_simulate, try_simulate_for,
    try_simulate_with_direction, try_simulate_within, DEFAULT_MAX_INSTS,
};
pub use stats::SimStats;
