//! Structured simulation failures.
//!
//! Every way a simulation can end other than "budget reached or program
//! halted" is a [`SimError`]: a watchdog trip (deadlock, cycle ceiling), a
//! lockstep divergence from the reference emulator, an internal invariant
//! violation, or a corrupt `Ret` on the committed path. Each variant
//! carries a [`PipelineSnapshot`] — the core's observable state and the
//! partial [`SimStats`] at the point of failure — so a failed run is
//! diagnosable and reportable instead of a bare panic or, worse, a result
//! indistinguishable from a clean finish.

use crate::stats::SimStats;
use phast_isa::{BlockId, ExecClass, Pc};

/// The ROB head at the moment of failure (the uop everyone is waiting on).
#[derive(Clone, Debug)]
pub struct HeadUop {
    /// ROB token.
    pub token: u64,
    /// Architectural sequence number.
    pub arch_seq: u64,
    /// Program counter.
    pub pc: Pc,
    /// Execution class.
    pub class: ExecClass,
    /// Whether it has issued.
    pub issued: bool,
    /// Whether it has completed execution.
    pub completed: bool,
}

/// Observable pipeline state captured when a simulation fails.
#[derive(Clone, Debug)]
pub struct PipelineSnapshot {
    /// Cycle at capture.
    pub cycle: u64,
    /// Cycle of the most recent commit (watchdog reference point).
    pub last_commit_cycle: u64,
    /// Statistics accumulated so far (partial — the run did not finish).
    pub stats: SimStats,
    /// ROB occupancy.
    pub rob_len: usize,
    /// Token of the ROB head.
    pub rob_head_token: u64,
    /// The head uop, if the ROB is non-empty.
    pub head: Option<HeadUop>,
    /// Dispatched-but-unissued uops.
    pub unissued: usize,
    /// Load-queue occupancy.
    pub lq_count: usize,
    /// In-flight store tokens, oldest first.
    pub sq_tokens: Vec<u64>,
    /// Stores committed but not yet drained to the L1D.
    pub sb_pending: usize,
    /// Next fetch location, if fetch is not stalled on a squash.
    pub cursor: Option<(BlockId, usize)>,
}

impl std::fmt::Display for PipelineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {} (last commit {}), {} committed, rob {} (head token {}, head {:?}), \
             iq {}, lq {}, sq {:?}, sb {}, cursor {:?}",
            self.cycle,
            self.last_commit_cycle,
            self.stats.committed,
            self.rob_len,
            self.rob_head_token,
            self.head,
            self.unissued,
            self.lq_count,
            self.sq_tokens,
            self.sb_pending,
            self.cursor,
        )
    }
}

/// First mismatch between the core's committed stream and the reference
/// emulator, found by the lockstep checker.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// Architectural sequence number of the diverging commit.
    pub arch_seq: u64,
    /// PC the core committed.
    pub core_pc: Pc,
    /// Which compared field diverged (`"pc"`, `"dst-value"`, `"eff-addr"`,
    /// `"store-data"`, `"arch-seq"`, `"past-halt"`, `"emulator-error"`).
    pub field: &'static str,
    /// The reference emulator's value for that field.
    pub expected: Option<u64>,
    /// The core's value for that field.
    pub got: Option<u64>,
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lockstep divergence at seq {} pc {:#x}: {} expected {:?}, got {:?}",
            self.arch_seq, self.core_pc, self.field, self.expected, self.got
        )
    }
}

/// A simulation that could not finish cleanly.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The watchdog saw no commit for `stalled_cycles` cycles: a core
    /// model bug (scheduling deadlock, lost wakeup, circular wait).
    Deadlock {
        /// Cycles since the last commit when the watchdog tripped.
        stalled_cycles: u64,
        /// Pipeline state at the trip.
        snapshot: Box<PipelineSnapshot>,
    },
    /// The cycle budget elapsed before the instruction budget was met and
    /// before the program halted. Previously this silently returned
    /// partial statistics indistinguishable from a clean finish.
    CycleCeiling {
        /// The ceiling that was hit.
        max_cycles: u64,
        /// Pipeline state at the ceiling.
        snapshot: Box<PipelineSnapshot>,
    },
    /// The committed stream diverged from the reference emulator.
    Divergence {
        /// What diverged, where.
        report: DivergenceReport,
        /// Pipeline state at the diverging commit.
        snapshot: Box<PipelineSnapshot>,
    },
    /// An internal structural invariant failed an audit.
    Invariant {
        /// Which invariant, and how it failed.
        description: String,
        /// Pipeline state at the failed audit.
        snapshot: Box<PipelineSnapshot>,
    },
    /// A `Ret` with an invalid target reached commit (its link value does
    /// not name a block), meaning wrong-path state leaked into the
    /// architectural stream.
    CorruptRet {
        /// PC of the committed `Ret`.
        pc: Pc,
        /// The invalid target value it consumed.
        target: u64,
        /// Pipeline state at the commit.
        snapshot: Box<PipelineSnapshot>,
    },
    /// The per-run watchdog fired: the run's wall-clock deadline passed
    /// (or its cancellation flag was raised) before it finished. The
    /// sweep engine uses this to convert a hung run into a reportable
    /// degraded result instead of stalling the whole sweep.
    Deadline {
        /// Wall-clock time the run had consumed when the watchdog fired
        /// (zero when the token had no recorded start, i.e. pure
        /// cancellation).
        wall: std::time::Duration,
        /// Pipeline state at the poll that observed the expiry.
        snapshot: Box<PipelineSnapshot>,
    },
}

impl SimError {
    /// The pipeline state captured when the simulation failed.
    pub fn snapshot(&self) -> &PipelineSnapshot {
        match self {
            SimError::Deadlock { snapshot, .. }
            | SimError::CycleCeiling { snapshot, .. }
            | SimError::Divergence { snapshot, .. }
            | SimError::Invariant { snapshot, .. }
            | SimError::CorruptRet { snapshot, .. }
            | SimError::Deadline { snapshot, .. } => snapshot,
        }
    }

    /// The statistics accumulated up to the failure (partial).
    pub fn partial_stats(&self) -> &SimStats {
        &self.snapshot().stats
    }

    /// Short machine-readable failure kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::CycleCeiling { .. } => "cycle-ceiling",
            SimError::Divergence { .. } => "divergence",
            SimError::Invariant { .. } => "invariant",
            SimError::CorruptRet { .. } => "corrupt-ret",
            SimError::Deadline { .. } => "deadline",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { stalled_cycles, snapshot } => {
                write!(f, "no commit for {stalled_cycles} cycles (deadlock); {snapshot}")
            }
            SimError::CycleCeiling { max_cycles, snapshot } => {
                write!(f, "cycle ceiling {max_cycles} hit before the run finished; {snapshot}")
            }
            SimError::Divergence { report, snapshot } => {
                write!(f, "{report}; {snapshot}")
            }
            SimError::Invariant { description, snapshot } => {
                write!(f, "invariant violated: {description}; {snapshot}")
            }
            SimError::CorruptRet { pc, target, snapshot } => {
                write!(
                    f,
                    "committed Ret at pc {pc:#x} with corrupt target {target}; {snapshot}"
                )
            }
            SimError::Deadline { wall, snapshot } => {
                write!(
                    f,
                    "wall-clock deadline exceeded after {:.3}s; {snapshot}",
                    wall.as_secs_f64()
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> Box<PipelineSnapshot> {
        Box::new(PipelineSnapshot {
            cycle: 100,
            last_commit_cycle: 40,
            stats: SimStats { committed: 7, ..SimStats::default() },
            rob_len: 2,
            rob_head_token: 5,
            head: Some(HeadUop {
                token: 5,
                arch_seq: 7,
                pc: 0x40,
                class: ExecClass::Load,
                issued: true,
                completed: false,
            }),
            unissued: 1,
            lq_count: 1,
            sq_tokens: vec![6],
            sb_pending: 0,
            cursor: Some((BlockId(1), 0)),
        })
    }

    #[test]
    fn errors_carry_partial_stats_and_format() {
        let e = SimError::Deadlock { stalled_cycles: 60, snapshot: snapshot() };
        assert_eq!(e.partial_stats().committed, 7);
        assert_eq!(e.kind(), "deadlock");
        let msg = e.to_string();
        assert!(msg.contains("no commit for 60 cycles"), "{msg}");
        assert!(msg.contains("7 committed"), "{msg}");
    }

    #[test]
    fn divergence_report_formats_fields() {
        let r = DivergenceReport {
            arch_seq: 12,
            core_pc: 0x80,
            field: "dst-value",
            expected: Some(1),
            got: Some(2),
        };
        let e = SimError::Divergence { report: r, snapshot: snapshot() };
        assert_eq!(e.kind(), "divergence");
        assert!(e.to_string().contains("dst-value"));
    }
}
