//! Focused tests for pipeline mechanisms: eager squash, structural
//! hazards (IQ, SQ/SB, ports), and bookkeeping invariants.

use phast_branch::{Tage, TageConfig};
use phast_isa::{CondKind, Emulator, MemSize, Program, ProgramBuilder, Reg};
use phast_mdp::BlindSpeculation;
use phast_ooo::{simulate, Core, CoreConfig, MemSquashPolicy, Ports};

/// Store address resolves late; load overtakes it. One violation per
/// iteration whichever squash policy is used.
fn overtaking_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x1000).li(Reg(2), 1).li(Reg(10), 0).jump(head);
    b.at(head)
        .div(Reg(4), Reg(1), Reg(2))
        .div(Reg(4), Reg(4), Reg(2))
        .addi(Reg(5), Reg(10), 40)
        .store(Reg(4), 0, Reg(5), MemSize::B8)
        .load(Reg(6), Reg(1), 0, MemSize::B8)
        .add(Reg(7), Reg(7), Reg(6))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

fn store_parade(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x4_0000).li(Reg(10), 0).jump(head);
    let mut c = b.at(head);
    for i in 0..16 {
        c.store(Reg(1), 8 * i, Reg(10), MemSize::B8);
    }
    c.addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

#[test]
fn eager_squash_is_value_correct() {
    let p = overtaking_loop(200);
    let mut emu = Emulator::new(&p);
    let expected = emu.run_collect(1_000_000).unwrap();

    let mut cfg = CoreConfig::alder_lake();
    cfg.mem_squash = MemSquashPolicy::Eager;
    let mut pred = BlindSpeculation;
    let mut core = Core::new(&p, cfg, &mut pred, Box::new(Tage::new(TageConfig::default())));
    core.enable_commit_log();
    let stats = core.run(1_000_000, 50_000_000);
    assert!(stats.halted);
    assert_eq!(core.commit_log().len(), expected.len());
    for (got, want) in core.commit_log().iter().zip(&expected) {
        assert_eq!(got.dst_value, want.dst_value, "value at seq {}", want.seq);
    }
    assert!(stats.violations >= 190, "eager mode still counts violations");
}

#[test]
fn eager_squash_recovers_faster_than_lazy_here() {
    // With lazy squash the violating load waits until commit before
    // re-fetching; eager recovery restarts immediately, so on a loop that
    // violates every iteration it cannot be slower.
    let p = overtaking_loop(500);
    let mut lazy_cfg = CoreConfig::alder_lake();
    lazy_cfg.mem_squash = MemSquashPolicy::Lazy;
    let lazy = simulate(&p, &lazy_cfg, &mut BlindSpeculation, 1_000_000);
    let mut eager_cfg = CoreConfig::alder_lake();
    eager_cfg.mem_squash = MemSquashPolicy::Eager;
    let eager = simulate(&p, &eager_cfg, &mut BlindSpeculation, 1_000_000);
    assert!(lazy.halted && eager.halted);
    assert!(
        eager.ipc() >= lazy.ipc() * 0.95,
        "eager ({:.3}) should not trail lazy ({:.3}) on a violation-dense loop",
        eager.ipc(),
        lazy.ipc()
    );
}

#[test]
fn small_store_queue_throttles_store_parades() {
    let p = store_parade(300);
    let mut big = CoreConfig::alder_lake();
    big.sq_size = 114;
    let mut small = CoreConfig::alder_lake();
    small.sq_size = 8;
    let fast = simulate(&p, &big, &mut BlindSpeculation, 200_000);
    let slow = simulate(&p, &small, &mut BlindSpeculation, 200_000);
    assert!(
        fast.ipc() > slow.ipc() * 1.2,
        "an 8-entry SQ must throttle 16 stores/iteration ({:.3} vs {:.3})",
        fast.ipc(),
        slow.ipc()
    );
}

#[test]
fn store_ports_limit_throughput() {
    let p = store_parade(300);
    let mut two_ports = CoreConfig::alder_lake();
    two_ports.ports = Ports { store: 2, ..two_ports.ports };
    let mut one_port = CoreConfig::alder_lake();
    one_port.ports = Ports { store: 1, ..one_port.ports };
    let two = simulate(&p, &two_ports, &mut BlindSpeculation, 200_000);
    let one = simulate(&p, &one_port, &mut BlindSpeculation, 200_000);
    assert!(
        two.ipc() > one.ipc() * 1.2,
        "16 stores/iteration must scale with store ports ({:.3} vs {:.3})",
        two.ipc(),
        one.ipc()
    );
}

#[test]
fn tiny_iq_throttles_ilp() {
    let p = store_parade(300);
    let mut big = CoreConfig::alder_lake();
    big.iq_size = 204;
    let mut tiny = CoreConfig::alder_lake();
    tiny.iq_size = 4;
    let fast = simulate(&p, &big, &mut BlindSpeculation, 100_000);
    let slow = simulate(&p, &tiny, &mut BlindSpeculation, 100_000);
    assert!(
        fast.ipc() > slow.ipc(),
        "a 4-entry issue window must hurt ({:.3} vs {:.3})",
        fast.ipc(),
        slow.ipc()
    );
}

#[test]
fn prefetcher_fills_show_up_on_streaming_code() {
    let w = phast_workloads::by_name("lbm").unwrap();
    let p = w.build(200_000);
    let stats = simulate(&p, &CoreConfig::alder_lake(), &mut BlindSpeculation, 60_000);
    assert!(
        stats.memory.l1d.prefetch_fills > 100,
        "the IP-stride prefetcher must engage on lbm (got {})",
        stats.memory.l1d.prefetch_fills
    );
}

#[test]
fn commit_log_is_off_by_default() {
    let p = overtaking_loop(10);
    let mut pred = BlindSpeculation;
    let mut core = Core::new(
        &p,
        CoreConfig::alder_lake(),
        &mut pred,
        Box::new(Tage::new(TageConfig::default())),
    );
    let _ = core.run(10_000, 1_000_000);
    assert!(core.commit_log().is_empty(), "logging must be opt-in");
}

#[test]
fn squashed_work_is_accounted() {
    let p = overtaking_loop(200);
    let stats = simulate(&p, &CoreConfig::alder_lake(), &mut BlindSpeculation, 200_000);
    assert!(
        stats.squashed_uops > stats.violations,
        "each violation squash discards multiple uops ({} squashed, {} violations)",
        stats.squashed_uops,
        stats.violations
    );
}

#[test]
fn branch_stats_populate() {
    let w = phast_workloads::by_name("gcc_1").unwrap();
    let p = w.build(100_000);
    let stats = simulate(&p, &CoreConfig::alder_lake(), &mut BlindSpeculation, 50_000);
    assert!(stats.committed_cond_branches > 1_000);
    assert!(stats.branch_mispredicts > 0, "hash-driven selectors must mispredict sometimes");
    assert!(stats.indirect_mispredicts > 0, "the dispatch farm must miss the last-target table");
}

#[test]
fn ittage_front_end_beats_last_target_on_dispatch_code() {
    use phast_ooo::IndirectPredictorKind;
    // povray's indirect dispatch cycles through targets with a short
    // period: ITTAGE learns the pattern, a last-target table cannot.
    let w = phast_workloads::by_name("povray").unwrap();
    let p = w.build(300_000);
    let mut lt_cfg = CoreConfig::alder_lake();
    lt_cfg.indirect_predictor = IndirectPredictorKind::LastTarget;
    let lt = simulate(&p, &lt_cfg, &mut BlindSpeculation, 60_000);
    let mut it_cfg = CoreConfig::alder_lake();
    it_cfg.indirect_predictor = IndirectPredictorKind::Ittage;
    let it = simulate(&p, &it_cfg, &mut BlindSpeculation, 60_000);
    assert!(
        it.indirect_mispredicts * 2 < lt.indirect_mispredicts,
        "ITTAGE must at least halve indirect misses ({} vs {})",
        it.indirect_mispredicts,
        lt.indirect_mispredicts
    );
    // Under blind speculation, deeper correct speculation can *add*
    // memory-order violations; with a real MDP the front-end win shows.
    use phast::{Phast, PhastConfig};
    use phast_ooo::TrainPoint;
    let mut lt_mdp = lt_cfg.clone();
    lt_mdp.train_point = TrainPoint::Commit;
    let mut it_mdp = it_cfg.clone();
    it_mdp.train_point = TrainPoint::Commit;
    let lt_ph = simulate(&p, &lt_mdp, &mut Phast::new(PhastConfig::paper()), 60_000);
    let it_ph = simulate(&p, &it_mdp, &mut Phast::new(PhastConfig::paper()), 60_000);
    assert!(
        it_ph.ipc() >= lt_ph.ipc(),
        "with PHAST the better front end must not cost IPC ({:.3} vs {:.3})",
        it_ph.ipc(),
        lt_ph.ipc()
    );
}
