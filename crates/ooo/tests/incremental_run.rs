//! `Core::run` must be resumable: running to a budget in chunks (as the
//! `phast-trace` tool does) must produce exactly the same state as one
//! uninterrupted run.

use phast_branch::{Tage, TageConfig};
use phast_mdp::BlindSpeculation;
use phast_ooo::{Core, CoreConfig};

#[test]
fn chunked_and_oneshot_runs_agree() {
    let w = phast_workloads::by_name("gcc_2").unwrap();
    let p = w.build(300_000);

    let mut pred1 = BlindSpeculation;
    let mut oneshot =
        Core::new(&p, CoreConfig::alder_lake(), &mut pred1, Box::new(Tage::new(TageConfig::default())));
    let s1 = oneshot.run(50_000, u64::MAX);

    let mut pred2 = BlindSpeculation;
    let mut chunked =
        Core::new(&p, CoreConfig::alder_lake(), &mut pred2, Box::new(Tage::new(TageConfig::default())));
    let mut s2 = phast_ooo::SimStats::default();
    for target in [10_000u64, 20_000, 30_000, 40_000, 50_000] {
        s2 = chunked.run(target, u64::MAX);
    }

    assert_eq!(s1.committed, s2.committed);
    assert_eq!(s1.cycles, s2.cycles, "cycle-exact resumability");
    assert_eq!(s1.violations, s2.violations);
    assert_eq!(s1.false_dependences, s2.false_dependences);
    assert_eq!(s1.branch_mispredicts, s2.branch_mispredicts);
    assert_eq!(s1.squashed_uops, s2.squashed_uops);
}

#[test]
fn run_past_halt_is_idempotent() {
    let w = phast_workloads::by_name("exchange2").unwrap();
    let p = w.build(30); // halts quickly
    let mut pred = BlindSpeculation;
    let mut core =
        Core::new(&p, CoreConfig::alder_lake(), &mut pred, Box::new(Tage::new(TageConfig::default())));
    let s1 = core.run(1_000_000, u64::MAX);
    assert!(s1.halted);
    let s2 = core.run(2_000_000, u64::MAX);
    assert_eq!(s1.committed, s2.committed, "nothing more to commit after halt");
    assert_eq!(s1.cycles, s2.cycles);
}
