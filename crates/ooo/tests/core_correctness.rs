//! Correctness tests for the out-of-order core: the committed stream must
//! match the functional emulator exactly, under every kind of speculation
//! (branch mispredicts, memory-order violations, wrong-path execution).

use phast_branch::{Tage, TageConfig};
use phast_isa::{
    CondKind, Emulator, MemSize, Program, ProgramBuilder, Reg, LINK_REG, STACK_REG,
};
use phast_mdp::{BlindSpeculation, DepOracle, MemDepPredictor, OraclePredictor, TotalOrder};
use phast_ooo::{simulate, Core, CoreConfig};
use std::sync::Arc;

fn run_core(program: &Program, predictor: &mut dyn MemDepPredictor, cfg: &CoreConfig) -> phast_ooo::SimStats {
    simulate(program, cfg, predictor, 1_000_000)
}

/// Runs the program on both the emulator and the core (with a commit log)
/// and asserts the committed streams are identical.
fn assert_matches_emulator(program: &Program, predictor: &mut dyn MemDepPredictor) {
    let mut emu = Emulator::new(program);
    let expected = emu.run_collect(1_000_000).expect("emulates cleanly");

    let cfg = CoreConfig::alder_lake();
    let mut core = Core::new(program, cfg, predictor, Box::new(Tage::new(TageConfig::default())));
    core.enable_commit_log();
    let stats = core.run(1_000_000, 50_000_000);
    assert!(stats.halted, "program must run to completion");

    let log = core.commit_log();
    assert_eq!(log.len(), expected.len(), "committed instruction count");
    for (got, want) in log.iter().zip(&expected) {
        assert_eq!(got.arch_seq, want.seq, "sequence number at pc {:#x}", want.pc);
        assert_eq!(got.pc, want.pc, "pc at seq {}", want.seq);
        assert_eq!(got.dst_value, want.dst_value, "value at seq {} pc {:#x}", want.seq, want.pc);
        assert_eq!(got.eff_addr, want.eff_addr, "address at seq {} pc {:#x}", want.seq, want.pc);
    }
}

fn straightline() -> Program {
    let mut b = ProgramBuilder::new();
    let e = b.block();
    b.at(e)
        .li(Reg(1), 0x1000)
        .li(Reg(2), 123)
        .store(Reg(1), 0, Reg(2), MemSize::B8)
        .load(Reg(3), Reg(1), 0, MemSize::B8)
        .addi(Reg(4), Reg(3), 1)
        .mul(Reg(5), Reg(4), Reg(4))
        .halt();
    b.set_entry(e);
    b.build().unwrap()
}

/// A loop with a data-dependent (hard-to-predict) branch and memory
/// traffic through a small array.
fn noisy_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let then = b.block();
    let join = b.block();
    let exit = b.block();
    b.at(entry)
        .li(Reg(1), 0x2000) // base
        .li(Reg(2), 0) // i
        .li(Reg(3), 1)
        .jump(head);
    b.at(head)
        // pseudo-random bit from i
        .mul(Reg(4), Reg(2), Reg(2))
        .shri(Reg(5), Reg(4), 3)
        .andi(Reg(5), Reg(5), 1)
        .branchi(CondKind::Eq, Reg(5), 1, then)
        .fallthrough(join);
    b.at(then)
        .andi(Reg(6), Reg(2), 7)
        .shli(Reg(6), Reg(6), 3)
        .add(Reg(6), Reg(6), Reg(1))
        .store(Reg(6), 0, Reg(2), MemSize::B8)
        .jump(join);
    b.at(join)
        .andi(Reg(7), Reg(2), 7)
        .shli(Reg(7), Reg(7), 3)
        .add(Reg(7), Reg(7), Reg(1))
        .load(Reg(8), Reg(7), 0, MemSize::B8)
        .add(Reg(9), Reg(9), Reg(8))
        .addi(Reg(2), Reg(2), 1)
        .branchi(CondKind::LtU, Reg(2), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

/// A store whose address resolves late (divide chain) followed by a load
/// to the same address whose own address is ready immediately: blind
/// speculation makes the load overtake the store and squash.
fn late_store_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x3000).li(Reg(2), 1).li(Reg(10), 0).jump(head);
    b.at(head)
        .div(Reg(4), Reg(1), Reg(2)) // r4 = 0x3000 after 12 cycles
        .div(Reg(4), Reg(4), Reg(2))
        .div(Reg(4), Reg(4), Reg(2))
        .addi(Reg(5), Reg(10), 40) // value to store
        .store(Reg(4), 0, Reg(5), MemSize::B8)
        .load(Reg(6), Reg(1), 0, MemSize::B8) // same address, early
        .add(Reg(7), Reg(7), Reg(6))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

/// Fig. 3(c): the load forwards from the *younger* store S2; the older
/// store S1 resolves afterwards and must not squash the load when the
/// forwarding filter is on.
fn fig3c_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x4000).li(Reg(2), 1).li(Reg(10), 0).jump(head);
    b.at(head)
        .div(Reg(4), Reg(1), Reg(2))
        .div(Reg(4), Reg(4), Reg(2))
        .div(Reg(4), Reg(4), Reg(2)) // S1's address: very late
        .li(Reg(5), 11)
        .li(Reg(6), 22)
        .store(Reg(4), 0, Reg(5), MemSize::B8) // S1 (late address)
        .store(Reg(1), 0, Reg(6), MemSize::B8) // S2 (early address)
        .mul(Reg(7), Reg(1), Reg(2)) // small delay for the load address
        .load(Reg(8), Reg(7), 0, MemSize::B8) // forwards from S2
        .add(Reg(9), Reg(9), Reg(8))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

fn call_ret_program() -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let loop_head = b.block();
    let callee = b.block();
    let after = b.block();
    let exit = b.block();
    b.at(entry).li(STACK_REG, 0x8000).li(Reg(2), 0).jump(loop_head);
    b.at(loop_head).addi(Reg(3), Reg(2), 5).call(callee).fallthrough(after);
    b.at(callee)
        .store(STACK_REG, 0, LINK_REG, MemSize::B8)
        .mul(Reg(3), Reg(3), Reg(3))
        .load(LINK_REG, STACK_REG, 0, MemSize::B8)
        .ret();
    b.at(after)
        .add(Reg(4), Reg(4), Reg(3))
        .addi(Reg(2), Reg(2), 1)
        .branchi(CondKind::LtU, Reg(2), 50, loop_head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

fn indirect_program() -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let t0 = b.block();
    let t1 = b.block();
    let t2 = b.block();
    let join = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0).jump(head);
    b.at(head).andi(Reg(2), Reg(1), 3).indirect_jump(Reg(2), &[t0, t1, t2]);
    b.at(t0).addi(Reg(3), Reg(3), 1).jump(join);
    b.at(t1).addi(Reg(3), Reg(3), 10).jump(join);
    b.at(t2).addi(Reg(3), Reg(3), 100).jump(join);
    b.at(join).addi(Reg(1), Reg(1), 1).branchi(CondKind::LtU, Reg(1), 60, head).fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

#[test]
fn straightline_matches_emulator() {
    assert_matches_emulator(&straightline(), &mut BlindSpeculation);
}

#[test]
fn noisy_loop_matches_emulator_blind() {
    assert_matches_emulator(&noisy_loop(300), &mut BlindSpeculation);
}

#[test]
fn noisy_loop_matches_emulator_total_order() {
    assert_matches_emulator(&noisy_loop(300), &mut TotalOrder);
}

#[test]
fn late_store_matches_emulator_despite_violations() {
    assert_matches_emulator(&late_store_program(100), &mut BlindSpeculation);
}

#[test]
fn call_ret_matches_emulator() {
    assert_matches_emulator(&call_ret_program(), &mut BlindSpeculation);
}

#[test]
fn indirect_jump_matches_emulator() {
    assert_matches_emulator(&indirect_program(), &mut BlindSpeculation);
}

#[test]
fn blind_speculation_suffers_violations_on_late_stores() {
    let p = late_store_program(200);
    let stats = run_core(&p, &mut BlindSpeculation, &CoreConfig::alder_lake());
    assert!(stats.halted);
    assert!(
        stats.violations >= 100,
        "each iteration should violate under blind speculation, got {}",
        stats.violations
    );
}

#[test]
fn total_order_never_violates() {
    let p = late_store_program(200);
    let stats = run_core(&p, &mut TotalOrder, &CoreConfig::alder_lake());
    assert_eq!(stats.violations, 0, "waiting for all older stores cannot violate");
}

#[test]
fn oracle_eliminates_violations_and_false_deps() {
    let p = late_store_program(200);
    let oracle = Arc::new(DepOracle::build(&p, 1_000_000, 256).unwrap());
    let mut pred = OraclePredictor::new(oracle);
    let stats = run_core(&p, &mut pred, &CoreConfig::alder_lake());
    assert_eq!(stats.violations, 0, "the ideal predictor never squashes");
    assert_eq!(stats.false_dependences, 0, "the ideal predictor never stalls needlessly");
}

#[test]
fn oracle_beats_blind_and_total_order_on_ipc() {
    let p = late_store_program(500);
    let oracle = Arc::new(DepOracle::build(&p, 1_000_000, 256).unwrap());
    let ideal = run_core(&p, &mut OraclePredictor::new(oracle), &CoreConfig::alder_lake());
    let blind = run_core(&p, &mut BlindSpeculation, &CoreConfig::alder_lake());
    let total = run_core(&p, &mut TotalOrder, &CoreConfig::alder_lake());
    assert!(
        ideal.ipc() > blind.ipc(),
        "ideal {} must beat blind {} (squash cost)",
        ideal.ipc(),
        blind.ipc()
    );
    assert!(
        ideal.ipc() >= total.ipc(),
        "ideal {} must be at least total-order {}",
        ideal.ipc(),
        total.ipc()
    );
}

#[test]
fn forwarding_filter_suppresses_fig3c_squashes() {
    let p = fig3c_program(150);

    let mut on_cfg = CoreConfig::alder_lake();
    on_cfg.forwarding_filter = true;
    let with_filter = run_core(&p, &mut BlindSpeculation, &on_cfg);

    let mut off_cfg = CoreConfig::alder_lake();
    off_cfg.forwarding_filter = false;
    let without_filter = run_core(&p, &mut BlindSpeculation, &off_cfg);

    assert!(
        with_filter.filtered_violations > 0,
        "filter must actually fire (got {})",
        with_filter.filtered_violations
    );
    assert!(
        without_filter.violations > with_filter.violations,
        "disabling the filter must add squashes: {} vs {}",
        without_filter.violations,
        with_filter.violations
    );
}

#[test]
fn fig3c_is_value_correct_with_and_without_filter() {
    let p = fig3c_program(50);
    assert_matches_emulator(&p, &mut BlindSpeculation);
}

#[test]
fn forwarded_loads_are_counted() {
    let p = straightline();
    let stats = run_core(&p, &mut BlindSpeculation, &CoreConfig::alder_lake());
    assert!(stats.forwarded_loads >= 1, "store→load pair must forward");
}

#[test]
fn runs_are_deterministic() {
    let p = noisy_loop(400);
    let a = run_core(&p, &mut BlindSpeculation, &CoreConfig::alder_lake());
    let b = run_core(&p, &mut BlindSpeculation, &CoreConfig::alder_lake());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
}

#[test]
fn all_generations_run_the_same_program_correctly() {
    for cfg in CoreConfig::generations() {
        let p = noisy_loop(150);
        let mut emu = Emulator::new(&p);
        let expected = emu.run_collect(1_000_000).unwrap();
        let stats = run_core(&p, &mut BlindSpeculation, &cfg);
        assert!(stats.halted, "{} must finish", cfg.name);
        assert_eq!(stats.committed, expected.len() as u64, "{} commit count", cfg.name);
    }
}

#[test]
fn wider_cores_are_not_slower() {
    let p = noisy_loop(800);
    let old = run_core(&p, &mut BlindSpeculation, &CoreConfig::nehalem());
    let new = run_core(&p, &mut BlindSpeculation, &CoreConfig::alder_lake());
    assert!(
        new.ipc() >= old.ipc() * 0.95,
        "alderlake {} should not trail nehalem {}",
        new.ipc(),
        old.ipc()
    );
}
