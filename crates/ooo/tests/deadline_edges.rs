//! Edge-case coverage for the cooperative per-run watchdog.
//!
//! The cycle loop polls its [`Deadline`] on the amortized
//! `DEADLINE_CHECK_INTERVAL` path, and the poll lands on cycle 0 first —
//! so a token that is *already* expired when the run starts (zero
//! budget, past deadline, pre-raised cancellation) must stop the run on
//! that very first poll, before a single cycle is simulated. These tests
//! pin that contract: the `phast-serve` lease housekeeper relies on it
//! to reclaim wedged runs promptly, and `--run-timeout=0` relies on it
//! to smoke the deadline exit path without a slow run.

use phast_branch::{Tage, TageConfig};
use phast_isa::{CondKind, MemSize, Program, ProgramBuilder, Reg};
use phast_mdp::BlindSpeculation;
use phast_ooo::{
    Core, CoreConfig, Deadline, SimError, DEADLINE_CHECK_INTERVAL,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A counted loop with memory traffic — long enough to cross many poll
/// intervals if nothing stops it.
fn long_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x1000).li(Reg(2), 0).li(Reg(3), 0).jump(head);
    b.at(head)
        .store(Reg(1), 0, Reg(2), MemSize::B8)
        .load(Reg(4), Reg(1), 0, MemSize::B8)
        .add(Reg(3), Reg(3), Reg(4))
        .addi(Reg(2), Reg(2), 1)
        .branchi(CondKind::LtU, Reg(2), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

/// Runs `program` under `deadline` and returns the outcome.
fn run_under(program: &Program, deadline: &Deadline) -> Result<phast_ooo::SimStats, SimError> {
    let mut predictor = BlindSpeculation;
    let mut core = Core::new(
        program,
        CoreConfig::alder_lake(),
        &mut predictor,
        Box::new(Tage::new(TageConfig::default())),
    );
    core.try_run_within(1_000_000, 50_000_000, deadline)
}

/// Asserts the run died on the *first* poll: a structured deadline error
/// whose snapshot shows cycle 0 and nothing committed.
fn assert_died_on_first_poll(outcome: Result<phast_ooo::SimStats, SimError>) {
    match outcome {
        Err(SimError::Deadline { snapshot, .. }) => {
            assert_eq!(snapshot.cycle, 0, "expired token must fire at the cycle-0 poll");
            assert_eq!(snapshot.stats.committed, 0, "nothing may commit past an expired token");
        }
        other => panic!("expected SimError::Deadline, got {other:?}"),
    }
}

#[test]
fn zero_budget_fires_on_the_first_poll() {
    let program = long_loop(100_000);
    assert_died_on_first_poll(run_under(&program, &Deadline::after(Duration::ZERO)));
}

#[test]
fn already_past_deadline_fires_on_the_first_poll() {
    let program = long_loop(100_000);
    let deadline = Deadline::after(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));
    assert_died_on_first_poll(run_under(&program, &deadline));
}

#[test]
fn pre_raised_cancellation_fires_on_the_first_poll() {
    let program = long_loop(100_000);
    let flag = Arc::new(AtomicBool::new(true));
    let deadline = Deadline::none().with_cancel(flag);
    assert_died_on_first_poll(run_under(&program, &deadline));
}

#[test]
fn expired_token_still_ticks_progress_exactly_once() {
    // The heartbeat tick shares the poll path and runs *before* the
    // expiry check — so even a run that dies immediately registers one
    // unit of forward progress, which is what lets the lease table tell
    // "died at the starting line" from "never scheduled at all".
    let program = long_loop(100_000);
    let counter = Arc::new(AtomicU64::new(0));
    let deadline =
        Deadline::after(Duration::ZERO).with_progress(Arc::clone(&counter));
    assert_died_on_first_poll(run_under(&program, &deadline));
    assert_eq!(counter.load(Ordering::Relaxed), 1, "exactly the cycle-0 poll ticked");
}

#[test]
fn healthy_run_ticks_progress_once_per_check_interval() {
    let program = long_loop(5_000);
    let counter = Arc::new(AtomicU64::new(0));
    let deadline = Deadline::none().with_progress(Arc::clone(&counter));
    let stats = run_under(&program, &deadline).expect("runs to completion");
    let ticks = counter.load(Ordering::Relaxed);
    // Polls land on cycle 0, INTERVAL, 2*INTERVAL, ... strictly below the
    // final cycle count.
    let expected_max = stats.cycles / DEADLINE_CHECK_INTERVAL + 1;
    assert!(ticks >= 1, "at least the cycle-0 poll");
    assert!(
        ticks <= expected_max,
        "ticks ({ticks}) exceed one per {DEADLINE_CHECK_INTERVAL}-cycle interval \
         over {} cycles",
        stats.cycles
    );
    assert!(
        stats.cycles < DEADLINE_CHECK_INTERVAL || ticks >= 2,
        "a run crossing the interval must tick again ({} cycles, {ticks} ticks)",
        stats.cycles
    );
}
