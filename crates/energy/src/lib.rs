//! SRAM energy model for memory dependence predictor tables.
//!
//! The paper computes per-access energies with Cacti-P at 7 nm
//! (Table II) and reports total predictor energy split into reads and
//! writes (Fig. 16). We anchor the model on the published Table II
//! numbers — they *are* the Cacti-P output — and extrapolate to other
//! geometries with the usual √capacity scaling of SRAM wordline/bitline
//! energy. Writes are charged 10% above reads (drivers plus cell flip),
//! a standard SRAM ratio.

#![warn(missing_docs)]

/// Energy of one access to one prediction table, in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessEnergy {
    /// Energy per table read, pJ.
    pub read_pj: f64,
    /// Energy per table write, pJ.
    pub write_pj: f64,
}

const WRITE_FACTOR: f64 = 1.1;

impl AccessEnergy {
    fn from_read(read_pj: f64) -> AccessEnergy {
        AccessEnergy { read_pj, write_pj: read_pj * WRITE_FACTOR }
    }
}

/// The predictor structures whose energies Table II publishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Store Sets SSIT (8K × 13 bits): 0.2403 pJ per access.
    StoreSetsSsit,
    /// Store Sets LFST (4K × 11 bits): 0.1026 pJ per access.
    StoreSetsLfst,
    /// NoSQ (2 tables, 19 KB total): 0.3721 pJ per predictor access.
    NoSq,
    /// MDP-TAGE (12 tables, 38.625 KB): 1.3103 pJ per predictor access.
    MdpTage,
    /// MDP-TAGE-S (8 tables, 13 KB): 0.4421 pJ per predictor access.
    MdpTageS,
    /// PHAST (8 tables, 14.5 KB): 0.4856 pJ per predictor access.
    Phast,
}

impl Structure {
    /// The Table II per-predictor-access read energy in pJ.
    pub fn paper_access_pj(self) -> f64 {
        match self {
            Structure::StoreSetsSsit => 0.2403,
            Structure::StoreSetsLfst => 0.1026,
            Structure::NoSq => 0.3721,
            Structure::MdpTage => 1.3103,
            Structure::MdpTageS => 0.4421,
            Structure::Phast => 0.4856,
        }
    }

    /// Number of tables probed per predictor access (the simulator's
    /// access counters count individual table probes).
    pub fn tables(self) -> u32 {
        match self {
            Structure::StoreSetsSsit | Structure::StoreSetsLfst => 1,
            Structure::NoSq => 2,
            Structure::MdpTage => 12,
            Structure::MdpTageS | Structure::Phast => 8,
        }
    }

    /// The paper storage of the structure in bits (the calibration
    /// anchor for scaling).
    pub fn paper_bits(self) -> usize {
        match self {
            Structure::StoreSetsSsit => 8 * 1024 * 13,
            Structure::StoreSetsLfst => 4 * 1024 * 11,
            Structure::NoSq => 19 * 8192,
            Structure::MdpTage => (38.625 * 8192.0) as usize,
            Structure::MdpTageS => 13 * 8192,
            Structure::Phast => (14.5 * 8192.0) as usize,
        }
    }

    /// Per-*table-probe* energy at the paper geometry.
    pub fn per_table_probe(self) -> AccessEnergy {
        AccessEnergy::from_read(self.paper_access_pj() / f64::from(self.tables()))
    }

    /// Per-table-probe energy for a scaled variant of this structure
    /// holding `bits` total (√capacity scaling around the paper anchor).
    pub fn per_table_probe_scaled(self, bits: usize) -> AccessEnergy {
        let base = self.per_table_probe();
        let scale = (bits as f64 / self.paper_bits() as f64).sqrt();
        AccessEnergy::from_read(base.read_pj * scale)
    }
}

/// Total energy in nanojoules of `reads` and `writes` table probes.
pub fn total_energy_nj(reads: u64, writes: u64, e: AccessEnergy) -> (f64, f64) {
    (reads as f64 * e.read_pj / 1000.0, writes as f64 * e.write_pj / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchors_are_exact() {
        assert_eq!(Structure::Phast.paper_access_pj(), 0.4856);
        assert_eq!(Structure::MdpTage.paper_access_pj(), 1.3103);
        assert_eq!(Structure::NoSq.paper_access_pj(), 0.3721);
        assert_eq!(Structure::StoreSetsSsit.paper_access_pj(), 0.2403);
        assert_eq!(Structure::StoreSetsLfst.paper_access_pj(), 0.1026);
        assert_eq!(Structure::MdpTageS.paper_access_pj(), 0.4421);
    }

    #[test]
    fn per_table_probe_divides_by_table_count() {
        let p = Structure::Phast.per_table_probe();
        assert!((p.read_pj - 0.4856 / 8.0).abs() < 1e-9);
        assert!(p.write_pj > p.read_pj, "writes cost more than reads");
    }

    #[test]
    fn scaling_follows_sqrt_capacity() {
        let base = Structure::Phast.per_table_probe();
        let half = Structure::Phast.per_table_probe_scaled(Structure::Phast.paper_bits() / 2);
        let quad = Structure::Phast.per_table_probe_scaled(Structure::Phast.paper_bits() * 4);
        assert!((half.read_pj / base.read_pj - 0.5f64.sqrt()).abs() < 1e-9);
        assert!((quad.read_pj / base.read_pj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn totals_convert_to_nanojoules() {
        let e = AccessEnergy { read_pj: 0.5, write_pj: 0.55 };
        let (r, w) = total_energy_nj(2000, 1000, e);
        assert!((r - 1.0).abs() < 1e-12);
        assert!((w - 0.55).abs() < 1e-12);
    }

    #[test]
    fn mdp_tage_is_most_expensive_per_access() {
        // Fig. 16's main observation: TAGE-like structures dominate.
        for s in [
            Structure::StoreSetsSsit,
            Structure::StoreSetsLfst,
            Structure::NoSq,
            Structure::MdpTageS,
            Structure::Phast,
        ] {
            assert!(Structure::MdpTage.paper_access_pj() > s.paper_access_pj());
        }
    }
}
